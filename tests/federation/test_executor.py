"""Executors: serial vs. thread-pool fan-out of the query round.

The wall-clock test is the tentpole's acceptance criterion: over eight
sources at 20 ms simulated latency each, a realtime search through the
:class:`ParallelExecutor` must finish in under twice the slowest
source's latency, where the serial round pays roughly the sum.
"""

import gc
import time

import pytest

from repro.cache import CachePolicy
from repro.corpus import source1_documents
from repro.federation import Executor, ParallelExecutor, SerialExecutor
from repro.metasearch import Metasearcher, SelectAll
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import HostProfile, SimulatedInternet, publish_resource

N_SOURCES = 8
LATENCY_MS = 20.0


def ranking_query() -> SQuery:
    return SQuery(
        ranking_expression=parse_expression('list((body-of-text "databases"))')
    )


@pytest.fixture
def eight_source_world():
    """Eight identical sources on eight hosts, 20 ms each, no jitter."""
    internet = SimulatedInternet(seed=3)
    sources = [
        StartsSource(
            f"Src-{index}",
            source1_documents(),
            base_url=f"http://host{index}.org/s",
        )
        for index in range(N_SOURCES)
    ]
    resource = Resource("Fleet", sources)
    publish_resource(
        internet,
        resource,
        "http://fleet.org",
        source_profiles={
            source.source_id: HostProfile(latency_ms=LATENCY_MS, jitter_ms=0.0)
            for source in sources
        },
    )
    # The wall-clock assertions repeat one query on purpose; the result
    # cache would serve the repeats without touching the wire.
    searcher = Metasearcher(
        internet, ["http://fleet.org/resource"], cache_policy=CachePolicy.disabled()
    )
    searcher.refresh()
    return internet, searcher


class TestExecutors:
    def test_protocol_conformance(self):
        assert isinstance(SerialExecutor(), Executor)
        assert isinstance(ParallelExecutor(), Executor)
        assert SerialExecutor().name == "serial"
        assert ParallelExecutor().name == "parallel"

    def test_results_keep_task_order(self):
        tasks = list(range(20))
        for executor in (SerialExecutor(), ParallelExecutor(max_workers=4)):
            assert executor.run(tasks, lambda n: n * n) == [n * n for n in tasks]

    def test_empty_and_single_task(self):
        assert ParallelExecutor().run([], str) == []
        assert ParallelExecutor().run([7], str) == ["7"]


class TestWallClock:
    def test_parallel_beats_serial_on_the_wall_clock(self, eight_source_world):
        internet, searcher = eight_source_world
        query = ranking_query()
        # Warm up the pipeline (imports, caches) with instantaneous time.
        searcher.search(query, k_sources=N_SOURCES, selector=SelectAll())

        def timed(executor):
            # Best of three: wall-clock asserts must not fail on a GC
            # pause or scheduler hiccup unrelated to the executor.
            best, best_result = None, None
            for _ in range(3):
                gc.collect()
                started = time.perf_counter()
                result = searcher.search(
                    query, k_sources=N_SOURCES, selector=SelectAll(),
                    executor=executor,
                )
                elapsed = time.perf_counter() - started
                if best is None or elapsed < best:
                    best, best_result = elapsed, result
            return best, best_result

        internet.realtime = True
        try:
            serial_wall, serial = timed(SerialExecutor())
            parallel_wall, parallel = timed(ParallelExecutor())
        finally:
            internet.realtime = False

        # Serial pays ~8 × 20 ms; parallel must land under 2 × 20 ms.
        assert serial_wall > (N_SOURCES - 2) * LATENCY_MS / 1000.0
        assert parallel_wall < 2 * LATENCY_MS / 1000.0
        assert parallel_wall < serial_wall

        # The simulated accounting agrees regardless of wall clock.
        for result in (serial, parallel):
            assert result.query_latency_serial_ms == pytest.approx(
                N_SOURCES * LATENCY_MS
            )
            assert result.query_latency_parallel_ms == pytest.approx(LATENCY_MS)
            assert len(result.ok_sources()) == N_SOURCES
            assert result.documents

    def test_parallel_and_serial_agree_on_results(self, eight_source_world):
        _, searcher = eight_source_world
        query = ranking_query()
        serial = searcher.search(
            query, k_sources=N_SOURCES, selector=SelectAll(), executor=SerialExecutor()
        )
        parallel = searcher.search(
            query,
            k_sources=N_SOURCES,
            selector=SelectAll(),
            executor=ParallelExecutor(),
        )
        assert serial.linkages() == parallel.linkages()
        assert serial.outcome_counts() == parallel.outcome_counts()


class TestRunTasksCatching:
    """Per-task exception capture over any executor."""

    def _run(self, executor):
        from repro.federation import run_tasks_catching

        def fn(task):
            if task % 3 == 0:
                raise RuntimeError(f"task {task} failed")
            return task * 10

        return run_tasks_catching(executor, [1, 2, 3, 4, 5, 6], fn)

    @pytest.mark.parametrize(
        "executor", [SerialExecutor(), ParallelExecutor(max_workers=3)]
    )
    def test_results_and_errors_in_task_order(self, executor):
        outcomes = self._run(executor)
        assert [result for result, _ in outcomes] == [10, 20, None, 40, 50, None]
        errors = [error for _, error in outcomes]
        assert errors[0] is None and errors[1] is None
        assert isinstance(errors[2], RuntimeError)
        assert "task 3 failed" in str(errors[2])
        assert isinstance(errors[5], RuntimeError)

    def test_one_failure_does_not_poison_the_batch(self):
        from repro.federation import run_tasks_catching

        outcomes = run_tasks_catching(
            SerialExecutor(), ["ok", "boom", "ok"],
            lambda task: (_ for _ in ()).throw(ValueError(task))
            if task == "boom"
            else task.upper(),
        )
        assert outcomes[0] == ("OK", None)
        assert outcomes[2] == ("OK", None)
        assert isinstance(outcomes[1][1], ValueError)

    def test_empty_tasks(self):
        from repro.federation import run_tasks_catching

        assert run_tasks_catching(SerialExecutor(), [], lambda t: t) == []
