"""Partial results over a misbehaving federation (acceptance scenario).

One search over four sources — two healthy, one dead, one hanging —
must return merged results from the survivors while both failures are
recorded as :class:`SourceOutcome` entries, with retries, backoff,
bounded timeouts and money spent all visible in the trace.
"""

import pytest

from repro.corpus import source1_documents, source2_documents
from repro.federation import OutcomeStatus, ParallelExecutor, QueryPolicy
from repro.metasearch import Metasearcher, SelectAll
from repro.resource import Resource
from repro.source import SourceCapabilities, StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import (
    FaultProfile,
    HostProfile,
    SimulatedInternet,
    publish_resource,
)

POLICY = QueryPolicy(timeout_ms=500.0, max_retries=2, backoff_base_ms=10.0)


def ranking_query() -> SQuery:
    return SQuery(
        ranking_expression=parse_expression('list((body-of-text "databases"))')
    )


@pytest.fixture
def troubled_world():
    """Two healthy sources, one dead, one hanging — faults post-discovery."""
    internet = SimulatedInternet(seed=9)
    resource = Resource(
        "Troubled",
        [
            StartsSource("GoodA", source1_documents(), base_url="http://gooda.org/s"),
            StartsSource("GoodB", source2_documents(), base_url="http://goodb.org/s"),
            StartsSource("Dead", source1_documents(), base_url="http://dead.org/s"),
            StartsSource("Hang", source2_documents(), base_url="http://hang.org/s"),
        ],
    )
    publish_resource(
        internet,
        resource,
        "http://troubled.org",
        source_profiles={
            source_id: HostProfile(latency_ms=20.0, jitter_ms=0.0)
            for source_id in ("GoodA", "GoodB", "Hang")
        }
        | {"Dead": HostProfile(latency_ms=20.0, jitter_ms=0.0, cost_per_query=5.0)},
    )
    searcher = Metasearcher(
        internet, ["http://troubled.org/resource"], query_policy=POLICY
    )
    searcher.refresh()
    # The outage starts after discovery, so the query round meets it.
    internet.set_fault_profile("dead.org", FaultProfile.dead())
    internet.set_fault_profile("hang.org", FaultProfile.hangs(hang_ms=10_000.0))
    return internet, searcher


class TestPartialResults:
    def test_survivors_merge_while_failures_are_recorded(self, troubled_world):
        internet, searcher = troubled_world
        result = searcher.search(
            ranking_query(),
            k_sources=4,
            selector=SelectAll(),
            executor=ParallelExecutor(),
        )

        # The search did not abort: the healthy sources merged.
        assert result.documents
        assert set(result.ok_sources()) == {"GoodA", "GoodB"}
        assert set(result.per_source_results) == {"GoodA", "GoodB"}
        assert set(result.failed_sources()) == {"Dead", "Hang"}
        assert result.outcome_counts() == {"ok": 2, "error": 1, "timeout": 1}

        dead = result.outcomes["Dead"]
        assert dead.status is OutcomeStatus.ERROR
        assert dead.requests == 3 and dead.retries == 2
        assert dead.cost == pytest.approx(15.0)  # failed attempts still paid

        hang = result.outcomes["Hang"]
        assert hang.status is OutcomeStatus.TIMEOUT
        # 500 + 10 backoff + 500 + 20 backoff + 500: bounded patience.
        assert hang.elapsed_ms == pytest.approx(1530.0)

    def test_explain_trace_renders_the_whole_story(self, troubled_world):
        _, searcher = troubled_world
        result = searcher.search(
            ranking_query(), k_sources=4, selector=SelectAll()
        )
        rendered = result.explain_trace()
        for expected in (
            "GoodA",
            "Dead: error after 3 request(s) (2 retries)",
            "Hang: timeout",
            "backoff",
            "cost",
            "query:Dead",
            "select",
            "merge",
        ):
            assert expected in rendered, f"missing {expected!r} in:\n{rendered}"

    def test_failure_accounting_reaches_the_network_log(self, troubled_world):
        internet, searcher = troubled_world
        internet.reset_log()
        searcher.search(ranking_query(), k_sources=4, selector=SelectAll())
        # 3 failed attempts on Dead + 3 timeouts on Hang.
        assert internet.failure_count() == 6


class TestDiscoveryTolerance:
    def test_refresh_skips_unreachable_sources(self):
        internet = SimulatedInternet(seed=2)
        resource = Resource(
            "Partial",
            [
                StartsSource("Up", source1_documents(), base_url="http://up.org/s"),
                StartsSource("Down", source2_documents(), base_url="http://down.org/s"),
            ],
        )
        publish_resource(
            internet,
            resource,
            "http://partial.org",
            source_faults={"Down": FaultProfile.dead()},
        )
        searcher = Metasearcher(internet, ["http://partial.org/resource"])
        known = searcher.refresh()
        assert [source.source_id for source in known] == ["Up"]
        assert "Down" in searcher.discovery.unreachable

        result = searcher.search(ranking_query(), k_sources=2)
        assert result.selected_sources == ["Up"]
        assert result.documents


class TestSkipPath:
    def test_untranslatable_source_is_skipped_on_record(self):
        """A ranking-only query to a filter-only source: no round trip,
        a SKIPPED outcome, and the merge still succeeds."""
        internet = SimulatedInternet(seed=6)
        resource = Resource(
            "Mixed",
            [
                StartsSource(
                    "FOnly",
                    source1_documents(),
                    base_url="http://fonly.org/s",
                    capabilities=SourceCapabilities(query_parts="F"),
                ),
                StartsSource(
                    "Full", source2_documents(), base_url="http://full.org/s"
                ),
            ],
        )
        publish_resource(internet, resource, "http://mixed.org")
        searcher = Metasearcher(internet, ["http://mixed.org/resource"])
        searcher.refresh()
        internet.reset_log()

        result = searcher.search(ranking_query(), k_sources=2, selector=SelectAll())

        skipped = result.outcomes["FOnly"]
        assert skipped.status is OutcomeStatus.SKIPPED
        assert skipped.requests == 0 and skipped.elapsed_ms == 0.0
        assert "translation" in (skipped.skip_reason or "")
        assert result.skipped_sources() == ["FOnly"]
        assert result.ok_sources() == ["Full"]
        assert result.outcome_counts() == {"ok": 1, "skipped": 1}
        # No wire traffic went to the skipped source.
        assert internet.request_count("fonly.org") == 0
        assert "skipped" in result.explain_trace()
