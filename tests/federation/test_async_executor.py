"""The asyncio-native executor: protocol, streaming, caps, cancellation."""

import asyncio
import threading
import time

import pytest

from repro.federation import (
    AsyncExecutor,
    AsyncSourceAdapter,
    ClientSourceAdapter,
    Executor,
    QueryDispatcher,
    QueryPolicy,
    SerialExecutor,
    SourceRequest,
)
from repro.experiments import FederationSpec, build_federation
from repro.starts import SQuery, parse_expression
from repro.transport import StartsClient


def ranking_query() -> SQuery:
    return SQuery(
        ranking_expression=parse_expression('list((body-of-text "database"))')
    )


class TestProtocolConformance:
    def test_satisfies_executor_protocol(self):
        assert isinstance(AsyncExecutor(), Executor)

    def test_is_async_marker(self):
        assert AsyncExecutor.is_async is True
        assert not getattr(SerialExecutor(), "is_async", False)

    def test_client_adapter_satisfies_adapter_protocol(self):
        fed = build_federation(FederationSpec(n_sources=2, docs_per_source=5))
        adapter = ClientSourceAdapter(StartsClient(fed.internet))
        assert isinstance(adapter, AsyncSourceAdapter)
        assert adapter.name == "starts-client"

    def test_rejects_silly_concurrency(self):
        with pytest.raises(ValueError):
            AsyncExecutor(max_concurrency=0)


class TestRun:
    def test_sync_fn_results_in_task_order(self):
        executor = AsyncExecutor(max_concurrency=4)
        assert executor.run([3, 1, 2], lambda n: n * 10) == [30, 10, 20]

    def test_coroutine_fn_results_in_task_order(self):
        executor = AsyncExecutor(max_concurrency=4)

        async def work(n):
            await asyncio.sleep(0.001 * (3 - n))  # later tasks finish first
            return n * 10

        assert executor.run([0, 1, 2], work) == [0, 10, 20]

    def test_empty_batch(self):
        assert AsyncExecutor().run([], lambda n: n) == []

    def test_exception_propagates(self):
        executor = AsyncExecutor(max_concurrency=2)

        async def explode(n):
            raise RuntimeError(f"boom {n}")

        with pytest.raises(RuntimeError, match="boom"):
            executor.run([1, 2], explode)


class TestRunStream:
    def test_yields_in_completion_order(self):
        executor = AsyncExecutor(max_concurrency=4)

        async def work(n):
            await asyncio.sleep(n * 0.005)
            return n

        order = [index for index, _ in executor.run_stream([2, 0, 1], work)]
        assert order == [1, 2, 0]

    def test_close_cancels_inflight_tasks(self):
        executor = AsyncExecutor(max_concurrency=4)
        cancelled = []

        async def work(n):
            try:
                await asyncio.sleep(0.001 if n == 0 else 60.0)
                return n
            except asyncio.CancelledError:
                cancelled.append(n)
                raise

        stream = executor.run_stream([0, 1, 2], work)
        index, result = next(stream)
        assert (index, result) == (0, 0)
        stream.close()
        assert sorted(cancelled) == [1, 2]

    def test_semaphore_caps_concurrency(self):
        executor = AsyncExecutor(max_concurrency=3)
        running = 0
        observed_max = 0

        async def work(n):
            nonlocal running, observed_max
            running += 1
            observed_max = max(observed_max, running)
            await asyncio.sleep(0.002)
            running -= 1
            return n

        executor.run(list(range(12)), work)
        assert observed_max == 3

    def test_peak_inflight_tracks_high_water_mark(self):
        executor = AsyncExecutor(max_concurrency=8)

        async def work(n):
            await asyncio.sleep(0.005)
            return n

        executor.run(list(range(8)), work)
        assert executor.peak_inflight == 8


class TestDispatcherIntegration:
    """Outcomes through the async path match the serial oracle bit for bit."""

    POLICY = QueryPolicy(timeout_ms=500.0, max_retries=1, hedge_after_ms=100.0)

    def _outcomes(self, executor):
        fed = build_federation(
            FederationSpec(
                n_sources=6,
                docs_per_source=15,
                seed=11,
                flaky_source_index=1,
                dead_source_index=4,
            )
        )
        dispatcher = QueryDispatcher(
            StartsClient(fed.internet), executor=executor, policy=self.POLICY
        )
        requests = [
            SourceRequest(sid, f"{fed.sources[sid].base_url}/query", ranking_query())
            for sid in fed.source_ids()
        ]
        return dispatcher.dispatch(requests)

    def test_outcomes_bit_identical_to_serial(self):
        serial = self._outcomes(SerialExecutor())
        concurrent = self._outcomes(AsyncExecutor(max_concurrency=4))
        for a, b in zip(serial, concurrent):
            assert a.source_id == b.source_id
            assert a.status == b.status
            assert a.elapsed_ms == b.elapsed_ms
            assert a.cost == b.cost
            assert len(a.attempts) == len(b.attempts)
            a_scores = [d.raw_score for d in (a.results.documents if a.results else [])]
            b_scores = [d.raw_score for d in (b.results.documents if b.results else [])]
            assert a_scores == b_scores

    def test_realtime_round_overlaps_waits(self):
        """64 sources at 20 ms each must land in far less than the serial sum."""
        fed = build_federation(
            FederationSpec(
                n_sources=64,
                docs_per_source=3,
                seed=2,
                slow_source_index=None,
                charging_source_index=None,
            )
        )
        fed.internet.realtime = True
        fed.internet.time_scale = 0.1
        dispatcher = QueryDispatcher(
            StartsClient(fed.internet),
            executor=AsyncExecutor(max_concurrency=64),
            policy=QueryPolicy(timeout_ms=500.0),
        )
        requests = [
            SourceRequest(sid, f"{fed.sources[sid].base_url}/query", ranking_query())
            for sid in fed.source_ids()
        ]
        serial_dispatcher = QueryDispatcher(
            StartsClient(fed.internet),
            executor=SerialExecutor(),
            policy=QueryPolicy(timeout_ms=500.0),
        )
        # Measure a real serial round on this machine, under this load,
        # then require the concurrent round to beat it by a wide margin
        # — an absolute wall-clock bound is hostage to scheduler noise,
        # but overlap-vs-no-overlap on the same box is not.  Best-of-2
        # keeps one-time costs (imports, allocator warm-up) out of the
        # concurrent measurement.
        start = time.perf_counter()
        serial_outcomes = serial_dispatcher.dispatch(requests)
        serial_wall_ms = (time.perf_counter() - start) * 1000.0
        assert all(o.ok for o in serial_outcomes)
        best_wall_ms = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            outcomes = dispatcher.dispatch(requests)
            wall_ms = (time.perf_counter() - start) * 1000.0
            assert all(o.ok for o in outcomes)
            best_wall_ms = min(best_wall_ms, wall_ms)
        assert best_wall_ms < serial_wall_ms / 2


class TestSubmitBackground:
    """Background failures surface in the log and metrics, never the caller."""

    def test_failure_is_logged_and_counted(self, caplog, fresh_registry):
        from repro.federation import submit_background

        done = threading.Event()

        def fails():
            try:
                raise RuntimeError("refresh blew up")
            finally:
                done.set()

        with caplog.at_level("ERROR", logger="repro.federation.executor"):
            submit_background(SerialExecutor(), fails, task_name="revalidation")
        assert done.wait(timeout=2.0)
        assert any("revalidation" in record.message for record in caplog.records)
        counter = fresh_registry.counter(
            "background_task_failures_total",
            "Exceptions raised by fire-and-forget background tasks.",
            labels=("task",),
        )
        assert counter.labels(task="revalidation").value == 1

    def test_failure_does_not_raise_into_caller(self):
        from repro.federation import submit_background

        submit_background(SerialExecutor(), lambda: 1 / 0)  # must not raise

    def test_success_still_runs(self):
        from repro.federation import submit_background

        ran = []
        submit_background(SerialExecutor(), lambda: ran.append(True))
        assert ran == [True]
