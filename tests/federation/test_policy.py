"""Query policies: backoff schedules, retries, deadlines, hedging."""

import pytest

from repro.corpus import source1_documents
from repro.federation import (
    OutcomeStatus,
    QueryDispatcher,
    QueryPolicy,
    SourceRequest,
)
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import (
    FaultProfile,
    HostProfile,
    SimulatedInternet,
    publish_source,
)
from repro.transport.client import StartsClient


def ranking_query() -> SQuery:
    return SQuery(
        ranking_expression=parse_expression('list((body-of-text "databases"))')
    )


class TestBackoffSchedule:
    def test_exponential_with_cap(self):
        policy = QueryPolicy(
            max_retries=3, backoff_base_ms=10.0, backoff_multiplier=2.0,
            backoff_max_ms=25.0,
        )
        assert policy.backoff_before(1) == 0.0
        assert policy.backoff_before(2) == 10.0
        assert policy.backoff_before(3) == 20.0
        assert policy.backoff_before(4) == 25.0  # 40 capped

    def test_max_attempts(self):
        assert QueryPolicy().max_attempts == 1
        assert QueryPolicy(max_retries=2).max_attempts == 3

    def test_should_retry_respects_kind_switches(self):
        policy = QueryPolicy(max_retries=2, retry_on_timeout=False)
        assert policy.should_retry("error", 1)
        assert not policy.should_retry("timeout", 1)
        assert not policy.should_retry("error", 3)  # attempts exhausted

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            QueryPolicy(backoff_base_ms=-1.0)
        with pytest.raises(ValueError):
            QueryPolicy(backoff_multiplier=0.5)


def published_source(faults=None, profile=None):
    """One source on its own host; returns (client, request)."""
    internet = SimulatedInternet(seed=4)
    source = StartsSource(
        "S1", source1_documents(), base_url="http://s1.org/s"
    )
    url = publish_source(
        internet,
        source,
        profile or HostProfile(latency_ms=20.0, jitter_ms=0.0),
        faults=faults,
    )
    client = StartsClient(internet)
    return client, SourceRequest("S1", url, ranking_query())


class TestDispatcherPolicies:
    def test_flaky_source_recovers_under_retries(self):
        client, request = published_source(faults=FaultProfile.flaky(2))
        dispatcher = QueryDispatcher(
            client, policy=QueryPolicy(max_retries=2, backoff_base_ms=10.0)
        )
        outcome = dispatcher.run_one(request)
        assert outcome.status is OutcomeStatus.OK
        assert outcome.requests == 3
        assert outcome.retries == 2
        assert outcome.results is not None and outcome.results.documents
        # 20 (fail) + 10 backoff + 20 (fail) + 20 backoff + 20 (ok).
        assert outcome.elapsed_ms == pytest.approx(90.0)
        counters = dispatcher.tracer.counters["S1"]
        assert counters.requests == 3
        assert counters.retries == 2
        assert counters.failures == 2
        assert counters.backoff_ms == pytest.approx(30.0)

    def test_retries_exhausted_reports_error(self):
        client, request = published_source(faults=FaultProfile.dead())
        dispatcher = QueryDispatcher(
            client, policy=QueryPolicy(max_retries=1, backoff_base_ms=10.0)
        )
        outcome = dispatcher.run_one(request)
        assert outcome.status is OutcomeStatus.ERROR
        assert outcome.requests == 2
        assert outcome.error and "injected" in outcome.error

    def test_deadline_turns_hang_into_timeout(self):
        client, request = published_source(
            faults=FaultProfile.hangs(hang_ms=10_000.0)
        )
        dispatcher = QueryDispatcher(
            client,
            policy=QueryPolicy(
                timeout_ms=500.0, max_retries=1, backoff_base_ms=10.0
            ),
        )
        outcome = dispatcher.run_one(request)
        assert outcome.status is OutcomeStatus.TIMEOUT
        # 500 (timeout) + 10 backoff + 500 (timeout): patience is bounded.
        assert outcome.elapsed_ms == pytest.approx(1010.0)
        assert dispatcher.tracer.counters["S1"].timeouts == 2

    def test_retry_on_timeout_can_be_disabled(self):
        client, request = published_source(faults=FaultProfile.hangs())
        dispatcher = QueryDispatcher(
            client,
            policy=QueryPolicy(
                timeout_ms=500.0, max_retries=3, retry_on_timeout=False
            ),
        )
        outcome = dispatcher.run_one(request)
        assert outcome.status is OutcomeStatus.TIMEOUT
        assert outcome.requests == 1

    def test_hedge_fires_on_slow_primary_and_both_are_paid(self):
        client, request = published_source(
            profile=HostProfile(latency_ms=100.0, jitter_ms=0.0, cost_per_query=2.0)
        )
        dispatcher = QueryDispatcher(
            client, policy=QueryPolicy(hedge_after_ms=50.0)
        )
        outcome = dispatcher.run_one(request)
        assert outcome.status is OutcomeStatus.OK
        assert outcome.requests == 2
        assert outcome.retries == 0  # a hedge is not a retry
        assert [attempt.hedged for attempt in outcome.attempts] == [False, True]
        # Primary answers at 100 ms, hedge would answer at 50 + 100 = 150;
        # the primary wins, so effective time is the primary's.
        assert outcome.elapsed_ms == pytest.approx(100.0)
        assert outcome.cost == pytest.approx(4.0)  # losing hedge still paid
        assert dispatcher.tracer.counters["S1"].hedges == 1

    def test_no_hedge_when_primary_is_fast_enough(self):
        client, request = published_source(
            profile=HostProfile(latency_ms=20.0, jitter_ms=0.0)
        )
        dispatcher = QueryDispatcher(
            client, policy=QueryPolicy(hedge_after_ms=50.0)
        )
        outcome = dispatcher.run_one(request)
        assert outcome.requests == 1
        assert dispatcher.tracer.counters["S1"].hedges == 0

    def test_per_source_policy_override(self):
        client, request = published_source(faults=FaultProfile.flaky(1))
        dispatcher = QueryDispatcher(
            client,
            policy=QueryPolicy(),  # default: no retries
            policies={"S1": QueryPolicy(max_retries=1, backoff_base_ms=5.0)},
        )
        assert dispatcher.policy_for("S1").max_retries == 1
        assert dispatcher.policy_for("Other").max_retries == 0
        outcome = dispatcher.run_one(request)
        assert outcome.status is OutcomeStatus.OK
        assert outcome.retries == 1
