"""The root broker: exact descent, pruning, admission, failover, nesting."""

import pytest

from repro.broker import (
    AdmissionPolicy,
    BrokerOverloadedError,
    LeafBroker,
    RootBroker,
    RoutingPolicy,
    build_hierarchy,
)
from repro.federation import ParallelExecutor
from repro.metasearch.selection import (
    BGloss,
    BySize,
    Cori,
    RandomSelector,
    SelectAll,
    VGlossMax,
    VGlossSum,
)
from repro.observability import MetricsRegistry, get_registry, set_registry

from tests.broker.util import demo_population, flat_index, make_summary, populated

SELECTORS = [Cori, BGloss, VGlossSum, VGlossMax, BySize, SelectAll]


@pytest.fixture
def registry():
    previous = get_registry()
    fresh = MetricsRegistry()
    set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestExactness:
    """The flat single-broker index is the oracle, bit for bit."""

    @pytest.mark.parametrize("selector_cls", SELECTORS)
    @pytest.mark.parametrize("n_leaves", [1, 2, 3, 5])
    def test_select_matches_flat(self, selector_cls, n_leaves):
        population = demo_population()
        index = flat_index(population)
        root = populated(n_leaves, population)
        for terms in (["databases"], ["databases", "retrieval"], ["absent"], []):
            for k in (1, 3, 10, 100):
                selector = selector_cls()
                assert root.select(selector, terms, k) == selector_cls().select(
                    terms, index, k
                )

    @pytest.mark.parametrize("selector_cls", SELECTORS)
    def test_rank_matches_flat_with_identical_floats(self, selector_cls):
        population = demo_population()
        index = flat_index(population)
        root = populated(3, population)
        terms = ["databases", "query"]
        assert root.rank(selector_cls(), terms) == selector_cls().rank(terms, index)

    def test_parallel_executor_preserves_exactness(self):
        population = demo_population()
        index = flat_index(population)
        root = populated(4, population, executor=ParallelExecutor(max_workers=4))
        terms = ["retrieval", "systems"]
        assert root.select(Cori(), terms, 5) == Cori().select(terms, index, 5)

    def test_k_nonpositive_and_empty_hierarchy(self):
        root = populated(2, demo_population())
        assert root.top_candidates(Cori(), ["databases"], 0) == []
        assert RootBroker([]).top_candidates(Cori(), ["databases"], 3) == []


class TestPruning:
    def _topical_root(self):
        db = LeafBroker("db")
        db.apply_delta("DB-0", make_summary(10, {"databases": (30, 8)}))
        med = LeafBroker("med")
        med.apply_delta("Med-0", make_summary(10, {"medicine": (30, 8)}))
        return RootBroker([db, med]), db, med

    def test_prunable_selector_skips_untouched_leaves(self, registry):
        root, _, _ = self._topical_root()
        root.select(Cori(), ["databases"], 1)
        scored = {
            key: child.value
            for key, child in registry.family(
                "broker_leaf_selections_total"
            ).children()
        }
        assert scored == {("db",): 1}

    def test_pruned_leaves_still_fill_large_k(self):
        # k spans the whole federation: the pruned leaf's sources must
        # come back at the selector's sparse default, exactly as flat.
        root, db, med = self._topical_root()
        index = flat_index(
            {
                "DB-0": db.index.summary("DB-0"),
                "Med-0": med.index.summary("Med-0"),
            }
        )
        assert root.select(Cori(), ["databases"], 5) == Cori().select(
            ["databases"], index, 5
        )

    def test_route_depth_histogram_observes_descents(self, registry):
        root, _, _ = self._topical_root()
        root.select(Cori(), ["databases"], 1)  # descends 1 of 2
        root.select(BySize(), ["databases"], 1)  # not prunable: descends 2
        ((_, histogram),) = registry.family("broker_route_depth").children()
        assert histogram.count == 2
        assert histogram.sum == 3.0

    def test_max_fanout_caps_descent(self, registry):
        population = demo_population()
        root = populated(4, population, routing=RoutingPolicy(max_fanout=2))
        root.select(Cori(), ["databases"], 3)
        scored = registry.family("broker_leaf_selections_total").children()
        assert sum(child.value for _, child in scored) == 2

    def test_max_fanout_validated(self):
        with pytest.raises(ValueError):
            RoutingPolicy(max_fanout=0)


class TestAdmission:
    def test_inflight_limit_sheds(self, registry):
        root = populated(2, demo_population(), admission=AdmissionPolicy(max_inflight=0))
        with pytest.raises(BrokerOverloadedError) as excinfo:
            root.select(Cori(), ["databases"], 1)
        assert excinfo.value.reason == "inflight"
        shed = registry.family("broker_shed_total")
        assert dict(shed.children())[("inflight",)].value == 1

    def test_inflight_released_after_success(self):
        root = populated(2, demo_population(), admission=AdmissionPolicy(max_inflight=1))
        for _ in range(3):  # a non-zero limit admits sequential queries
            root.select(Cori(), ["databases"], 1)

    def test_unhealthy_fleet_sheds(self, registry):
        root = populated(
            2,
            demo_population(),
            admission=AdmissionPolicy(min_mean_leaf_health=0.9),
        )
        for handle in root.handles():
            for _ in range(10):
                root.health.record_attempt(handle.leaf_id, "error", 0.0)
        with pytest.raises(BrokerOverloadedError) as excinfo:
            root.select(Cori(), ["databases"], 1)
        assert excinfo.value.reason == "unhealthy"
        shed = registry.family("broker_shed_total")
        assert dict(shed.children())[("unhealthy",)].value == 1

    def test_unhealthy_shed_releases_the_inflight_slot(self):
        root = populated(
            2,
            demo_population(),
            admission=AdmissionPolicy(max_inflight=1, min_mean_leaf_health=0.9),
        )
        for handle in root.handles():
            for _ in range(10):
                root.health.record_attempt(handle.leaf_id, "error", 0.0)
        for _ in range(2):
            with pytest.raises(BrokerOverloadedError) as excinfo:
                root.select(Cori(), ["databases"], 1)
            assert excinfo.value.reason == "unhealthy"  # never "inflight"

    def test_admission_validated(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_inflight=-1)
        with pytest.raises(ValueError):
            AdmissionPolicy(min_budget_remaining=1.5)

    def _budget_root(self, registry, bad, admission):
        from repro.observability import SloMonitor, SloObjective, SloPolicy

        counter = registry.counter(
            "metasearch_searches_total", labels=("result",)
        )
        for _ in range(100 - bad):
            counter.labels(result="wire").inc()
        for _ in range(bad):
            counter.labels(result="error").inc()
        monitor = SloMonitor(
            policy=SloPolicy(
                objectives=(
                    SloObjective(
                        name="search-availability",
                        kind="availability",
                        target=0.9,
                        family="metasearch_searches_total",
                        label="result",
                        bad_values=("error", "shed"),
                    ),
                )
            ),
            registry=registry,
        )
        return populated(
            2, demo_population(), admission=admission, slo_monitor=monitor
        )

    def test_burned_error_budget_sheds(self, registry):
        admission = AdmissionPolicy(min_budget_remaining=0.2)
        root = self._budget_root(registry, bad=10, admission=admission)  # spent
        with pytest.raises(BrokerOverloadedError) as excinfo:
            root.select(Cori(), ["databases"], 1)
        assert excinfo.value.reason == "budget"
        shed = registry.family("broker_shed_total")
        assert dict(shed.children())[("budget",)].value == 1

    def test_intact_budget_admits(self, registry):
        admission = AdmissionPolicy(min_budget_remaining=0.2)
        root = self._budget_root(registry, bad=0, admission=admission)
        root.select(Cori(), ["databases"], 1)

    def test_budget_floor_without_monitor_is_ignored(self, registry):
        root = populated(
            2,
            demo_population(),
            admission=AdmissionPolicy(min_budget_remaining=0.99),
        )
        root.select(Cori(), ["databases"], 1)

    def test_budget_shed_releases_the_inflight_slot(self, registry):
        admission = AdmissionPolicy(max_inflight=1, min_budget_remaining=0.2)
        root = self._budget_root(registry, bad=10, admission=admission)
        for _ in range(2):
            with pytest.raises(BrokerOverloadedError) as excinfo:
                root.select(Cori(), ["databases"], 1)
            assert excinfo.value.reason == "budget"  # never "inflight"


class TestFailover:
    def test_failed_leaf_recovers_mid_selection(self, registry):
        population = demo_population()
        index = flat_index(population)
        root = populated(3, population)
        victim = root.handles()[1]
        victim.fail()
        assert root.select(Cori(), ["databases"], 4) == Cori().select(
            ["databases"], index, 4
        )
        assert not victim.is_down
        failovers = registry.family("broker_failovers_total")
        assert dict(failovers.children())[(victim.leaf_id,)].value == 1

    def test_failures_feed_the_health_tracker(self):
        root = populated(2, demo_population())
        victim = root.handles()[0]
        victim.fail()
        root.select(Cori(), ["databases"], 2)
        assert root.health.score(victim.leaf_id) < root.health.score(
            root.handles()[1].leaf_id
        )


class TestTopology:
    def test_duplicate_leaf_ids_rejected(self):
        with pytest.raises(ValueError):
            RootBroker([LeafBroker("same"), LeafBroker("same")])

    def test_deltas_route_by_the_ring(self):
        population = demo_population()
        root = populated(3, population)
        for source_id in population:
            owner = root.handle(root.ring.locate(source_id))
            assert source_id in owner.index

    def test_routing_table_covers_every_source(self):
        population = demo_population()
        root = populated(3, population)
        table = root.routing_table(sorted(population))
        assert sorted(s for owned in table.values() for s in owned) == sorted(
            population
        )

    def test_non_distributable_selector_rejected(self):
        root = populated(2, demo_population())
        with pytest.raises(ValueError, match="not distributable"):
            root.select(RandomSelector(seed=1), ["databases"], 1)


class TestNesting:
    def test_nested_roots_stay_exact(self):
        population = demo_population(n_sources=30, seed=9)
        index = flat_index(population)
        sub_a = build_hierarchy(2, leaf_prefix="a", broker_id="sub-a")
        sub_b = build_hierarchy(3, leaf_prefix="b", broker_id="sub-b")
        top = RootBroker([sub_a, sub_b])
        for source_id in sorted(population):
            top.apply_delta(source_id, population[source_id])
        for terms in (["databases"], ["medicine", "query"], ["absent"]):
            for k in (1, 4, 40):
                assert top.select(Cori(), terms, k) == Cori().select(terms, index, k)
        terms = ["databases", "networks"]
        assert top.rank(VGlossSum(), terms) == VGlossSum().rank(terms, index)

    def test_timing_accounting_resets_per_selection(self):
        root = populated(3, demo_population())
        root.select(Cori(), ["databases"], 2)
        first = dict(root.last_leaf_elapsed_ms)
        assert first and root.last_parallel_ms <= root.last_serial_ms
        assert root.last_parallel_ms == max(first.values())
        root.select(Cori(), ["databases"], 2)
        assert root.last_parallel_ms <= root.last_serial_ms
