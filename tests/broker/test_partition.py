"""The consistent-hash ring: determinism, coverage, minimal remapping."""

import pytest

from repro.broker import ConsistentHashRing

KEYS = [f"Source-{index:04d}" for index in range(400)]


class TestDeterminism:
    def test_insertion_order_is_irrelevant(self):
        forward = ConsistentHashRing(["alpha", "beta", "gamma"])
        backward = ConsistentHashRing(["gamma", "beta", "alpha"])
        for key in KEYS:
            assert forward.locate(key) == backward.locate(key)

    def test_stable_across_fresh_rings(self):
        # crc32 (not salted hash()) keeps the routing table identical
        # between processes; two fresh rings must agree everywhere.
        table = {key: ConsistentHashRing(["a", "b", "c", "d"]).locate(key)
                 for key in KEYS[:50]}
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        assert all(ring.locate(key) == owner for key, owner in table.items())

    def test_locate_returns_a_member(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        for key in KEYS:
            assert ring.locate(key) in ring


class TestAssignments:
    def test_partition_is_an_exact_cover(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        table = ring.assignments(KEYS)
        assert set(table) == {"a", "b", "c", "d"}
        flattened = sorted(key for owned in table.values() for key in owned)
        assert flattened == sorted(KEYS)
        for member, owned in table.items():
            assert all(ring.locate(key) == member for key in owned)

    def test_members_with_no_keys_still_listed(self):
        ring = ConsistentHashRing(["a", "b"])
        table = ring.assignments([])
        assert table == {"a": [], "b": []}

    def test_virtual_nodes_spread_the_load(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        table = ring.assignments(KEYS)
        shares = {member: len(owned) / len(KEYS) for member, owned in table.items()}
        assert all(share > 0.02 for share in shares.values())
        assert all(share < 0.60 for share in shares.values())


class TestRemapping:
    def test_remove_only_moves_the_removed_members_keys(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        before = {key: ring.locate(key) for key in KEYS}
        ring.remove("c")
        for key in KEYS:
            if before[key] == "c":
                assert ring.locate(key) != "c"
            else:
                assert ring.locate(key) == before[key]

    def test_add_only_steals_keys_for_the_new_member(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = {key: ring.locate(key) for key in KEYS}
        ring.add("d")
        moved = 0
        for key in KEYS:
            after = ring.locate(key)
            if after != before[key]:
                assert after == "d"
                moved += 1
        # Roughly 1/n of the keys move — far from a modulo reshard.
        assert 0 < moved < len(KEYS) // 2

    def test_duplicate_add_raises(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")

    def test_remove_missing_raises(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.remove("b")

    def test_empty_ring_cannot_locate(self):
        with pytest.raises(ValueError):
            ConsistentHashRing().locate("anything")


class TestSurface:
    def test_len_contains_members(self):
        ring = ConsistentHashRing(["b", "a"])
        assert len(ring) == 2
        assert "a" in ring and "z" not in ring
        assert ring.members() == ["a", "b"]

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)
