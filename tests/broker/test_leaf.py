"""Leaf brokers: the delta log, standby replication, failover, probes."""

import pytest

from repro.broker import CorpusStats, GlobalStatsView, LeafBroker, LeafUnavailableError
from repro.metasearch.selection import Cori

from tests.broker.util import make_summary


@pytest.fixture
def leaf():
    broker = LeafBroker("leaf-00")
    broker.apply_delta("S0", make_summary(10, {"databases": (30, 8)}))
    broker.apply_delta("S1", make_summary(20, {"retrieval": (12, 6)}))
    return broker


class TestDeltaStream:
    def test_deltas_build_the_primary(self, leaf):
        assert len(leaf.index) == 2
        assert leaf.index.collection_frequency("databases") == 1

    def test_none_delta_removes(self, leaf):
        leaf.apply_delta("S0", None)
        assert "S0" not in leaf.index
        assert leaf.index.collection_frequency("databases") == 0

    def test_reharvest_replaces(self, leaf):
        leaf.apply_delta("S0", make_summary(5, {"networks": (4, 2)}))
        assert leaf.index.collection_frequency("databases") == 0
        assert leaf.index.collection_frequency("networks") == 1


class TestReplication:
    def test_lag_counts_unreplayed_deltas(self, leaf):
        assert leaf.replication_lag == 2
        assert not leaf.in_sync
        assert leaf.replicate() == 2
        assert leaf.in_sync

    def test_replicate_converges_generations(self, leaf):
        leaf.replicate()
        assert leaf._standby.generation == leaf.index.generation
        assert leaf._standby.summaries() == leaf.index.summaries()

    def test_eager_replication_never_lags(self):
        broker = LeafBroker("leaf-00", eager_replication=True)
        for index in range(5):
            broker.apply_delta(f"S{index}", make_summary(1, {"query": (1, 1)}))
            assert broker.in_sync

    def test_replicate_is_incremental(self, leaf):
        leaf.replicate()
        leaf.apply_delta("S2", make_summary(3, {"systems": (2, 1)}))
        assert leaf.replication_lag == 1
        assert leaf.replicate() == 1


class TestFailover:
    def test_down_leaf_refuses_to_serve(self, leaf):
        leaf.fail()
        assert leaf.is_down
        with pytest.raises(LeafUnavailableError):
            leaf.probe(["databases"], 1)
        with pytest.raises(LeafUnavailableError):
            leaf.select_candidates(Cori(), ["databases"], 1, _stats(leaf))
        with pytest.raises(LeafUnavailableError):
            leaf.aggregate_summary()

    def test_deltas_accepted_while_down(self, leaf):
        leaf.fail()
        leaf.apply_delta("S2", make_summary(3, {"systems": (2, 1)}))
        leaf.fail_over()
        assert "S2" in leaf.index

    def test_failover_promotes_an_identical_index(self, leaf):
        before = leaf.index.summaries()
        generation = leaf.index.generation
        leaf.fail()
        leaf.fail_over()
        assert not leaf.is_down
        assert leaf.index.summaries() == before
        assert leaf.index.generation == generation

    def test_fresh_standby_rebuilds_from_the_full_log(self, leaf):
        leaf.fail_over()
        assert leaf.replication_lag == len(leaf._log)
        leaf.replicate()
        assert leaf._standby.summaries() == leaf.index.summaries()


class TestProbe:
    def test_probe_reports_shard_statistics(self, leaf):
        probe = leaf.probe(["databases", "absent"], 5)
        assert probe.leaf_id == "leaf-00"
        assert probe.n_sources == 2
        assert probe.term_lengths == (1, 0)
        assert probe.term_collection_frequencies == (1, 0)
        assert probe.term_postings == (30, 0)
        assert probe.touches()

    def test_probe_fill_is_first_k_in_id_order(self, leaf):
        assert leaf.probe([], 1).fill_ids == ("S0",)
        assert leaf.probe([], 9).fill_ids == ("S0", "S1")

    def test_untouched_shard_does_not_touch(self, leaf):
        assert not leaf.probe(["absent"], 1).touches()


class TestGlobalStatsView:
    def test_corpus_statistics_come_from_the_root(self, leaf):
        stats = CorpusStats(
            n_sources=100,
            clamped_mass_total=5000,
            collection_frequencies={"databases": 37},
        )
        view = GlobalStatsView(leaf.index, stats)
        assert len(view) == 100
        assert view.mean_clamped_word_mass() == 50.0
        assert view.collection_frequency("databases") == 37
        assert view.term_columns("databases").collection_frequency == 37
        assert view.collection_frequency("absent") == 0

    def test_per_source_reads_come_from_the_shard(self, leaf):
        view = GlobalStatsView(leaf.index, _stats(leaf))
        assert "S0" in view and "S9" not in view
        assert view.source_ids() == leaf.index.source_ids()
        assert view.summaries() == leaf.index.summaries()
        columns = view.term_columns("databases")
        assert list(columns.postings) == [30]

    def test_empty_corpus_mean_is_zero(self, leaf):
        stats = CorpusStats(0, 0, {})
        assert GlobalStatsView(leaf.index, stats).mean_clamped_word_mass() == 0.0


class TestAggregateSummary:
    def test_cached_per_generation(self, leaf):
        first = leaf.aggregate_summary()
        assert leaf.aggregate_summary() is first
        leaf.apply_delta("S2", make_summary(3, {"systems": (2, 1)}))
        second = leaf.aggregate_summary()
        assert second is not first
        assert second.num_docs == 33

    def test_shard_stats_row(self, leaf):
        stats = leaf.shard_stats()
        assert stats["leaf"] == "leaf-00"
        assert stats["sources"] == 2
        assert stats["replication_lag"] == 2
        assert stats["in_sync"] is False


def _stats(leaf):
    return CorpusStats(
        n_sources=len(leaf.index),
        clamped_mass_total=leaf.index.clamped_mass_total,
        collection_frequencies={},
    )
