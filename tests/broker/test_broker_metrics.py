"""Broker metrics: Prometheus export and metrics-disabled neutrality."""

import pytest

from repro.broker import AdmissionPolicy
from repro.metasearch.selection import Cori
from repro.observability import (
    MetricsRegistry,
    get_registry,
    render_prometheus,
    set_registry,
)

from tests.broker.util import demo_population, populated


@pytest.fixture
def registry():
    previous = get_registry()
    fresh = MetricsRegistry()
    set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestPrometheusExport:
    def test_broker_families_render(self, registry):
        root = populated(3, demo_population())
        root.select(Cori(), ["databases"], 2)
        text = render_prometheus(registry)
        assert "# TYPE broker_leaf_selections_total counter" in text
        assert 'broker_leaf_selections_total{leaf="leaf-00"}' in text
        assert "# TYPE broker_route_depth histogram" in text
        assert 'broker_route_depth_bucket{le="16"' in text or "broker_route_depth_bucket" in text
        assert "broker_route_depth_count 1" in text

    def test_shed_counter_renders_with_reason(self, registry):
        from repro.broker import BrokerOverloadedError

        root = populated(
            2, demo_population(), admission=AdmissionPolicy(max_inflight=0)
        )
        with pytest.raises(BrokerOverloadedError):
            root.select(Cori(), ["databases"], 1)
        text = render_prometheus(registry)
        assert 'broker_shed_total{reason="inflight"} 1' in text

    def test_failover_counter_renders(self, registry):
        root = populated(2, demo_population())
        root.handles()[0].fail()
        root.select(Cori(), ["databases"], 1)
        text = render_prometheus(registry)
        assert 'broker_failovers_total{leaf="leaf-00"} 1' in text


class TestDisabledNeutrality:
    def test_disabled_registry_changes_nothing_but_the_export(self):
        population = demo_population()

        previous = get_registry()
        try:
            set_registry(MetricsRegistry())
            root = populated(3, population)
            enabled_result = root.select(Cori(), ["databases", "query"], 4)
            assert render_prometheus(get_registry()) != ""

            disabled = MetricsRegistry.disabled()
            set_registry(disabled)
            root = populated(3, population)
            disabled_result = root.select(Cori(), ["databases", "query"], 4)
            assert render_prometheus(disabled) == ""
        finally:
            set_registry(previous)

        assert disabled_result == enabled_result

    def test_disabled_registry_keeps_failover_and_shed_paths_working(self):
        previous = get_registry()
        try:
            set_registry(MetricsRegistry.disabled())
            root = populated(2, demo_population())
            root.handles()[1].fail()
            assert root.select(Cori(), ["databases"], 2)
        finally:
            set_registry(previous)
