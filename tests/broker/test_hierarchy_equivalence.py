"""Property suite: hierarchical selection is a bit-exact twin of flat.

For every distributable selector, over randomized summary populations,
partition widths (leaf fan-outs) and queries — with and without
mid-stream re-harvest and ``forget`` deltas — the hierarchy's top-k and
full ranking must equal the flat index's *floats in the same order*,
ties included.  The flat single-broker index stays the oracle of the
subsystem.
"""

from hypothesis import given, settings, strategies as st

from repro.broker import RootBroker, build_hierarchy
from repro.metasearch.selection import (
    BGloss,
    BySize,
    Cori,
    SelectAll,
    VGlossMax,
    VGlossSum,
)
from repro.metasearch.summary_index import SummaryIndex
from repro.starts.metadata import SContentSummary, SummaryEntryLine, SummarySection

WORD_POOL = ["alpha", "beta", "Gamma", "delta", "epsilon", "Zeta"]
QUERY_POOL = WORD_POOL + ["absent", "Missing"]


def _selectors():
    return [BGloss(), VGlossSum(), VGlossMax(), Cori(), SelectAll(), BySize()]


@st.composite
def summary_sets(draw):
    n_sources = draw(st.integers(0, 10))
    summaries = {}
    for s in range(n_sources):
        n_words = draw(st.integers(0, len(WORD_POOL)))
        words = draw(
            st.lists(
                st.sampled_from(WORD_POOL),
                min_size=n_words,
                max_size=n_words,
                unique=True,
            )
        )
        entries = tuple(
            SummaryEntryLine(
                word,
                draw(st.integers(-1, 30)),
                draw(st.integers(-1, 25)),
            )
            for word in words
        )
        summaries[f"S{s}"] = SContentSummary(
            num_docs=draw(st.sampled_from([0, 1, 5, 40, 300])),
            case_sensitive=draw(st.booleans()),
            sections=(SummarySection("body-of-text", "en", entries),),
        )
    return summaries


@st.composite
def queries(draw):
    n_terms = draw(st.integers(0, 4))
    return draw(
        st.lists(
            st.sampled_from(QUERY_POOL), min_size=n_terms, max_size=n_terms
        )
    )


def _build(n_leaves, summaries):
    root = build_hierarchy(n_leaves)
    for source_id in sorted(summaries):
        root.apply_delta(source_id, summaries[source_id])
    return root


@settings(max_examples=80, deadline=None)
@given(
    summaries=summary_sets(),
    terms=queries(),
    k=st.integers(0, 12),
    n_leaves=st.integers(1, 5),
)
def test_hierarchical_equals_flat(summaries, terms, k, n_leaves):
    index = SummaryIndex.from_summaries(summaries)
    root = _build(n_leaves, summaries)
    for selector in _selectors():
        assert root.select(selector, terms, k) == selector.select(terms, index, k)
        assert root.rank(selector, terms) == selector.rank(terms, index)


@settings(max_examples=50, deadline=None)
@given(
    initial=summary_sets(),
    replacement=summary_sets(),
    terms=queries(),
    n_leaves=st.integers(1, 4),
    data=st.data(),
)
def test_equivalence_survives_delta_streams(
    initial, replacement, terms, n_leaves, data
):
    """Re-harvest and forget deltas, applied mid-stream through the
    ring, leave the hierarchy equal to the flat index over the same
    surviving population."""
    index = SummaryIndex.from_summaries(initial)
    root = _build(n_leaves, initial)
    live = dict(initial)
    for source_id, summary in replacement.items():
        if data.draw(st.booleans(), label=f"replace {source_id}"):
            index.add(source_id, summary)
            root.apply_delta(source_id, summary)
            live[source_id] = summary
    for source_id in list(live):
        if data.draw(st.booleans(), label=f"forget {source_id}"):
            index.remove(source_id)
            root.apply_delta(source_id, None)
            del live[source_id]

    sharded = {
        source_id
        for leaf in root.handles()
        for source_id in leaf.index.source_ids()
    }
    assert sharded == set(live)
    for selector in _selectors():
        assert root.select(selector, terms, 3) == selector.select(terms, index, 3)
        assert root.rank(selector, terms) == selector.rank(terms, index)


@settings(max_examples=40, deadline=None)
@given(
    summaries=summary_sets(),
    terms=queries(),
    k=st.integers(0, 8),
    split=st.integers(1, 3),
)
def test_nested_hierarchy_equals_flat(summaries, terms, k, split):
    """Two sub-roots under a top root: exactness survives nesting."""
    index = SummaryIndex.from_summaries(summaries)
    sub_a = build_hierarchy(split, leaf_prefix="a", broker_id="sub-a")
    sub_b = build_hierarchy(4 - split, leaf_prefix="b", broker_id="sub-b")
    top = RootBroker([sub_a, sub_b])
    for source_id in sorted(summaries):
        top.apply_delta(source_id, summaries[source_id])
    for selector in _selectors():
        assert top.select(selector, terms, k) == selector.select(terms, index, k)


@settings(max_examples=40, deadline=None)
@given(
    summaries=summary_sets(),
    terms=queries(),
    k=st.integers(0, 8),
    n_leaves=st.integers(2, 5),
    failing=st.integers(0, 4),
)
def test_equivalence_survives_failover(summaries, terms, k, n_leaves, failing):
    """A failed leaf is promoted mid-selection without losing exactness."""
    index = SummaryIndex.from_summaries(summaries)
    root = _build(n_leaves, summaries)
    root.handles()[failing % n_leaves].fail()
    for selector in _selectors():
        assert root.select(selector, terms, k) == selector.select(terms, index, k)
