"""Network leaves: the hierarchy spanning the simulated internet."""

import pytest

from repro.broker import (
    LeafBroker,
    NetworkLeafHandle,
    RootBroker,
    selector_wire_name,
)
from repro.metasearch.selection import Cori, CostAware, VGlossSum
from repro.transport import SimulatedInternet, publish_broker_leaf

from tests.broker.util import demo_population, flat_index


def _network_root(population, n_leaves=3):
    internet = SimulatedInternet(seed=3)
    local = [LeafBroker(f"net-{index}") for index in range(n_leaves)]
    handles = []
    for leaf in local:
        base = f"http://{leaf.leaf_id}.example.org/broker"
        publish_broker_leaf(internet, leaf, base)
        handles.append(NetworkLeafHandle(internet, base, leaf.leaf_id))
    root = RootBroker(handles)
    for source_id in sorted(population):
        root.apply_delta(source_id, population[source_id])
    return root, local, internet


class TestWireExactness:
    def test_select_over_the_wire_matches_flat(self):
        population = demo_population()
        index = flat_index(population)
        root, local, _ = _network_root(population)
        # Deltas crossed the wire as SOIF text: the remote shards hold
        # every source.
        assert sum(len(leaf.index) for leaf in local) == len(population)
        for terms in (["databases"], ["query", "medicine"], []):
            assert root.select(Cori(), terms, 5) == Cori().select(terms, index, 5)

    def test_rank_floats_round_trip_exactly(self):
        population = demo_population()
        index = flat_index(population)
        root, _, _ = _network_root(population)
        terms = ["retrieval", "networks"]
        assert root.rank(VGlossSum(), terms) == VGlossSum().rank(terms, index)

    def test_forget_crosses_the_wire(self):
        population = demo_population()
        root, local, _ = _network_root(population)
        victim = sorted(population)[0]
        root.apply_delta(victim, None)
        assert all(victim not in leaf.index for leaf in local)
        remaining = {k: v for k, v in population.items() if k != victim}
        index = flat_index(remaining)
        assert root.select(Cori(), ["databases"], 4) == Cori().select(
            ["databases"], index, 4
        )


class TestWireFailover:
    def test_leaf_failure_crosses_the_wire_and_recovers(self):
        population = demo_population()
        index = flat_index(population)
        root, local, _ = _network_root(population)
        local[1].fail()
        assert root.select(Cori(), ["databases"], 4) == Cori().select(
            ["databases"], index, 4
        )
        assert not local[1].is_down

    def test_stats_endpoint(self):
        population = demo_population()
        root, local, _ = _network_root(population, n_leaves=2)
        handle = root.handles()[0]
        stats = handle.shard_stats()
        assert stats["leaf"] == local[0].leaf_id
        assert stats["sources"] == len(local[0].index)


class TestWireNames:
    def test_registered_selectors_have_wire_names(self):
        assert selector_wire_name(Cori()) == "cori"
        assert selector_wire_name(VGlossSum()) == "vgloss-sum"

    def test_unregistered_selector_is_rejected(self):
        with pytest.raises(ValueError, match="no wire name"):
            selector_wire_name(CostAware(Cori(), {}))

    def test_subclass_does_not_inherit_the_parent_name(self):
        class TweakedCori(Cori):
            pass

        with pytest.raises(ValueError):
            selector_wire_name(TweakedCori())

    def test_unknown_selector_on_the_wire_is_rejected_server_side(self):
        internet = SimulatedInternet(seed=1)
        leaf = LeafBroker("net-0")
        base = "http://net-0.example.org/broker"
        publish_broker_leaf(internet, leaf, base)
        import json

        with pytest.raises(ValueError, match="unknown selector"):
            internet.post(
                f"{base}/select",
                json.dumps(
                    {
                        "selector": "bogus",
                        "terms": [],
                        "k": 1,
                        "stats": {
                            "n_sources": 0,
                            "clamped_mass_total": 0,
                            "collection_frequencies": {},
                        },
                    }
                ).encode("utf-8"),
            )
