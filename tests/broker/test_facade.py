"""BrokeredMetasearcher: the one-line swap keeps results bit-identical."""

import pytest

from repro import BrokeredMetasearcher, Metasearcher, SQuery, parse_expression
from repro import quick_federation
from repro.broker import build_hierarchy
from repro.metasearch.selection import Cori, RandomSelector


def _query(text="databases"):
    return SQuery(
        ranking_expression=parse_expression(f'(body-of-text "{text}")'),
        max_number_documents=8,
    )


def _pair(**brokered_kwargs):
    """A flat and a brokered searcher over identical federations."""
    internet_a, url_a = quick_federation(seed=11)
    internet_b, url_b = quick_federation(seed=11)
    flat = Metasearcher(internet_a, [url_a])
    brokered = BrokeredMetasearcher(internet_b, [url_b], **brokered_kwargs)
    flat.refresh()
    brokered.refresh()
    return flat, brokered


def _rows(result):
    return [
        (doc.score, doc.source_id, doc.linkage) for doc in result.documents
    ]


class TestSearchParity:
    @pytest.mark.parametrize("n_leaves", [1, 2, 4])
    def test_search_is_bit_identical(self, n_leaves):
        flat, brokered = _pair(n_leaves=n_leaves)
        for text in ("databases", "retrieval systems", "medicine"):
            a = flat.search(_query(text), k_sources=2)
            b = brokered.search(_query(text), k_sources=2)
            assert b.selected_sources == a.selected_sources
            assert _rows(b) == _rows(a)

    def test_search_stream_is_bit_identical(self):
        flat, brokered = _pair(n_leaves=3)
        final_flat = list(flat.search_stream(_query(), k_sources=3))[-1]
        final_brokered = list(brokered.search_stream(_query(), k_sources=3))[-1]
        assert final_brokered.is_final and final_flat.is_final
        assert _rows(final_brokered) == _rows(final_flat)

    def test_explicit_selector_is_honoured(self):
        flat, brokered = _pair(n_leaves=3)
        flat.selector = Cori()
        brokered.selector = Cori()
        a = flat.search(_query("distributed databases"), k_sources=3)
        b = brokered.search(_query("distributed databases"), k_sources=3)
        assert b.selected_sources == a.selected_sources


class TestDeltaCoherence:
    def test_forget_keeps_hierarchy_and_flat_in_step(self):
        flat, brokered = _pair(n_leaves=3)
        flat.discovery.forget("Source-DB")
        brokered.discovery.forget("Source-DB")
        a = flat.search(_query(), k_sources=3)
        b = brokered.search(_query(), k_sources=3)
        assert "Source-DB" not in b.selected_sources
        assert b.selected_sources == a.selected_sources
        assert _rows(b) == _rows(a)

    def test_hierarchy_holds_every_harvested_source(self):
        _, brokered = _pair(n_leaves=4)
        sharded = {
            source_id
            for leaf in brokered.broker.handles()
            for source_id in leaf.index.source_ids()
        }
        assert sharded == set(brokered.discovery.summaries())


class TestFallbacks:
    def test_non_distributable_selector_falls_back_to_flat(self):
        internet_a, url_a = quick_federation(seed=11)
        internet_b, url_b = quick_federation(seed=11)
        flat = Metasearcher(internet_a, [url_a], selector=RandomSelector(seed=4))
        brokered = BrokeredMetasearcher(
            internet_b, [url_b], selector=RandomSelector(seed=4), n_leaves=3
        )
        flat.refresh()
        brokered.refresh()
        a = flat.search(_query(), k_sources=2)
        b = brokered.search(_query(), k_sources=2)
        assert b.selected_sources == a.selected_sources

    def test_prebuilt_broker_excludes_policy_kwargs(self):
        internet, url = quick_federation(seed=11)
        with pytest.raises(ValueError):
            BrokeredMetasearcher(
                internet, [url], broker=build_hierarchy(2), n_leaves=2,
                broker_executor=object(),
            )

    def test_prebuilt_broker_accepted(self):
        internet, url = quick_federation(seed=11)
        root = build_hierarchy(2)
        searcher = BrokeredMetasearcher(internet, [url], broker=root)
        searcher.refresh()
        assert searcher.broker is root
        assert sum(len(leaf.index) for leaf in root.handles()) == len(
            searcher.discovery.summaries()
        )
