"""Shared builders for the broker-subsystem suite."""

import random

from repro.broker import build_hierarchy
from repro.metasearch.summary_index import SummaryIndex
from repro.starts.metadata import SContentSummary, SummaryEntryLine, SummarySection

VOCABULARY = ["databases", "retrieval", "networks", "medicine", "systems", "query"]


def make_summary(num_docs, words, language="en", **flags):
    entries = tuple(
        SummaryEntryLine(word, postings, df)
        for word, (postings, df) in sorted(words.items())
    )
    return SContentSummary(
        num_docs=num_docs,
        sections=(SummarySection("body-of-text", language, entries),),
        **flags,
    )


def demo_population(n_sources=24, seed=5):
    """A deterministic handcrafted federation over a tiny vocabulary."""
    rng = random.Random(seed)
    population = {}
    for index in range(n_sources):
        words = {}
        for word in VOCABULARY:
            if rng.random() < 0.55:
                postings = rng.randint(1, 200)
                words[word] = (postings, rng.randint(1, postings))
        population[f"Src-{index:03d}"] = make_summary(rng.randint(1, 120), words)
    return population


def populated(n_leaves, population, **kwargs):
    """A fresh hierarchy fed the population through the delta stream."""
    root = build_hierarchy(n_leaves, **kwargs)
    for source_id in sorted(population):
        root.apply_delta(source_id, population[source_id])
    return root


def flat_index(population):
    return SummaryIndex.from_summaries(population)
