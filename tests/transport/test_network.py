"""The simulated internet: routing, latency, cost accounting."""

import pytest

from repro.transport.network import HostProfile, SimulatedInternet, TransportError


class TestRouting:
    def test_get_and_post_dispatch(self):
        net = SimulatedInternet()
        net.register_get("http://h.org/blob", lambda: b"data")
        net.register_post("http://h.org/query", lambda body: body.upper())
        assert net.fetch("http://h.org/blob") == b"data"
        assert net.post("http://h.org/query", b"abc") == b"ABC"

    def test_unknown_url_raises(self):
        net = SimulatedInternet()
        with pytest.raises(TransportError):
            net.fetch("http://nowhere.org/x")
        with pytest.raises(TransportError):
            net.post("http://nowhere.org/x", b"")

    def test_get_post_namespaces_are_separate(self):
        net = SimulatedInternet()
        net.register_get("http://h.org/x", lambda: b"")
        with pytest.raises(TransportError):
            net.post("http://h.org/x", b"")

    def test_known_urls_listing(self):
        net = SimulatedInternet()
        net.register_get("http://h.org/a", lambda: b"")
        net.register_post("http://h.org/b", lambda body: b"")
        assert net.known_urls() == ["http://h.org/a", "http://h.org/b"]


class TestAccounting:
    def test_every_request_logged(self):
        net = SimulatedInternet()
        net.register_get("http://h.org/x", lambda: b"")
        net.fetch("http://h.org/x")
        net.fetch("http://h.org/x")
        assert net.request_count() == 2
        assert net.request_count("h.org") == 2
        assert net.request_count("other.org") == 0

    def test_latency_respects_profile(self):
        net = SimulatedInternet()
        net.register_host("slow.org", HostProfile(latency_ms=500.0, jitter_ms=0.0))
        net.register_get("http://slow.org/x", lambda: b"")
        net.fetch("http://slow.org/x")
        assert net.total_latency_ms() == pytest.approx(500.0)

    def test_first_registration_wins(self):
        net = SimulatedInternet()
        net.register_host("h.org", HostProfile(latency_ms=100.0, jitter_ms=0.0))
        net.register_host("h.org", HostProfile(latency_ms=999.0, jitter_ms=0.0))
        net.register_get("http://h.org/x", lambda: b"")
        net.fetch("http://h.org/x")
        assert net.total_latency_ms() == pytest.approx(100.0)

    def test_cost_accumulates(self):
        net = SimulatedInternet()
        net.register_host("pay.org", HostProfile(cost_per_query=2.5))
        net.register_get("http://pay.org/x", lambda: b"")
        net.fetch("http://pay.org/x")
        net.fetch("http://pay.org/x")
        assert net.total_cost() == pytest.approx(5.0)

    def test_latency_deterministic_per_seed(self):
        def run(seed):
            net = SimulatedInternet(seed=seed)
            net.register_get("http://h.org/x", lambda: b"")
            net.fetch("http://h.org/x")
            return net.total_latency_ms()

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_reset_log(self):
        net = SimulatedInternet()
        net.register_get("http://h.org/x", lambda: b"")
        net.fetch("http://h.org/x")
        net.reset_log()
        assert net.request_count() == 0
        assert net.total_cost() == 0.0
