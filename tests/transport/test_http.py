"""The real-HTTP transport: sockets, servers, and the shared client."""

import pytest

from repro.corpus import source1_documents, source2_documents
from repro.metasearch import Metasearcher
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import StartsClient
from repro.transport.http import HttpTransport, StartsHttpServer
from repro.transport.network import TransportError


@pytest.fixture(scope="module")
def server():
    resource = Resource(
        "HttpWorld",
        [
            StartsSource("Source-1", source1_documents()),
            StartsSource("Source-2", source2_documents()),
        ],
    )
    with StartsHttpServer(resource) as running:
        yield running


def ranking_query():
    return SQuery(
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        )
    )


class TestEndpoints:
    def test_resource_blob(self, server):
        client = StartsClient(HttpTransport())
        resource = client.fetch_resource(server.resource_url())
        assert resource.source_ids() == ["Source-1", "Source-2"]
        for source_id in resource.source_ids():
            assert resource.metadata_url(source_id).startswith(server.base_url)

    def test_metadata_links_rewritten_to_server(self, server):
        client = StartsClient(HttpTransport())
        metadata = client.fetch_metadata(f"{server.base_url}/Source-1/meta")
        assert metadata.linkage == server.source_query_url("Source-1")
        assert metadata.content_summary_linkage.startswith(server.base_url)

    def test_query_round_trip(self, server):
        client = StartsClient(HttpTransport())
        results = client.query(server.source_query_url("Source-1"), ranking_query())
        assert results.sources == ("Source-1",)
        assert results.documents

    def test_summary_and_sample(self, server):
        client = StartsClient(HttpTransport())
        summary = client.fetch_summary(f"{server.base_url}/Source-1/cont_sum.txt")
        assert summary.num_docs == 3
        sample = client.fetch_sample_results(f"{server.base_url}/Source-1/sample")
        assert sample.all_scores()

    def test_scan_over_http(self, server):
        client = StartsClient(HttpTransport())
        response = client.scan(
            f"{server.base_url}/Source-1/scan", "body-of-text", "data", count=3
        )
        assert response.entries

    def test_sources_attribute_routes_through_resource(self, server):
        client = StartsClient(HttpTransport())
        query = ranking_query().with_sources("Source-2")
        results = client.query(server.source_query_url("Source-1"), query)
        assert set(results.sources) == {"Source-1", "Source-2"}

    def test_unknown_paths_404(self, server):
        transport = HttpTransport()
        with pytest.raises(TransportError):
            transport.fetch(f"{server.base_url}/nope")
        with pytest.raises(TransportError):
            transport.post(f"{server.base_url}/NoSource/query", b"@SQuery{\n}\n")


class TestMetasearcherOverHttp:
    def test_full_pipeline_on_real_sockets(self, server):
        searcher = Metasearcher(HttpTransport(), [server.resource_url()])
        known = searcher.refresh()
        assert len(known) == 2
        result = searcher.search(ranking_query(), k_sources=2)
        assert result.documents
        assert result.query_latency_parallel_ms > 0.0


class TestTransportAccounting:
    def test_latency_measured(self, server):
        transport = HttpTransport()
        transport.fetch(f"{server.base_url}/Source-1/meta")
        assert transport.request_count() == 1
        assert transport.total_latency_ms() > 0.0
        transport.reset_log()
        assert transport.request_count() == 0
