"""The /metrics endpoint on both transports, golden-parsed."""

import urllib.request

from repro.metasearch import Metasearcher
from repro.starts import SQuery, parse_expression
from repro.transport import StartsClient, StartsHttpServer, publish_metrics


def _parse_prometheus(text: str) -> dict[str, dict[str, float]]:
    """Exposition text → {family: {sample line head: value}}.

    Raises on any line that does not fit the 0.0.4 text format — this
    is the golden parse the acceptance criteria require.
    """
    families: dict[str, dict[str, float]] = {}
    types: dict[str, str] = {}
    for line in text.splitlines():
        if not line:
            raise AssertionError("blank line in exposition")
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            name, kind = line[len("# TYPE ") :].split(" ")
            assert kind in ("counter", "gauge", "histogram"), kind
            types[name] = kind
            families.setdefault(name, {})
            continue
        assert not line.startswith("#"), line
        head, value = line.rsplit(" ", 1)
        name = head.split("{", 1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and stripped in types:
                assert types[stripped] == "histogram", name
                base = stripped
        assert base in types, f"sample {name} before its # TYPE"
        families[base][head] = float(value)
    return families


def _run_searches(internet, resource_url: str) -> None:
    searcher = Metasearcher(internet, [resource_url])
    searcher.refresh()
    for text in ("databases", "networking"):
        searcher.search(
            SQuery(
                ranking_expression=parse_expression(f'(body-of-text "{text}")'),
                max_number_documents=5,
            ),
            k_sources=2,
        )


class TestSimulatedEndpoint:
    def test_publish_and_scrape_metrics(self, small_federation, fresh_registry):
        internet, resource_url, _ = small_federation
        metrics_url = publish_metrics(internet, "http://metrics.example.org")
        assert metrics_url == "http://metrics.example.org/metrics"
        _run_searches(internet, resource_url)
        text = StartsClient(internet).fetch_metrics(metrics_url)
        families = _parse_prometheus(text)
        # Per-source families with real traffic.
        requests = families["source_requests_total"]
        assert any('source_id="Fed-' in head for head in requests)
        assert sum(requests.values()) >= 2
        assert "source_request_latency_ms" in families
        assert "metasearch_phase_ms" in families
        assert "engine_query_eval_ms" in families
        assert families["metasearch_searches_total"][
            'metasearch_searches_total{result="wire"}'
        ] == 2

    def test_scrape_reflects_live_state(self, small_federation, fresh_registry):
        internet, resource_url, _ = small_federation
        metrics_url = publish_metrics(internet, "http://metrics.example.org")
        client = StartsClient(internet)
        assert client.fetch_metrics(metrics_url) == ""  # nothing recorded yet
        _run_searches(internet, resource_url)
        assert "source_requests_total" in client.fetch_metrics(metrics_url)

    def test_explicit_registry_pins_the_exposition(
        self, small_federation, fresh_registry
    ):
        from repro.observability import MetricsRegistry

        internet, resource_url, _ = small_federation
        pinned = MetricsRegistry()
        pinned.counter("pinned_total", "Pinned.").inc()
        url = publish_metrics(
            internet, "http://pinned.example.org", registry=pinned
        )
        _run_searches(internet, resource_url)  # records to the global one
        text = StartsClient(internet).fetch_metrics(url)
        assert "pinned_total 1" in text
        assert "source_requests_total" not in text


class TestHttpEndpoint:
    def test_real_http_metrics_endpoint(self, paper_resource, fresh_registry):
        fresh_registry.counter(
            "source_requests_total", "Wire requests.", labels=("source_id", "outcome")
        ).labels(source_id="Source-1", outcome="ok").inc(4)
        with StartsHttpServer(paper_resource) as server:
            with urllib.request.urlopen(f"{server.base_url}/metrics") as response:
                assert response.status == 200
                content_type = response.headers["Content-Type"]
                body = response.read().decode("utf-8")
        assert "version=0.0.4" in content_type
        families = _parse_prometheus(body)
        assert families["source_requests_total"][
            'source_requests_total{source_id="Source-1",outcome="ok"}'
        ] == 4.0
