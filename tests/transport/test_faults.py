"""Deterministic fault injection and deadlines on the simulated internet."""

import pytest

from repro.transport import (
    FaultProfile,
    HostProfile,
    SimulatedInternet,
    TransportError,
    TransportTimeout,
)

URL = "http://flaky.org/data"


def make_internet(faults=None, seed=5, profile=None):
    internet = SimulatedInternet(seed=seed)
    internet.register_host(
        "flaky.org", profile or HostProfile(jitter_ms=0.0), faults
    )
    internet.register_get(URL, lambda: b"payload")
    return internet


def outcome_stream(internet, n=20):
    """(status, latency) of n fetches, exceptions included."""
    stream = []
    for _ in range(n):
        try:
            internet.fetch(URL)
        except TransportError:
            pass
        stream.append((internet.log[-1].status, internet.log[-1].latency_ms))
    return stream


class TestDeterminism:
    def test_same_seed_same_fault_stream(self):
        faults = FaultProfile(failure_rate=0.3, timeout_rate=0.2, hang_ms=100.0)
        first = outcome_stream(make_internet(faults))
        second = outcome_stream(make_internet(faults))
        assert first == second
        statuses = {status for status, _ in first}
        assert "ok" in statuses and statuses - {"ok"}  # faults actually fired

    def test_different_seed_different_stream(self):
        faults = FaultProfile(failure_rate=0.5)
        first = outcome_stream(make_internet(faults, seed=5))
        second = outcome_stream(make_internet(faults, seed=6))
        assert first != second


class TestFaultShapes:
    def test_fail_first_then_recover(self):
        internet = make_internet(FaultProfile.flaky(2))
        for _ in range(2):
            with pytest.raises(TransportError):
                internet.fetch(URL)
        assert internet.fetch(URL) == b"payload"
        assert internet.failure_count() == 2

    def test_timeout_after_good_requests(self):
        internet = make_internet(FaultProfile.hangs(after=1, hang_ms=2_000.0))
        assert internet.fetch(URL) == b"payload"
        with pytest.raises(TransportTimeout):
            internet.fetch(URL)
        assert internet.log[-1].latency_ms == pytest.approx(2_000.0)

    def test_dead_host_always_errors(self):
        internet = make_internet(FaultProfile.dead())
        for _ in range(3):
            with pytest.raises(TransportError):
                internet.fetch(URL)

    def test_timeout_is_a_transport_error(self):
        assert issubclass(TransportTimeout, TransportError)

    def test_set_fault_profile_mid_run_restarts_schedule(self):
        internet = make_internet()
        for _ in range(5):
            internet.fetch(URL)  # pre-outage traffic
        internet.set_fault_profile("flaky.org", FaultProfile.flaky(1))
        with pytest.raises(TransportError):
            internet.fetch(URL)  # schedule counts from attachment
        assert internet.fetch(URL) == b"payload"
        internet.set_fault_profile("flaky.org", None)
        assert internet.fetch(URL) == b"payload"


class TestDeadlines:
    def test_deadline_clamps_latency_and_raises(self):
        internet = make_internet(profile=HostProfile(latency_ms=20.0, jitter_ms=0.0))
        with pytest.raises(TransportTimeout) as excinfo:
            internet.perform(URL, deadline_ms=5.0)
        record = excinfo.value.record
        assert record is not None
        assert record.status == "timeout"
        assert record.latency_ms == pytest.approx(5.0)  # paid only the wait
        assert internet.log[-1] is record

    def test_generous_deadline_passes_through(self):
        internet = make_internet(profile=HostProfile(latency_ms=20.0, jitter_ms=0.0))
        payload, record = internet.perform(URL, deadline_ms=100.0)
        assert payload == b"payload"
        assert record.status == "ok"
        assert record.latency_ms == pytest.approx(20.0)

    def test_failed_attempts_carry_cost(self):
        internet = make_internet(
            FaultProfile.dead(),
            profile=HostProfile(latency_ms=20.0, jitter_ms=0.0, cost_per_query=3.0),
        )
        with pytest.raises(TransportError) as excinfo:
            internet.fetch(URL)
        assert excinfo.value.record.cost == pytest.approx(3.0)
        assert internet.total_cost() == pytest.approx(3.0)
