"""Published endpoints: source/resource servers and the typed client."""

import pytest

from repro.corpus import source1_documents
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import (
    HostProfile,
    SimulatedInternet,
    StartsClient,
    publish_resource,
    publish_source,
)


@pytest.fixture
def published():
    net = SimulatedInternet(seed=3)
    source = StartsSource("Source-1", source1_documents())
    query_url = publish_source(net, source)
    return net, source, query_url


class TestSourceEndpoints:
    def test_query_endpoint(self, published):
        net, source, query_url = published
        client = StartsClient(net)
        query = SQuery(
            ranking_expression=parse_expression('list((body-of-text "databases"))')
        )
        over_wire = client.query(query_url, query)
        direct = source.search(query)
        assert over_wire == direct

    def test_metadata_endpoint(self, published):
        net, source, _ = published
        client = StartsClient(net)
        metadata = client.fetch_metadata(f"{source.base_url}/meta")
        assert metadata == source.metadata()

    def test_summary_endpoint_matches_advertised_linkage(self, published):
        net, source, _ = published
        client = StartsClient(net)
        metadata = client.fetch_metadata(f"{source.base_url}/meta")
        summary = client.fetch_summary(metadata.content_summary_linkage)
        assert summary.num_docs == source.document_count

    def test_sample_endpoint(self, published):
        net, source, _ = published
        client = StartsClient(net)
        metadata = client.fetch_metadata(f"{source.base_url}/meta")
        sample = client.fetch_sample_results(metadata.sample_database_results)
        assert sample == source.sample_results()


class TestResourceEndpoints:
    def test_resource_blob_lists_sources(self, paper_resource):
        net = SimulatedInternet()
        url = publish_resource(net, paper_resource, "http://stanford.example.org")
        client = StartsClient(net)
        resource = client.fetch_resource(url)
        assert resource.source_ids() == ["Source-1", "Source-2"]

    def test_queries_route_through_resource(self, paper_resource):
        """A query naming Source-2 in Sources gets resource-side
        merging even though it was POSTed to Source-1."""
        net = SimulatedInternet()
        publish_resource(net, paper_resource, "http://stanford.example.org")
        client = StartsClient(net)
        query = SQuery(
            ranking_expression=parse_expression(
                'list((body-of-text "distributed") (body-of-text "databases"))'
            )
        ).with_sources("Source-2")
        source1_url = paper_resource.source("Source-1").base_url + "/query"
        results = client.query(source1_url, query)
        assert set(results.sources) == {"Source-1", "Source-2"}

    def test_per_source_host_profiles(self, paper_resource):
        net = SimulatedInternet()
        publish_resource(
            net,
            paper_resource,
            "http://stanford.example.org",
            source_profiles={
                "Source-1": HostProfile(latency_ms=5.0, jitter_ms=0.0),
                "Source-2": HostProfile(latency_ms=300.0, jitter_ms=0.0),
            },
        )
        client = StartsClient(net)
        client.fetch_metadata(
            paper_resource.source("Source-2").base_url + "/meta"
        )
        assert net.total_latency_ms() == pytest.approx(300.0)
