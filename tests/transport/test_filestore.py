"""File-based blob export and file:// harvesting."""

import pytest

from repro.metasearch import Metasearcher
from repro.starts import SContentSummary, SMetaAttributes, SResource, parse_soif
from repro.transport import (
    SimulatedInternet,
    export_resource,
    export_source_blobs,
    register_file_url,
)


class TestSourceExport:
    def test_three_blobs_written(self, source1, tmp_path):
        written = export_source_blobs(source1, tmp_path)
        assert set(written) == {"metadata", "summary", "sample"}
        for path in written.values():
            assert path.exists() and path.stat().st_size > 0

    def test_blobs_parse_back(self, source1, tmp_path):
        written = export_source_blobs(source1, tmp_path)
        metadata = SMetaAttributes.from_soif(
            parse_soif(written["metadata"].read_text())
        )
        assert metadata == source1.metadata()
        summary = SContentSummary.from_soif(
            parse_soif(written["summary"].read_text())
        )
        assert summary.num_docs == source1.document_count

    def test_re_export_overwrites(self, source1, tmp_path):
        export_source_blobs(source1, tmp_path)
        written = export_source_blobs(source1, tmp_path)
        assert written["metadata"].exists()


class TestResourceExport:
    def test_layout(self, paper_resource, tmp_path):
        written = export_resource(paper_resource, tmp_path)
        assert "resource" in written
        assert (tmp_path / "Source-1" / "meta.soif").exists()
        assert (tmp_path / "Source-2" / "cont_sum.txt").exists()

    def test_source_list_points_to_files(self, paper_resource, tmp_path):
        written = export_resource(paper_resource, tmp_path)
        resource = SResource.from_soif(parse_soif(written["resource"].read_text()))
        for source_id in ("Source-1", "Source-2"):
            assert resource.metadata_url(source_id).startswith("file://")


class TestFileUrls:
    def test_register_and_fetch(self, source1, tmp_path):
        written = export_source_blobs(source1, tmp_path)
        internet = SimulatedInternet()
        url = register_file_url(internet, written["summary"])
        assert url.startswith("file://")
        assert internet.fetch(url) == written["summary"].read_bytes()

    def test_lazy_read_sees_re_exports(self, source1, tmp_path):
        written = export_source_blobs(source1, tmp_path)
        internet = SimulatedInternet()
        url = register_file_url(internet, written["summary"])
        first = internet.fetch(url)
        written["summary"].write_text("@SContentSummary{\nNumDocs{1}: 0\n}\n")
        assert internet.fetch(url) != first

    def test_discovery_from_disk(self, paper_resource, tmp_path):
        """A metasearcher can harvest a resource exported to files."""
        written = export_resource(paper_resource, tmp_path)
        internet = SimulatedInternet()
        resource_url = register_file_url(internet, written["resource"])
        for key, path in written.items():
            if key != "resource":
                register_file_url(internet, path)

        # The on-disk SResource points to file:// metadata; those
        # metadata blobs point to http:// query/summary URLs, so only
        # metadata harvesting happens from disk.  Register the http
        # endpoints too for the summary/sample fetches.
        from repro.transport import publish_resource

        publish_resource(internet, paper_resource, "http://stanford.example.org")

        searcher = Metasearcher(internet, [resource_url])
        known = searcher.refresh()
        assert sorted(k.source_id for k in known) == ["Source-1", "Source-2"]
