"""Evaluation metrics: exact values on hand-checkable cases."""

import pytest
from hypothesis import given, strategies as st

from repro.experiments.metrics import (
    mean,
    precision_at_k,
    rank_recall_at_k,
    recall_at_k,
    spearman_overlap,
)


class TestMean:
    def test_empty(self):
        assert mean([]) == 0.0

    def test_values(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_generator_input(self):
        assert mean(x / 2 for x in [1, 3]) == 1.0


class TestPrecision:
    def test_perfect(self):
        assert precision_at_k(["a", "b"], {"a", "b"}, 2) == 1.0

    def test_half(self):
        assert precision_at_k(["a", "x"], {"a"}, 2) == 0.5

    def test_short_rank_uses_actual_length(self):
        assert precision_at_k(["a"], {"a"}, 10) == 1.0

    def test_empty_rank(self):
        assert precision_at_k([], {"a"}, 10) == 0.0

    def test_only_top_k_counted(self):
        assert precision_at_k(["x", "y", "a"], {"a"}, 2) == 0.0


class TestRecall:
    def test_full(self):
        assert recall_at_k(["a", "b", "c"], {"a", "b"}, 3) == 1.0

    def test_partial(self):
        assert recall_at_k(["a", "x"], {"a", "b"}, 2) == 0.5

    def test_no_relevant(self):
        assert recall_at_k(["a"], set(), 1) == 0.0


class TestRankRecall:
    def test_best_source_first(self):
        counts = {"A": 8, "B": 2}
        assert rank_recall_at_k(["A", "B"], counts, 1) == 0.8
        assert rank_recall_at_k(["B", "A"], counts, 1) == 0.2
        assert rank_recall_at_k(["A", "B"], counts, 2) == 1.0

    def test_unknown_sources_contribute_nothing(self):
        assert rank_recall_at_k(["Z"], {"A": 5}, 1) == 0.0

    def test_zero_total(self):
        assert rank_recall_at_k(["A"], {"A": 0}, 1) == 0.0


class TestSpearman:
    def test_identical_order(self):
        assert spearman_overlap(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_order(self):
        assert spearman_overlap(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_partial_overlap_only(self):
        # Shared items a, b keep their relative order.
        assert spearman_overlap(["a", "x", "b"], ["a", "y", "b"]) == 1.0

    def test_fewer_than_two_shared(self):
        assert spearman_overlap(["a"], ["a"]) == 0.0
        assert spearman_overlap(["a", "b"], ["c", "d"]) == 0.0

    @given(st.permutations(["a", "b", "c", "d", "e"]))
    def test_bounds(self, candidate):
        rho = spearman_overlap(["a", "b", "c", "d", "e"], list(candidate))
        assert -1.0 <= rho <= 1.0

    @given(st.permutations(["a", "b", "c", "d"]))
    def test_symmetry_of_perfect_agreement(self, order):
        order = list(order)
        assert spearman_overlap(order, order) == 1.0
