"""The experiment runners themselves: determinism and basic shapes.

These run on a deliberately tiny federation so the whole file stays
fast; the full-size shape assertions live in benchmarks/.
"""

import pytest

from repro.experiments import (
    FEATURE_QUERIES,
    FederationSpec,
    build_federation,
    least_common_denominator,
    run_end_to_end_experiment,
    run_merging_experiment,
    run_selection_experiment,
    run_summary_size_experiment,
    run_translation_experiment,
)
from repro.metasearch.selection import VGlossMax


@pytest.fixture(scope="module")
def tiny_federation():
    return build_federation(
        FederationSpec(n_sources=4, docs_per_source=25, n_queries=8, seed=3)
    )


class TestFederationBuilder:
    def test_deterministic(self):
        spec = FederationSpec(n_sources=3, docs_per_source=10, n_queries=3, seed=5)
        a = build_federation(spec)
        b = build_federation(spec)
        assert a.source_ids() == b.source_ids()
        assert [q.terms for q in a.workload.queries] == [
            q.terms for q in b.workload.queries
        ]
        for source_id in a.source_ids():
            assert a.collections[source_id] == b.collections[source_id]

    def test_vendor_cycle_heterogeneous(self, tiny_federation):
        algorithms = {
            source.metadata().ranking_algorithm_id
            for source in tiny_federation.sources.values()
        }
        assert len(algorithms) == 4

    def test_charging_source_recorded(self, tiny_federation):
        assert tiny_federation.costs  # index 3 charges by default

    def test_boolean_only_source_option(self):
        fed = build_federation(
            FederationSpec(
                n_sources=3,
                docs_per_source=10,
                n_queries=2,
                include_boolean_only_source=True,
            )
        )
        parts = {
            source.capabilities.query_parts
            for source in fed.sources.values()
        }
        assert "F" in parts


class TestSelectionRunner:
    def test_rows_per_selector(self, tiny_federation):
        rows = run_selection_experiment(
            tiny_federation, selectors=[VGlossMax()], ks=(1, 2)
        )
        assert len(rows) == 1
        assert set(rows[0].recall_at_k) == {1, 2}

    def test_recall_monotone_in_k(self, tiny_federation):
        rows = run_selection_experiment(tiny_federation, ks=(1, 2, 3, 4))
        for row in rows:
            values = [row.recall_at_k[k] for k in (1, 2, 3, 4)]
            assert values == sorted(values)

    def test_recall_at_all_sources_is_one(self, tiny_federation):
        rows = run_selection_experiment(
            tiny_federation, selectors=[VGlossMax()], ks=(4,)
        )
        assert rows[0].recall_at_k[4] == pytest.approx(1.0)

    def test_row_rendering(self, tiny_federation):
        rows = run_selection_experiment(
            tiny_federation, selectors=[VGlossMax()], ks=(1,)
        )
        assert "vGlOSS-Max" in rows[0].row()


class TestMergingRunner:
    def test_every_default_strategy_measured(self, tiny_federation):
        rows = run_merging_experiment(tiny_federation, n_queries=4)
        assert len(rows) == 7
        for row in rows:
            assert 0.0 <= row.precision_at_10 <= 1.0
            assert -1.0 <= row.spearman_vs_reference <= 1.0

    def test_withholding_stats_changes_nothing_for_raw(self, tiny_federation):
        from repro.metasearch.merging import RawScoreMerge

        with_stats = run_merging_experiment(
            tiny_federation, strategies=[RawScoreMerge()], n_queries=4
        )
        without = run_merging_experiment(
            tiny_federation,
            strategies=[RawScoreMerge()],
            n_queries=4,
            withhold_term_stats=True,
        )
        assert with_stats[0].precision_at_10 == without[0].precision_at_10


class TestTranslationRunner:
    def test_full_matrix(self, tiny_federation):
        cells = run_translation_experiment(tiny_federation)
        assert len(cells) == len(FEATURE_QUERIES) * len(tiny_federation.sources)

    def test_lcd_subset_of_features(self, tiny_federation):
        cells = run_translation_experiment(tiny_federation)
        lcd = least_common_denominator(cells)
        assert set(lcd) <= set(FEATURE_QUERIES)


class TestSummarySizeRunner:
    def test_rows_and_ratios(self):
        rows = run_summary_size_experiment(sizes=(10, 20), truncate_to=10)
        assert [row.n_docs for row in rows] == [10, 20]
        for row in rows:
            assert row.summary_bytes < row.collection_bytes
            assert row.truncated_summary_bytes <= row.summary_bytes


class TestEndToEndRunner:
    def test_two_configurations(self, tiny_federation):
        rows = run_end_to_end_experiment(tiny_federation, n_queries=4, k_sources=2)
        names = {row.name for row in rows}
        assert any(name.startswith("starts") for name in names)
        assert any(name.startswith("baseline") for name in names)
        for row in rows:
            assert row.requests_per_query > 0
