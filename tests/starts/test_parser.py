"""The query-language parser, including a serialize/parse round-trip
property over randomly generated ASTs."""

import pytest
from hypothesis import given, strategies as st

from repro.starts.ast import SAnd, SAndNot, SList, SOr, SProx, STerm
from repro.starts.attributes import FieldRef, ModifierRef
from repro.starts.errors import QuerySyntaxError
from repro.starts.lstring import LString
from repro.starts.parser import parse_expression
from repro.text.langtags import LanguageTag


class TestPaperExpressions:
    """Every expression that appears verbatim in the paper parses."""

    def test_example1_filter(self):
        node = parse_expression('((author "Ullman") and (title "databases"))')
        assert isinstance(node, SAnd)
        assert node.children[0] == STerm(LString("Ullman"), FieldRef("author"))

    def test_example1_ranking(self):
        node = parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        )
        assert isinstance(node, SList)
        assert len(node.children) == 2

    def test_example2_stem(self):
        node = parse_expression('(title stem "databases")')
        assert isinstance(node, STerm)
        assert node.modifier_names() == ("stem",)

    def test_example3_prox(self):
        node = parse_expression('((title "t1") prox[3,T] (title "t2"))')
        assert isinstance(node, SProx)
        assert node.distance == 3
        assert node.ordered

    def test_example4_boolean_ranking(self):
        node = parse_expression('("distributed" and "databases")')
        assert isinstance(node, SAnd)

    def test_example4_list_ranking(self):
        node = parse_expression('list("distributed" "databases")')
        assert isinstance(node, SList)
        assert all(isinstance(child, STerm) for child in node.children)

    def test_example5_weights(self):
        node = parse_expression('list(("distributed" 0.7) ("databases" 0.3))')
        assert [t.weight for t in node.terms()] == [0.7, 0.3]

    def test_tex_quotes_accepted(self):
        """The paper's typography: ``databases'' parses as "databases"."""
        node = parse_expression("(title ``databases'')")
        assert node == STerm(LString("databases"), FieldRef("title"))

    def test_date_comparison(self):
        node = parse_expression('(date-last-modified > "1996-08-01")')
        assert node.field_name == "date/time-last-modified"
        assert node.modifier_names() == (">",)

    def test_language_qualified_term(self):
        node = parse_expression('(body-of-text [en-US "behavior"])')
        assert node.lstring.language == LanguageTag("en", ("US",))


class TestGrammarCorners:
    def test_empty_is_none(self):
        assert parse_expression("") is None
        assert parse_expression("   ") is None

    def test_bare_lstring(self):
        assert parse_expression('"databases"') == STerm(LString("databases"))

    def test_modifier_without_field(self):
        node = parse_expression('(stem "databases")')
        assert node.field is None
        assert node.modifier_names() == ("stem",)

    def test_multiple_modifiers(self):
        node = parse_expression('(title stem case-sensitive "Databases")')
        assert node.modifier_names() == ("stem", "case-sensitive")

    def test_set_qualified_field_and_modifier(self):
        node = parse_expression('([basic-1 author] {basic-1 phonetic} "Ullman")')
        assert node.field == FieldRef("author", "basic-1")
        assert node.modifiers == (ModifierRef("phonetic", "basic-1"),)

    def test_left_associative_mixed_operators(self):
        node = parse_expression('((a "x") and (b "y") or (c "z"))')
        assert isinstance(node, SOr)
        assert isinstance(node.children[0], SAnd)

    def test_and_chain_stays_nary(self):
        node = parse_expression('((a "x") and (b "y") and (c "z"))')
        assert isinstance(node, SAnd)
        assert len(node.children) == 3

    def test_nested_groups(self):
        node = parse_expression('(((a "x") or (b "y")) and-not (c "z"))')
        assert isinstance(node, SAndNot)
        assert isinstance(node.positive, SOr)

    def test_prox_case_insensitive_flag(self):
        node = parse_expression('((a "x") prox[2,f] (b "y"))')
        assert not node.ordered

    def test_list_of_mixed_items(self):
        node = parse_expression('list("bare" (title "fielded") ((a "x") and (b "y")))')
        assert len(node.children) == 3
        assert isinstance(node.children[2], SAnd)

    def test_empty_list(self):
        node = parse_expression("list()")
        assert node == SList(())

    def test_escaped_quotes_in_strings(self):
        node = parse_expression('(title "say \\"hi\\"")')
        assert node.lstring.text == 'say "hi"'


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "(title",  # unterminated
            '(title "a" "b")',  # two l-strings
            '((a "x") and)',  # dangling operator
            '((a "x") frob (b "y"))',  # unknown operator
            '(title title2 "x")',  # two fields
            '(stem title "x")',  # field after modifier
            '((a "x") prox[1,T] ((b "y") and (c "z")))',  # non-atomic prox
            '(title "x") trailing',  # trailing tokens
            "()",  # empty group
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_expression(bad)

    def test_error_carries_position(self):
        try:
            parse_expression('(title "x") trailing')
        except QuerySyntaxError as error:
            assert error.position is not None


# -- round-trip property over generated ASTs -------------------------------

_words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)
_fields = st.sampled_from(["title", "author", "body-of-text", "any"])
_modifiers = st.lists(
    st.sampled_from(["stem", "phonetic", "thesaurus", "case-sensitive"]),
    max_size=2,
    unique=True,
)


@st.composite
def terms(draw):
    word = draw(_words)
    use_field = draw(st.booleans())
    field = FieldRef(draw(_fields)) if use_field else None
    modifiers = tuple(ModifierRef(m) for m in draw(_modifiers))
    weight = draw(st.sampled_from([1.0, 0.5, 0.25]))
    language = draw(st.sampled_from([None, LanguageTag("en", ("US",)), LanguageTag("es")]))
    return STerm(LString(word, language), field, modifiers, weight)


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        return draw(terms())
    kind = draw(st.sampled_from(["term", "and", "or", "and-not", "prox", "list"]))
    if kind == "term":
        return draw(terms())
    if kind in ("and", "or"):
        children = tuple(
            draw(st.lists(expressions(depth=depth - 1), min_size=2, max_size=3))
        )
        return SAnd(children) if kind == "and" else SOr(children)
    if kind == "and-not":
        return SAndNot(
            draw(expressions(depth=depth - 1)), draw(expressions(depth=depth - 1))
        )
    if kind == "prox":
        return SProx(
            draw(terms()), draw(terms()), draw(st.integers(0, 5)), draw(st.booleans())
        )
    return SList(tuple(draw(st.lists(expressions(depth=depth - 1), max_size=3))))


@given(expressions())
def test_serialize_parse_round_trip(node):
    """parse(serialize(x)) == x for arbitrary well-formed expressions."""
    text = node.serialize()
    reparsed = parse_expression(text)
    assert reparsed == node
