"""EX1–EX12: the paper's twelve worked examples, end to end.

Each test reproduces one numbered example from the paper using the full
stack — the exact expressions, SOIF layouts and protocol behaviours the
paper prints.  Together with the attribute-table tests these are the
reproduction's golden targets (see DESIGN.md §3).
"""

import pytest

from repro.corpus import source1_documents, source2_documents
from repro.engine import fields as F
from repro.source import SourceCapabilities, StartsSource
from repro.starts import (
    SQuery,
    SQResults,
    SAnd,
    SList,
    SProx,
    STerm,
    parse_expression,
    parse_soif,
)
from repro.starts.metadata import SContentSummary, SMetaAttributes, SResource


class TestExample1:
    """Filter + ranking expression semantics."""

    # Example 1 prints an exact-match title term; the canned Source-1
    # document (titled "... Database Systems", Example 8) only matches
    # the stemmed variant the paper itself uses in Example 6, so the
    # golden test uses that form.  Example 2's tests cover the exact
    # vs. stemmed distinction explicitly.
    FILTER = '((author "Ullman") and (title stem "databases"))'
    RANKING = 'list((body-of-text "distributed") (body-of-text "databases"))'

    def test_query_returns_ullman_databases_documents(self, source1):
        query = SQuery(
            filter_expression=parse_expression(self.FILTER),
            ranking_expression=parse_expression(self.RANKING),
        )
        results = source1.search(query)
        assert len(results.documents) == 1
        doc = results.documents[0]
        assert "Ullman" in source1.engine.store[0].author
        assert doc.linkage == "http://www-db.stanford.edu/~ullman/pub/dood.ps"

    def test_documents_failing_filter_excluded(self, source1):
        """The Gravano/Chang distractors match ranking words but not the
        author filter."""
        query = SQuery(
            filter_expression=parse_expression(self.FILTER),
            ranking_expression=parse_expression(self.RANKING),
        )
        linkages = [d.linkage for d in source1.search(query).documents]
        assert all("ullman" in linkage for linkage in linkages)


class TestExample2:
    """(title stem "databases") matches titles containing "database"."""

    def test_stem_matches_singular_title(self, source1):
        query = SQuery(filter_expression=parse_expression('(title stem "databases")'))
        linkages = {d.linkage for d in source1.search(query).documents}
        # The Ullman title says "Database Systems" (singular) and the
        # GlOSS distractor says "Databases": both match under stem.
        assert "http://www-db.stanford.edu/~ullman/pub/dood.ps" in linkages
        assert "http://www-db.stanford.edu/pub/gravano95.ps" in linkages

    def test_without_stem_singular_title_missed(self, source1):
        query = SQuery(filter_expression=parse_expression('(title "databases")'))
        linkages = {d.linkage for d in source1.search(query).documents}
        assert "http://www-db.stanford.edu/~ullman/pub/dood.ps" not in linkages


class TestExample3:
    """(t1 prox[3,T] t2): t1 before t2, at most 3 words between."""

    def test_prox_parses_and_filters(self, source1):
        node = parse_expression(
            '((body-of-text "deductive") prox[3,T] (body-of-text "object"))'
        )
        assert isinstance(node, SProx)
        query = SQuery(filter_expression=node)
        results = source1.search(query)
        # "deductive databases with object-oriented": 2 words between.
        assert len(results.documents) == 1

    def test_order_enforced(self, source1):
        node = parse_expression(
            '((body-of-text "object") prox[3,T] (body-of-text "deductive"))'
        )
        assert source1.search(SQuery(filter_expression=node)).documents == ()


class TestExample4:
    """Fuzzy-operator vs list semantics for the same terms."""

    def test_and_and_list_rank_differently(self, source1):
        r1 = SQuery(
            ranking_expression=parse_expression('("distributed" and "databases")')
        )
        r2 = SQuery(
            ranking_expression=parse_expression('list("distributed" "databases")')
        )
        score_and = {d.linkage: d.raw_score for d in source1.search(r1).documents}
        score_list = {d.linkage: d.raw_score for d in source1.search(r2).documents}
        ullman = "http://www-db.stanford.edu/~ullman/pub/dood.ps"
        assert score_and[ullman] != score_list[ullman]


class TestExample5:
    """Weighted ranking terms tilt the ordering."""

    def test_weights_change_scores(self, source1):
        heavy = SQuery(
            ranking_expression=parse_expression(
                'list(("distributed" 0.7) ("databases" 0.3))'
            )
        )
        light = SQuery(
            ranking_expression=parse_expression(
                'list(("distributed" 0.3) ("databases" 0.7))'
            )
        )
        ullman = "http://www-db.stanford.edu/~ullman/pub/dood.ps"
        heavy_score = {
            d.linkage: d.raw_score for d in source1.search(heavy).documents
        }[ullman]
        light_score = {
            d.linkage: d.raw_score for d in source1.search(light).documents
        }[ullman]
        assert heavy_score != light_score


class TestExample6:
    """The complete SOIF-encoded query."""

    def test_wire_encoding_round_trips(self, example6_query):
        parsed = SQuery.from_soif(parse_soif(example6_query.to_soif().dump()))
        assert parsed == example6_query

    def test_min_score_and_max_documents_applied(self, source1, example6_query):
        results = source1.search(example6_query)
        assert len(results.documents) <= 10
        for doc in results.documents:
            assert doc.raw_score >= 0.5 or example6_query.ranking_expression is None


class TestExample7:
    """A source without ranking support reports the actual query."""

    def test_actual_query_reporting(self):
        source = StartsSource(
            "Source-F",
            source1_documents(),
            capabilities=SourceCapabilities(query_parts="F"),
        )
        query = SQuery(
            filter_expression=parse_expression(
                '((author "Ullman") and (title stem "databases"))'
            ),
            ranking_expression=parse_expression(
                'list((body-of-text "distributed") (body-of-text "databases"))'
            ),
        )
        results = source.search(query)
        assert results.actual_filter_expression is not None
        assert results.actual_ranking_expression is None
        assert results.actual_filter_expression.serialize() == (
            '((author "Ullman") and (title stem "databases"))'
        )


class TestExample8:
    """The result stream: RawScore, TermStats, DocSize, DocCount."""

    def test_result_stream_shape(self, source1, example6_query):
        from dataclasses import replace

        query = replace(example6_query, min_document_score=0.0)
        stream = source1.search(query).to_soif_stream()
        parsed = SQResults.from_soif_stream(stream)
        assert parsed.sources == ("Source-1",)
        document = parsed.documents[0]
        assert document.linkage == "http://www-db.stanford.edu/~ullman/pub/dood.ps"
        assert document.fields["title"].startswith("A Comparison")
        assert document.doc_count > 0 and document.doc_size >= 1
        stats = {s.term.lstring.text: s for s in document.term_stats}
        assert stats["distributed"].term_frequency > 0
        assert stats["databases"].document_frequency >= 1

    def test_stop_word_elimination_visible_in_actual_query(self):
        """Example 8's twist: Source-1 eliminated "distributed" as a stop
        word, visible in ActualRankingExpression."""
        from repro.text.analysis import Analyzer
        from repro.text.stopwords import StopWordList
        from repro.engine.search import SearchEngine

        stop = StopWordList(["the", "distributed"], name="quirky")
        engine = SearchEngine(analyzer=Analyzer(stop_words={"en": stop}))
        source = StartsSource("Source-1", source1_documents(), engine=engine)
        query = SQuery(
            ranking_expression=parse_expression(
                'list((body-of-text "distributed") (body-of-text "databases"))'
            )
        )
        results = source.search(query)
        actual = results.actual_ranking_expression
        assert actual is not None
        assert [t.lstring.text for t in actual.terms()] == ["databases"]


class TestExample9:
    """Statistics-based re-ranking flips the sources' raw order."""

    def test_source2_document_has_higher_tf_but_lower_raw_score(
        self, source1, source2
    ):
        query = SQuery(
            ranking_expression=parse_expression(
                'list((body-of-text "distributed") (body-of-text "databases"))'
            )
        )
        res1 = source1.search(query)
        res2 = source2.search(query)
        ullman = next(
            d for d in res1.documents if "ullman" in d.linkage
        )
        lagunita = next(d for d in res2.documents if "lagunita" in d.linkage)

        tf = lambda doc: sum(s.term_frequency for s in doc.term_stats)
        # The Lagunita document repeats the query words more often...
        assert tf(lagunita) > tf(ullman)
        # ...so TF-based re-ranking puts it first regardless of raw scores.
        re_ranked = sorted([ullman, lagunita], key=tf, reverse=True)
        assert re_ranked[0].linkage == lagunita.linkage


class TestExample10:
    """Source metadata attributes on the wire."""

    def test_metadata_export_round_trips(self, source1):
        metadata = source1.metadata()
        parsed = SMetaAttributes.from_soif(parse_soif(metadata.to_soif().dump()))
        assert parsed == metadata
        assert parsed.source_id == "Source-1"
        assert parsed.query_parts_supported == "RF"
        assert parsed.score_range == (0.0, 1.0)
        assert parsed.ranking_algorithm_id == "Acme-1"
        assert parsed.linkage.endswith("/query")
        assert parsed.content_summary_linkage.endswith("/cont_sum.txt")


class TestExample11:
    """Bilingual content summary with per-field, per-language sections."""

    def test_bilingual_summary_sections(self):
        from repro.corpus import bilingual_documents
        from repro.vendors import build_vendor_source

        source = build_vendor_source("MundoDocs", "Source-Bi", bilingual_documents())
        summary = source.content_summary()
        parsed = SContentSummary.from_soif(parse_soif(summary.to_soif().dump()))
        assert parsed.num_docs == 4
        languages = {section.language for section in parsed.sections}
        assert {"en", "es"} <= languages
        assert parsed.document_frequency("algoritmo", field=F.TITLE) == 1
        assert parsed.document_frequency("algorithm", field=F.TITLE) >= 1


class TestExample12:
    """The resource's source list with metadata URLs."""

    def test_resource_definition(self, paper_resource):
        described = paper_resource.describe()
        parsed = SResource.from_soif(parse_soif(described.to_soif().dump()))
        assert parsed.source_ids() == ["Source-1", "Source-2"]
        for source_id in parsed.source_ids():
            assert parsed.metadata_url(source_id).startswith("http://")
