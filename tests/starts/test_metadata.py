"""SMetaAttributes, SContentSummary and SResource."""

import math

import pytest

from repro.starts.attributes import FieldRef, ModifierRef
from repro.starts.errors import SoifSyntaxError
from repro.starts.metadata import (
    MBASIC1_ATTRIBUTES,
    SContentSummary,
    SMetaAttributes,
    SResource,
    SummaryEntryLine,
    SummarySection,
)
from repro.starts.soif import parse_soif


def meta(**overrides):
    defaults = dict(
        source_id="Source-1",
        fields_supported=((FieldRef("author", "basic-1"), ("en-US",)),),
        modifiers_supported=((ModifierRef("phonetic", "basic-1"), ()),),
        field_modifier_combinations=(
            (FieldRef("author", "basic-1"), ModifierRef("phonetic", "basic-1")),
        ),
        query_parts_supported="RF",
        score_range=(0.0, 1.0),
        ranking_algorithm_id="Acme-1",
        tokenizer_id_list=(("Acme-1", "en-US"), ("Acme-2", "es")),
        sample_database_results="http://s1/sample",
        stop_word_list=("the", "a"),
        turn_off_stop_words=True,
        source_languages=("en-US", "es"),
        source_name="Stanford DB Group",
        linkage="http://www-db.stanford.edu/cgi-bin/query",
        content_summary_linkage="ftp://www-db.stanford.edu/cont_sum.txt",
        date_changed="1996-03-31",
    )
    defaults.update(overrides)
    return SMetaAttributes(**defaults)


class TestMBasic1Table:
    """T3 of DESIGN.md: the MBasic-1 table row by row."""

    PAPER_ROWS = [
        ("FieldsSupported", True, True),
        ("ModifiersSupported", True, True),
        ("FieldModifierCombinations", True, True),
        ("QueryPartsSupported", False, True),
        ("ScoreRange", True, True),
        ("RankingAlgorithmID", True, True),
        ("TokenizerIDList", False, True),
        ("SampleDatabaseResults", True, True),
        ("StopWordList", True, True),
        ("TurnOffStopWords", True, True),
        ("SourceLanguages", False, False),
        ("SourceName", False, False),
        ("Linkage", True, False),
        ("ContentSummaryLinkage", True, True),
        ("DateChanged", False, False),
        ("DateExpires", False, False),
        ("Abstract", False, False),
        ("AccessConstraints", False, False),
        ("Contact", False, False),
    ]

    def test_exactly_nineteen_attributes(self):
        assert len(MBASIC1_ATTRIBUTES) == 19

    @pytest.mark.parametrize("name,required,new", PAPER_ROWS)
    def test_row(self, name, required, new):
        spec = next(s for s in MBASIC1_ATTRIBUTES if s.name == name)
        assert spec.required is required
        assert spec.new is new


class TestSMetaAttributes:
    def test_round_trip(self):
        m = meta()
        assert SMetaAttributes.from_soif(parse_soif(m.to_soif().dump())) == m

    def test_example10_wire_names(self):
        text = meta().to_soif().dump()
        for fragment in (
            "SourceID{8}: Source-1",
            "QueryPartsSupported{2}: RF",
            "ScoreRange{7}: 0.0 1.0",
            "RankingAlgorithmID{6}: Acme-1",
            "DefaultMetaAttributeSet{8}: mbasic-1",
            "source-name{17}: Stanford DB Group",
            "date-changed{10}: 1996-03-31",
        ):
            assert fragment in text

    def test_infinite_score_range(self):
        m = meta(score_range=(0.0, math.inf))
        parsed = SMetaAttributes.from_soif(parse_soif(m.to_soif().dump()))
        assert parsed.score_range == (0.0, math.inf)

    def test_slash_in_field_names_survives(self):
        m = meta(
            fields_supported=(
                (FieldRef("date/time-last-modified", "basic-1"), ()),
                (FieldRef("author", "basic-1"), ("en-US", "es")),
            )
        )
        parsed = SMetaAttributes.from_soif(parse_soif(m.to_soif().dump()))
        assert parsed.fields_supported == m.fields_supported

    def test_capability_checks(self):
        m = meta()
        assert m.supports_field("author")
        assert not m.supports_field("abstract")
        assert m.supports_modifier("phonetic")
        assert m.combination_is_legal("author", "phonetic")
        assert not m.combination_is_legal("author", "stem")
        assert m.supports_ranking() and m.supports_filter()

    def test_query_parts_checks(self):
        assert not meta(query_parts_supported="F").supports_ranking()
        assert not meta(query_parts_supported="R").supports_filter()

    def test_empty_combinations_fall_back_to_individual_support(self):
        m = meta(field_modifier_combinations=())
        assert m.combination_is_legal("author", "phonetic")


class TestSContentSummary:
    def summary(self):
        return SContentSummary(
            num_docs=892,
            sections=(
                SummarySection(
                    "title",
                    "en-US",
                    (
                        SummaryEntryLine("algorithm", 100, 53),
                        SummaryEntryLine("analysis", 50, 23),
                    ),
                ),
                SummarySection(
                    "title",
                    "es",
                    (
                        SummaryEntryLine("algoritmo", 23, 11),
                        SummaryEntryLine("datos", 59, 12),
                    ),
                ),
            ),
        )

    def test_round_trip(self):
        s = self.summary()
        assert SContentSummary.from_soif(parse_soif(s.to_soif().dump())) == s

    def test_example11_wire_shape(self):
        text = self.summary().to_soif().dump()
        assert "Stemming{1}: F" in text
        assert "NumDocs{3}: 892" in text
        assert '"algorithm" 100 53' in text
        assert "Language{2}: es" in text

    def test_example11_lookups(self):
        """The paper reads its Example 11: "datos" appears in the title
        of 12 documents; "algorithm" has 100 postings."""
        s = self.summary()
        assert s.document_frequency("datos") == 12
        assert s.total_postings("algorithm") == 100

    def test_lookup_respects_field_restriction(self):
        s = self.summary()
        assert s.document_frequency("algorithm", field="title") == 53
        assert s.document_frequency("algorithm", field="body-of-text") == 0

    def test_case_insensitive_lookup_when_declared(self):
        s = self.summary()
        assert s.document_frequency("Algorithm") == 53

    def test_vocabulary_size(self):
        assert self.summary().vocabulary_size() == 4

    def test_missing_word_is_zero(self):
        assert self.summary().document_frequency("nonexistent") == 0

    def test_word_statistics_memoized(self):
        s = self.summary()
        stats = s.word_statistics()
        assert stats["algorithm"] == (100, 53)
        assert s.word_statistics() is stats  # built once, reused
        # The memo backs the field-less fast paths.
        assert s.document_frequency("algorithm") == 53
        assert s.total_postings("algorithm") == 100

    def test_word_statistics_invalidated_when_sections_swap(self):
        s = self.summary()
        assert "datos" in s.word_statistics()
        object.__setattr__(s, "sections", s.sections[:1])
        fresh = s.word_statistics()
        assert "datos" not in fresh
        assert s.total_postings("datos") == 0

    def test_field_restricted_lookups_bypass_memo(self):
        s = self.summary()
        s.word_statistics()
        # A field restriction must still scan the sections, not the
        # whole-summary memo.
        assert s.document_frequency("algorithm", "title") == 53
        assert s.document_frequency("algorithm", "author") == 0
        assert s.total_postings("datos", "title") == 59


class TestSResource:
    def test_round_trip_and_example12(self):
        resource = SResource(
            source_list=(
                ("Source-1", "ftp://www.stanford.edu/source_1"),
                ("Source-2", "ftp://www.stanford.edu/source_2"),
            )
        )
        text = resource.to_soif().dump()
        assert "Source-1 ftp://www.stanford.edu/source_1" in text
        assert SResource.from_soif(parse_soif(text)) == resource

    def test_lookup_helpers(self):
        resource = SResource(source_list=(("S1", "http://u1"),))
        assert resource.source_ids() == ["S1"]
        assert resource.metadata_url("S1") == "http://u1"
        with pytest.raises(KeyError):
            resource.metadata_url("S9")

    def test_malformed_source_list_rejected(self):
        text = "@SResource{\nSourceList{9}: one-field\n}\n"
        with pytest.raises(SoifSyntaxError):
            SResource.from_soif(parse_soif(text))
