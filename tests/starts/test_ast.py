"""The expression AST: construction rules and serialization forms."""

import pytest

from repro.starts.ast import SAnd, SAndNot, SList, SOr, SProx, STerm
from repro.starts.attributes import FieldRef, ModifierRef
from repro.starts.errors import ProtocolError
from repro.starts.lstring import LString


def term(text, field=None, modifiers=(), weight=1.0):
    field_ref = FieldRef(field) if field else None
    mods = tuple(ModifierRef(m) for m in modifiers)
    return STerm(LString(text), field_ref, mods, weight)


class TestTermSerialization:
    def test_fielded(self):
        assert term("Ullman", "author").serialize() == '(author "Ullman")'

    def test_with_modifier(self):
        assert (
            term("databases", "title", ["stem"]).serialize()
            == '(title stem "databases")'
        )

    def test_comparison(self):
        assert (
            term("1996-08-01", "date/time-last-modified", [">"]).serialize()
            == '(date/time-last-modified > "1996-08-01")'
        )

    def test_bare_lstring_unparenthesized(self):
        assert term("distributed").serialize() == '"distributed"'

    def test_weighted_bare_term(self):
        assert term("distributed", weight=0.7).serialize() == '("distributed" 0.7)'

    def test_field_name_property(self):
        assert term("x").field_name == "any"
        assert term("x", "title").field_name == "title"


class TestWeightValidation:
    def test_zero_weight_rejected(self):
        with pytest.raises(ProtocolError):
            term("x", weight=0.0)

    def test_above_one_rejected(self):
        with pytest.raises(ProtocolError):
            term("x", weight=1.5)

    def test_boundary_one_allowed(self):
        assert term("x", weight=1.0).weight == 1.0


class TestOperators:
    def test_and_serialization(self):
        node = SAnd((term("Ullman", "author"), term("databases", "title")))
        assert node.serialize() == '((author "Ullman") and (title "databases"))'

    def test_nary_and(self):
        node = SAnd((term("a", "title"), term("b", "title"), term("c", "title")))
        assert node.serialize().count(" and ") == 2

    def test_or_and_not(self):
        node = SAndNot(term("a", "title"), term("b", "title"))
        assert "and-not" in node.serialize()

    def test_minimum_arity_enforced(self):
        with pytest.raises(ProtocolError):
            SAnd((term("a"),))
        with pytest.raises(ProtocolError):
            SOr((term("a"),))

    def test_bare_operands_get_wrapped(self):
        node = SAnd((term("distributed"), term("databases")))
        assert node.serialize() == '(("distributed") and ("databases"))'


class TestProx:
    def test_serialization_matches_example3(self):
        node = SProx(term("t1", "title"), term("t2", "title"), 3, True)
        assert node.serialize() == '((title "t1") prox[3,T] (title "t2"))'

    def test_unordered_flag(self):
        node = SProx(term("a"), term("b"), 0, False)
        assert "prox[0,F]" in node.serialize()

    def test_negative_distance_rejected(self):
        with pytest.raises(ProtocolError):
            SProx(term("a"), term("b"), -1)


class TestList:
    def test_example1_ranking_expression(self):
        node = SList(
            (term("distributed", "body-of-text"), term("databases", "body-of-text"))
        )
        assert (
            node.serialize()
            == 'list((body-of-text "distributed") (body-of-text "databases"))'
        )

    def test_example5_weighted_list(self):
        node = SList((term("distributed", weight=0.7), term("databases", weight=0.3)))
        assert node.serialize() == 'list(("distributed" 0.7) ("databases" 0.3))'

    def test_example4_bare_list(self):
        node = SList((term("distributed"), term("databases")))
        assert node.serialize() == 'list("distributed" "databases")'


class TestTraversal:
    def test_terms_in_order(self):
        node = SAnd(
            (
                term("a", "title"),
                SOr((term("b"), SAndNot(term("c"), term("d")))),
            )
        )
        assert [t.lstring.text for t in node.terms()] == ["a", "b", "c", "d"]

    def test_comparison_detection(self):
        assert term("d", "date/time-last-modified", [">"]).comparison_modifier_present()
        assert not term("x", "title", ["stem"]).comparison_modifier_present()
