"""SQResults / SQRDocument / TermStats wire behaviour."""

import pytest

from repro.starts.ast import STerm
from repro.starts.attributes import FieldRef
from repro.starts.errors import SoifSyntaxError
from repro.starts.lstring import LString
from repro.starts.parser import parse_expression
from repro.starts.results import SQRDocument, SQResults, TermStats


def stats(text="distributed", tf=10, weight=0.31, df=190):
    return TermStats(STerm(LString(text), FieldRef("body-of-text")), tf, weight, df)


def document():
    return SQRDocument(
        linkage="http://www-db.stanford.edu/~ullman/pub/dood.ps",
        raw_score=0.82,
        sources=("Source-1",),
        fields={"title": "A Comparison", "author": "Jeffrey D. Ullman"},
        term_stats=(stats(), stats("databases", 15, 0.51, 232)),
        doc_size=248,
        doc_count=10213,
    )


class TestTermStats:
    def test_serialize_matches_example8_shape(self):
        line = stats().serialize()
        assert line == '(body-of-text "distributed") 10 0.31 190'

    def test_parse_round_trip(self):
        line = stats().serialize()
        assert TermStats.parse(line) == stats()

    def test_parse_rejects_short_lines(self):
        with pytest.raises(SoifSyntaxError):
            TermStats.parse('(body-of-text "x") 10 0.31')

    def test_parse_rejects_non_terms(self):
        with pytest.raises(SoifSyntaxError):
            TermStats.parse('((a "x") and (b "y")) 1 0.5 2')


class TestSQRDocument:
    def test_round_trip(self):
        doc = document()
        from repro.starts.soif import parse_soif

        assert SQRDocument.from_soif(parse_soif(doc.to_soif().dump())) == doc

    def test_linkage_always_present(self):
        from repro.starts.soif import parse_soif

        with pytest.raises(SoifSyntaxError):
            SQRDocument.from_soif(parse_soif("@SQRDocument{\n}\n"))

    def test_get_returns_linkage_and_fields(self):
        doc = document()
        assert doc.get("linkage") == doc.linkage
        assert doc.get("author") == "Jeffrey D. Ullman"
        assert doc.get("missing", "") == ""


class TestSQResults:
    def test_stream_round_trip(self):
        results = SQResults(
            sources=("Source-1",),
            actual_filter_expression=parse_expression('(author "Ullman")'),
            actual_ranking_expression=parse_expression('(body-of-text "databases")'),
            documents=(document(),),
        )
        parsed = SQResults.from_soif_stream(results.to_soif_stream())
        assert parsed == results

    def test_example7_actual_query_reporting(self):
        """A source that ignored the ranking expression reports only the
        filter it processed (Example 7)."""
        results = SQResults(
            sources=("Source-1",),
            actual_filter_expression=parse_expression(
                '((author "Ullman") and (title stem "databases"))'
            ),
            actual_ranking_expression=None,
        )
        stream = results.to_soif_stream()
        assert "ActualFilterExpression" in stream
        assert "ActualRankingExpression" not in stream
        parsed = SQResults.from_soif_stream(stream)
        assert parsed.actual_ranking_expression is None

    def test_num_doc_soifs_consistency_checked(self):
        stream = (
            "@SQResults{\nVersion{10}: STARTS 1.0\nSources{1}: S\n"
            "NumDocSOIFs{1}: 2\n}\n"
        )
        with pytest.raises(SoifSyntaxError):
            SQResults.from_soif_stream(stream)

    def test_stream_must_start_with_header(self):
        doc_stream = document().to_soif().dump()
        with pytest.raises(SoifSyntaxError):
            SQResults.from_soif_stream(doc_stream)

    def test_empty_results_valid(self):
        results = SQResults(sources=("S",))
        parsed = SQResults.from_soif_stream(results.to_soif_stream())
        assert parsed.documents == ()
        assert parsed.num_doc_soifs == 0

    def test_validate_requires_sources(self):
        from repro.starts.errors import ProtocolError

        with pytest.raises(ProtocolError):
            SQResults(sources=()).validate()
