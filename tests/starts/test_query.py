"""SQuery: defaults, validation, SOIF round trips."""

import pytest

from repro.starts.ast import SList, STerm
from repro.starts.errors import ProtocolError, SoifSyntaxError
from repro.starts.lstring import LString
from repro.starts.parser import parse_expression
from repro.starts.query import SCORE_SORT_FIELD, SortKey, SQuery
from repro.starts.soif import parse_soif


def ranking():
    return SList((STerm(LString("databases")),))


class TestDefaults:
    def test_section_412_defaults(self):
        """§4.1.2: answer fields default to Title (plus Linkage, always
        returned); sort defaults to score descending."""
        query = SQuery(ranking_expression=ranking())
        assert query.answer_fields == ("title",)
        assert query.sort_keys == (SortKey(SCORE_SORT_FIELD, descending=True),)
        assert query.drop_stop_words is True
        assert query.default_attribute_set == "basic-1"
        assert query.default_language == "en-US"


class TestValidation:
    def test_needs_some_expression(self):
        with pytest.raises(ProtocolError):
            SQuery().validate()

    def test_filter_only_valid(self):
        SQuery(filter_expression=parse_expression('(title "x")')).validate()

    def test_ranking_only_valid(self):
        SQuery(ranking_expression=ranking()).validate()

    def test_negative_max_docs_rejected(self):
        with pytest.raises(ProtocolError):
            SQuery(ranking_expression=ranking(), max_number_documents=-1).validate()


class TestSortKey:
    def test_serialize(self):
        assert SortKey("score", True).serialize() == "score d"
        assert SortKey("title", False).serialize() == "title a"

    def test_parse(self):
        assert SortKey.parse("title a") == SortKey("title", False)
        assert SortKey.parse("score") == SortKey("score", True)

    def test_parse_rejects_bad_direction(self):
        with pytest.raises(SoifSyntaxError):
            SortKey.parse("title x")


class TestSoifRoundTrip:
    def test_full_round_trip(self, example6_query):
        text = example6_query.to_soif().dump()
        assert SQuery.from_soif(parse_soif(text)) == example6_query

    def test_example6_attribute_names_on_wire(self, example6_query):
        """The SOIF attribute names match the paper's Example 6."""
        text = example6_query.to_soif().dump()
        for name in (
            "Version{10}: STARTS 1.0",
            "FilterExpression{",
            "RankingExpression{",
            "DropStopWords{1}: T",
            "DefaultAttributeSet{7}: basic-1",
            "DefaultLanguage{5}: en-US",
            "AnswerFields{12}: title author",
            "MinDocumentScore{3}: 0.5",
            "MaxNumberDocuments{2}: 10",
        ):
            assert name in text

    def test_example6_byte_counts_match_paper(self, example6_query):
        """The paper shows FilterExpression{48}: our canonical
        serialization of the same expression has the same 48 bytes."""
        text = example6_query.to_soif().dump()
        assert "FilterExpression{48}:" in text
        assert "RankingExpression{61}:" in text

    def test_sources_round_trip(self):
        query = SQuery(ranking_expression=ranking()).with_sources("Source-2", "Source-3")
        parsed = SQuery.from_soif(parse_soif(query.to_soif().dump()))
        assert parsed.sources == ("Source-2", "Source-3")

    def test_missing_optional_attributes_take_defaults(self):
        text = '@SQuery{\nRankingExpression{17}: list("databases")\n}\n'
        query = SQuery.from_soif(parse_soif(text))
        assert query.drop_stop_words is True
        assert query.max_number_documents == 20
        assert query.answer_fields == ("title",)

    def test_wrong_template_rejected(self):
        with pytest.raises(SoifSyntaxError):
            SQuery.from_soif(parse_soif("@Wrong{\n}\n"))

    def test_bad_flag_rejected(self):
        text = "@SQuery{\nDropStopWords{1}: X\n}\n"
        with pytest.raises(SoifSyntaxError):
            SQuery.from_soif(parse_soif(text))


class TestHelpers:
    def test_expression_terms_spans_both_expressions(self, example6_query):
        texts = [t.lstring.text for t in example6_query.expression_terms()]
        assert texts == ["Ullman", "databases", "distributed", "databases"]
