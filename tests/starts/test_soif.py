"""The SOIF wire encoding: byte counts, multiline values, streams."""

import pytest
from hypothesis import given, strategies as st

from repro.starts.errors import SoifSyntaxError
from repro.starts.soif import SoifObject, dump_soif, parse_soif, parse_soif_stream


class TestDump:
    def test_simple_object(self):
        obj = SoifObject("SQuery").add("Version", "STARTS 1.0")
        assert obj.dump() == "@SQuery{\nVersion{10}: STARTS 1.0\n}\n"

    def test_byte_count_is_utf8_bytes(self):
        obj = SoifObject("T").add("word", "análisis")
        # "análisis" is 8 characters but 9 UTF-8 bytes.
        assert "word{9}: análisis" in obj.dump()

    def test_multiline_value(self):
        obj = SoifObject("T").add("lines", "a\nb")
        assert "lines{3}: a\nb" in obj.dump()


class TestParse:
    def test_round_trip(self):
        obj = SoifObject("SQuery")
        obj.add("Version", "STARTS 1.0")
        obj.add("FilterExpression", '((author "Ullman") and\n(title "databases"))')
        obj.add("Unicode", "algoritmo análisis ñ")
        assert parse_soif(obj.dump()) == obj

    def test_paper_example6_layout(self):
        """A query hand-encoded like the paper's Example 6 parses."""
        text = (
            "@SQuery{\n"
            "Version{10}: STARTS 1.0\n"
            "DropStopWords{1}: T\n"
            "MaxNumberDocuments{2}: 10\n"
            "}\n"
        )
        obj = parse_soif(text)
        assert obj.template == "SQuery"
        assert obj["DropStopWords"] == "T"
        assert obj["MaxNumberDocuments"] == "10"

    def test_value_with_exact_byte_count_spanning_lines(self):
        text = "@T{\nv{3}: a\nb\n}\n"
        assert parse_soif(text)["v"] == "a\nb"

    def test_lookup_case_insensitive(self):
        obj = parse_soif("@T{\nName{1}: x\n}\n")
        assert obj.get("name") == "x"
        assert "NAME" in obj

    def test_missing_attribute(self):
        obj = parse_soif("@T{\n}\n")
        assert obj.get("nope") is None
        with pytest.raises(KeyError):
            obj["nope"]

    def test_repeated_attributes_preserved_in_order(self):
        obj = SoifObject("S")
        obj.add("Field", "title").add("Field", "author")
        parsed = parse_soif(obj.dump())
        assert parsed.get_all("Field") == ["title", "author"]
        assert parsed.get("Field") == "title"

    def test_empty_value(self):
        obj = SoifObject("T").add("empty", "")
        assert parse_soif(obj.dump())["empty"] == ""


class TestStream:
    def test_multiple_objects(self):
        stream = dump_soif(
            [SoifObject("A").add("x", "1"), SoifObject("B").add("y", "2")]
        )
        objects = parse_soif_stream(stream)
        assert [obj.template for obj in objects] == ["A", "B"]

    def test_empty_stream(self):
        assert parse_soif_stream("") == []
        assert parse_soif_stream("  \n ") == []


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SQuery{\n}",            # missing @
            "@{\n}",                  # empty template
            "@T{\nv{abc}: x\n}",     # non-numeric count
            "@T{\nv{100}: short\n}", # count exceeds data
            "@T{\nv{1} x\n}",        # missing colon
            "@T{\nv{1}: x\n",        # unterminated object
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(SoifSyntaxError):
            parse_soif(bad)

    def test_trailing_garbage_rejected_for_single_parse(self):
        with pytest.raises(SoifSyntaxError):
            parse_soif("@T{\n}\ngarbage")


@given(
    st.lists(
        st.tuples(
            st.text(alphabet="ABCdef", min_size=1, max_size=10),
            st.text(max_size=50).filter(lambda s: "\r" not in s),
        ),
        max_size=8,
    )
)
def test_round_trip_property(pairs):
    obj = SoifObject("Prop", pairs)
    assert parse_soif(obj.dump()) == obj
