"""The Basic-1 attribute tables, transcribed exactly from the paper."""

import pytest

from repro.starts.attributes import (
    ATTRIBUTE_SETS,
    BASIC1,
    COMPARISON_MODIFIERS,
    AttributeSet,
    FieldRef,
    FieldSpec,
    ModifierRef,
    ModifierSpec,
    canonical_field_name,
    register_attribute_set,
)
from repro.starts.errors import QuerySyntaxError


class TestFieldTable:
    """T1 of DESIGN.md: the field table, row by row."""

    # (name, required, new) rows exactly as printed in §4.1.1.
    PAPER_ROWS = [
        ("title", True, False),
        ("author", False, False),
        ("body-of-text", False, False),
        ("document-text", False, True),
        ("date/time-last-modified", True, False),
        ("any", True, False),
        ("linkage", True, False),
        ("linkage-type", False, False),
        ("cross-reference-linkage", False, False),
        ("languages", False, False),
        ("free-form-text", False, True),
    ]

    def test_exactly_eleven_fields(self):
        assert len(BASIC1.fields) == 11

    @pytest.mark.parametrize("name,required,new", PAPER_ROWS)
    def test_row(self, name, required, new):
        spec = BASIC1.field(name)
        assert spec is not None
        assert spec.required is required
        assert spec.new is new

    def test_required_field_list(self):
        assert set(BASIC1.required_fields()) == {
            "title",
            "date/time-last-modified",
            "any",
            "linkage",
        }

    def test_unknown_field_is_none(self):
        assert BASIC1.field("nonexistent") is None


class TestModifierTable:
    """T2 of DESIGN.md: the modifier table, row by row."""

    PAPER_ROWS = [
        ("<", False),
        ("<=", False),
        ("=", False),
        (">=", False),
        (">", False),
        ("!=", False),
        ("phonetic", False),
        ("stem", False),
        ("thesaurus", True),
        ("right-truncation", False),
        ("left-truncation", False),
        ("case-sensitive", True),
    ]

    def test_count(self):
        assert len(BASIC1.modifiers) == 12

    @pytest.mark.parametrize("name,new", PAPER_ROWS)
    def test_row(self, name, new):
        spec = BASIC1.modifier(name)
        assert spec is not None
        assert spec.new is new

    def test_comparison_modifiers_constant(self):
        assert set(COMPARISON_MODIFIERS) == {"<", "<=", "=", ">=", ">", "!="}

    def test_defaults_documented(self):
        assert BASIC1.modifier("stem").default == "no stemming"
        assert BASIC1.modifier("case-sensitive").default == "case insensitive"


class TestCanonicalNames:
    def test_paper_alias(self):
        """The paper's prose writes date-last-modified for the tabled
        Date/time-last-modified field."""
        assert canonical_field_name("date-last-modified") == "date/time-last-modified"

    def test_case_folding(self):
        assert canonical_field_name("Title") == "title"


class TestRefs:
    def test_field_ref_qualified(self):
        ref = FieldRef.parse("[basic-1 author]")
        assert ref == FieldRef("author", "basic-1")
        assert ref.serialize() == "[basic-1 author]"

    def test_field_ref_bare(self):
        assert FieldRef.parse("title") == FieldRef("title")

    def test_modifier_ref_qualified(self):
        ref = ModifierRef.parse("{basic-1 phonetics}")
        assert ref == ModifierRef("phonetics", "basic-1")
        assert ref.serialize() == "{basic-1 phonetics}"

    @pytest.mark.parametrize("bad", ["[basic-1", "[a b c]", "{x", "{a b c}"])
    def test_malformed_refs(self, bad):
        parser = FieldRef.parse if bad.startswith("[") else ModifierRef.parse
        with pytest.raises(QuerySyntaxError):
            parser(bad)


class TestRegistry:
    def test_basic1_registered(self):
        assert ATTRIBUTE_SETS["basic-1"] is BASIC1

    def test_domain_set_registration(self):
        """[1] allows other attribute sets for other domains."""
        geo = AttributeSet(
            "geo-1",
            [FieldSpec("place-name", required=True, new=True)],
            [ModifierSpec("near", default="exact", new=True)],
        )
        register_attribute_set(geo)
        try:
            assert ATTRIBUTE_SETS["geo-1"].field("place-name").required
        finally:
            del ATTRIBUTE_SETS["geo-1"]
