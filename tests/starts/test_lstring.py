"""l-strings: defaults, qualification, serialization."""

import pytest

from repro.starts.errors import QuerySyntaxError
from repro.starts.lstring import LString, parse_lstring
from repro.text.langtags import LanguageTag


class TestDefaults:
    def test_unqualified_defaults_to_english(self):
        """The paper: English/ASCII are invisible defaults."""
        ls = LString("databases")
        assert ls.language is None
        assert ls.effective_language == LanguageTag("en")
        assert not ls.is_qualified()

    def test_qualified_keeps_language(self):
        ls = LString("behavior", LanguageTag("en", ("US",)))
        assert ls.is_qualified()
        assert str(ls.effective_language) == "en-US"


class TestSerialization:
    def test_plain(self):
        assert LString("Ullman").serialize() == '"Ullman"'

    def test_qualified(self):
        """The paper's example: [en-US "behavior"]."""
        ls = LString("behavior", LanguageTag("en", ("US",)))
        assert ls.serialize() == '[en-US "behavior"]'

    def test_embedded_quotes_escaped(self):
        ls = LString('say "hi"')
        assert ls.serialize() == '"say \\"hi\\""'
        assert parse_lstring(ls.serialize()) == ls

    def test_utf8_ascii_identity(self):
        """The paper's "nice property": plain English encodes to itself."""
        assert LString("databases").encode_utf8() == b"databases"

    def test_utf8_non_ascii(self):
        assert LString("análisis").encode_utf8().decode("utf-8") == "análisis"


class TestParsing:
    def test_quoted(self):
        assert parse_lstring('"Ullman"') == LString("Ullman")

    def test_bare(self):
        assert parse_lstring("Ullman") == LString("Ullman")

    def test_qualified(self):
        ls = parse_lstring('[en-US "behavior"]')
        assert ls.text == "behavior"
        assert str(ls.language) == "en-US"

    def test_round_trip(self):
        for ls in (LString("x"), LString("ñ", LanguageTag("es"))):
            assert parse_lstring(ls.serialize()) == ls

    @pytest.mark.parametrize(
        "bad", ['[en "x"', "[en]", '"unterminated', 'stray"quote']
    )
    def test_malformed(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_lstring(bad)
