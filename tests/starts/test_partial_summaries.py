"""Summaries exporting only one statistic (§4.3.2: "at least one of")."""

import pytest

from repro.corpus import source1_documents
from repro.metasearch.selection import BGloss, VGlossSum
from repro.source import StartsSource, build_content_summary
from repro.starts import SContentSummary, parse_soif
from repro.starts.errors import SoifSyntaxError


@pytest.fixture
def source():
    return StartsSource("Partial", source1_documents())


class TestPostingsOnly:
    def test_round_trip(self, source):
        summary = build_content_summary(
            source.engine, include_document_frequencies=False
        )
        parsed = SContentSummary.from_soif(parse_soif(summary.to_soif().dump()))
        assert parsed == summary
        assert parsed.has_postings and not parsed.has_document_frequencies

    def test_wire_declares_statistics(self, source):
        summary = build_content_summary(
            source.engine, include_document_frequencies=False
        )
        assert "StatisticsIncluded{8}: postings" in summary.to_soif().dump()

    def test_df_lookups_zero(self, source):
        summary = build_content_summary(
            source.engine, include_document_frequencies=False
        )
        parsed = SContentSummary.from_soif(parse_soif(summary.to_soif().dump()))
        assert parsed.document_frequency("databases") == 0
        assert parsed.total_postings("databases") > 0

    def test_vgloss_sum_still_works(self, source):
        """Postings-mass selection survives the missing df."""
        summary = build_content_summary(
            source.engine, include_document_frequencies=False
        )
        parsed = SContentSummary.from_soif(parse_soif(summary.to_soif().dump()))
        assert VGlossSum().score(["databases"], parsed) > 0.0


class TestDfOnly:
    def test_round_trip(self, source):
        summary = build_content_summary(source.engine, include_postings=False)
        parsed = SContentSummary.from_soif(parse_soif(summary.to_soif().dump()))
        assert parsed == summary
        assert parsed.has_document_frequencies and not parsed.has_postings

    def test_bgloss_still_works(self, source):
        """df-based selection survives the missing postings counts."""
        summary = build_content_summary(source.engine, include_postings=False)
        parsed = SContentSummary.from_soif(parse_soif(summary.to_soif().dump()))
        assert BGloss().score(["databases"], parsed) > 0.0


class TestInvalid:
    def test_neither_statistic_rejected_at_build(self, source):
        with pytest.raises(ValueError):
            build_content_summary(
                source.engine,
                include_postings=False,
                include_document_frequencies=False,
            )

    def test_neither_statistic_rejected_on_wire(self):
        text = (
            "@SContentSummary{\nStatisticsIncluded{0}: \nNumDocs{1}: 0\n}\n"
        )
        with pytest.raises(SoifSyntaxError):
            SContentSummary.from_soif(parse_soif(text))

    def test_absent_attribute_defaults_to_both(self):
        text = "@SContentSummary{\nNumDocs{1}: 5\n}\n"
        parsed = SContentSummary.from_soif(parse_soif(text))
        assert parsed.has_postings and parsed.has_document_frequencies
