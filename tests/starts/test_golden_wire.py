"""Golden wire fixtures: serialization stability across releases.

The checked-in ``tests/data/*.soif`` files are the canonical wire bytes
for the paper's running scenario.  If an innocuous-looking refactor
changes them, these tests fail — which is the point: STARTS blobs are a
published interface, and byte-level drift silently breaks every cached
summary and every interoperating client.

To intentionally evolve the format, regenerate the fixtures (see each
test's ``_generate`` twin) and note the change in docs/protocol.md.
"""

import pathlib

import pytest

from repro.corpus import source1_documents
from repro.source import StartsSource
from repro.starts import (
    SContentSummary,
    SMetaAttributes,
    SQResults,
    SQuery,
    parse_expression,
    parse_soif,
)

DATA = pathlib.Path(__file__).parent.parent / "data"


@pytest.fixture(scope="module")
def source():
    return StartsSource("Source-1", source1_documents())


@pytest.fixture(scope="module")
def query():
    return SQuery(
        filter_expression=parse_expression(
            '((author "Ullman") and (title stem "databases"))'
        ),
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
        min_document_score=0.0,
        max_number_documents=10,
        answer_fields=("title", "author"),
    )


class TestGoldenBytes:
    def test_query_bytes_stable(self, query):
        assert query.to_soif().dump() == (DATA / "golden_query.soif").read_text()

    def test_results_bytes_stable(self, source, query):
        assert source.search(query).to_soif_stream() == (
            DATA / "golden_results.soif"
        ).read_text()

    def test_metadata_bytes_stable(self, source):
        assert source.metadata().to_soif().dump() == (
            DATA / "golden_metadata.soif"
        ).read_text()

    def test_summary_bytes_stable(self, source):
        assert source.content_summary(max_words_per_section=10).to_soif().dump() == (
            DATA / "golden_summary.soif"
        ).read_text()


class TestGoldenParses:
    """The fixtures also serve as decoder conformance inputs."""

    def test_query_decodes(self, query):
        decoded = SQuery.from_soif(parse_soif((DATA / "golden_query.soif").read_text()))
        assert decoded == query

    def test_results_decode(self):
        results = SQResults.from_soif_stream(
            (DATA / "golden_results.soif").read_text()
        )
        assert results.sources == ("Source-1",)
        assert results.documents[0].linkage.endswith("dood.ps")

    def test_metadata_decodes(self, source):
        decoded = SMetaAttributes.from_soif(
            parse_soif((DATA / "golden_metadata.soif").read_text())
        )
        assert decoded == source.metadata()

    def test_summary_decodes(self):
        summary = SContentSummary.from_soif(
            parse_soif((DATA / "golden_summary.soif").read_text())
        )
        assert summary.num_docs == 3
        assert summary.document_frequency("databases") > 0
