"""SOIF reader robustness: line endings, unicode counts, odd spacing."""

import pytest

from repro.starts.errors import SoifSyntaxError
from repro.starts.soif import SoifObject, parse_soif


class TestLineEndings:
    def test_crlf_between_attributes(self):
        text = "@T{\r\nName{1}: x\r\nOther{1}: y\r\n}\r\n"
        obj = parse_soif(text)
        assert obj["Name"] == "x"
        assert obj["Other"] == "y"

    def test_crlf_inside_value_counted_as_bytes(self):
        value = "line1\r\nline2"
        obj = SoifObject("T").add("v", value)
        assert parse_soif(obj.dump())["v"] == value

    def test_no_trailing_newline(self):
        assert parse_soif("@T{\nv{1}: x\n}")["v"] == "x"


class TestByteCounts:
    def test_multibyte_value_boundaries(self):
        # é is 2 bytes; the count must be bytes, not characters.
        text = "@T{\nv{4}: éé\nw{1}: x\n}\n"
        obj = parse_soif(text)
        assert obj["v"] == "éé"
        assert obj["w"] == "x"

    def test_emoji_value(self):
        obj = SoifObject("T").add("v", "🔍 search")
        assert parse_soif(obj.dump())["v"] == "🔍 search"

    def test_count_zero(self):
        assert parse_soif("@T{\nv{0}: \n}\n")["v"] == ""

    def test_value_consuming_closing_brace_lookalike(self):
        # A value that itself contains "}" and "@" must not confuse
        # the reader: byte counts rule.
        value = "}@Fake{\nname{1}: z\n}"
        obj = SoifObject("T").add("v", value)
        assert parse_soif(obj.dump())["v"] == value


class TestSpacing:
    def test_missing_space_after_colon(self):
        assert parse_soif("@T{\nv{1}:x\n}\n")["v"] == "x"

    def test_whitespace_around_template(self):
        obj = parse_soif("  \n@T{\nv{1}: x\n}\n  \n")
        assert obj.template == "T"

    def test_attribute_name_with_spaces_stripped(self):
        obj = parse_soif("@T{\n  v {1}: x\n}\n")
        assert obj.get("v") == "x"


class TestHostileInputs:
    @pytest.mark.parametrize(
        "bad",
        [
            "@T{\nv{-1}: x\n}\n",      # negative count
            "@T{\nv{1e3}: x\n}\n",     # non-integer count
            "@T{\nv{999999}: x\n}\n",  # count beyond data
        ],
    )
    def test_bad_counts(self, bad):
        with pytest.raises(SoifSyntaxError):
            parse_soif(bad)

    def test_binary_garbage(self):
        with pytest.raises(SoifSyntaxError):
            parse_soif(b"\x00\x01\x02")
