"""Parser robustness: arbitrary input never crashes unexpectedly.

The parser's contract: any string either parses to an expression,
yields None (blank input), or raises :class:`QuerySyntaxError` /
:class:`ProtocolError` (weight bounds) — never an unrelated exception.
"""

from hypothesis import given, settings, strategies as st

from repro.starts.errors import ProtocolError, QuerySyntaxError
from repro.starts.parser import parse_expression
from repro.text.langtags import InvalidLanguageTag


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=120))
def test_arbitrary_text_never_crashes(text):
    try:
        parse_expression(text)
    except (QuerySyntaxError, ProtocolError, InvalidLanguageTag):
        pass


@settings(max_examples=300, deadline=None)
@given(
    st.text(
        alphabet='()[]{}"abc stemandornotproxlist0123456789.,<>=!',
        max_size=80,
    )
)
def test_grammar_shaped_text_never_crashes(text):
    """Denser in grammar tokens, so deeper parser paths get fuzzed."""
    try:
        parse_expression(text)
    except (QuerySyntaxError, ProtocolError, InvalidLanguageTag):
        pass


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=80))
def test_parse_of_parse_is_stable(text):
    """Whatever parses once reparses to the same expression."""
    try:
        node = parse_expression(text)
    except (QuerySyntaxError, ProtocolError, InvalidLanguageTag):
        return
    if node is None:
        return
    assert parse_expression(node.serialize()) == node
