"""Segment writer/reader round trips and the store's commit protocol."""

import pytest

from repro.engine.documents import Document
from repro.engine.index import Posting, SummaryEntry
from repro.storage.format import StorageError
from repro.storage.merge import TieredMergePolicy
from repro.storage.segment import SegmentReader, SegmentWriter
from repro.storage.store import SegmentStore


def doc(i, body="hello world"):
    return Document(f"http://d/{i}", {"title": f"doc {i}", "body-of-text": body})


def simple_batch(ids):
    documents = [(i, doc(i), 2) for i in ids]
    postings = {
        "title": {"doc": [Posting(i, (0,)) for i in ids]},
        "body-of-text": {
            "hello": [Posting(i, (0,)) for i in ids],
            "world": [Posting(i, (1,)) for i in ids],
        },
    }
    summary = [
        ("body-of-text", "en", {"hello": SummaryEntry(len(ids), len(ids))}),
    ]
    return documents, postings, summary


class TestWriterReader:
    def test_round_trip(self, tmp_path):
        documents, postings, summary = simple_batch([0, 1, 2])
        writer = SegmentWriter(tmp_path / "seg-000000", "seg-000000")
        meta = writer.write(documents, postings, summary)
        assert meta.doc_base == 0
        assert meta.doc_count == 3

        reader = SegmentReader(tmp_path / "seg-000000")
        assert reader.fields() == ["body-of-text", "title"]
        assert reader.vocabulary("body-of-text") == ["hello", "world"]
        assert reader.postings("body-of-text", "hello") == [
            Posting(0, (0,)), Posting(1, (0,)), Posting(2, (0,)),
        ]
        assert reader.postings("body-of-text", "absent") == []
        assert reader.slot_of(1) == 1
        assert reader.slot_of(99) is None
        assert reader.document_at(0) == doc(0)
        assert reader.token_count_at(2) == 2
        assert reader.linkages() == ["http://d/0", "http://d/1", "http://d/2"]
        assert reader.summary_sections() == summary
        reader.close()

    def test_write_once(self, tmp_path):
        documents, postings, summary = simple_batch([0])
        SegmentWriter(tmp_path / "seg", "seg").write(documents, postings, summary)
        with pytest.raises(StorageError, match="already exists"):
            SegmentWriter(tmp_path / "seg", "seg")

    def test_empty_segment_refused(self, tmp_path):
        with pytest.raises(StorageError, match="empty"):
            SegmentWriter(tmp_path / "seg", "seg").write([], {}, [])

    def test_unsorted_ids_refused(self, tmp_path):
        documents = [(1, doc(1), 2), (0, doc(0), 2)]
        with pytest.raises(StorageError, match="ascend"):
            SegmentWriter(tmp_path / "seg", "seg").write(documents, {}, [])

    def test_missing_file_detected(self, tmp_path):
        documents, postings, summary = simple_batch([0])
        SegmentWriter(tmp_path / "seg", "seg").write(documents, postings, summary)
        (tmp_path / "seg" / "counts.bin").unlink()
        with pytest.raises(StorageError, match="missing"):
            SegmentReader(tmp_path / "seg")

    def test_tombstone_filter(self, tmp_path):
        documents, postings, summary = simple_batch([0, 1, 2])
        SegmentWriter(tmp_path / "seg", "seg").write(documents, postings, summary)
        reader = SegmentReader(tmp_path / "seg")
        live = lambda doc_id: doc_id != 1  # noqa: E731
        assert reader.postings("body-of-text", "hello", live) == [
            Posting(0, (0,)), Posting(2, (0,)),
        ]
        reader.close()


class TestSegmentStore:
    def test_commit_and_reopen(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.commit_segment(*simple_batch([0, 1]))
        store.commit_segment(*simple_batch([2, 3]))
        assert store.segment_count == 2
        assert store.document_ceiling == 4
        assert store.generation == 2
        store.close()

        reopened = SegmentStore(tmp_path)
        assert reopened.segment_count == 2
        assert reopened.generation == 2
        assert [p.doc_id for p in reopened.readers[1].postings("title", "doc")] == [2, 3]
        reopened.close()

    def test_overlapping_segment_refused(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.commit_segment(*simple_batch([0, 1]))
        with pytest.raises(StorageError, match="overlaps"):
            store.commit_segment(*simple_batch([1, 2]))
        store.close()

    def test_analyzer_mismatch_rejected(self, tmp_path):
        store = SegmentStore(tmp_path, analyzer={"stem": False})
        store.close()
        with pytest.raises(StorageError, match="analyzer mismatch"):
            SegmentStore(tmp_path, analyzer={"stem": True})

    def test_ranking_mismatch_rejected(self, tmp_path):
        store = SegmentStore(tmp_path, ranking="Salton-2")
        store.close()
        with pytest.raises(StorageError, match="ranking mismatch"):
            SegmentStore(tmp_path, ranking="Okapi-1")

    def test_tombstones_commit_and_filter(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.commit_segment(*simple_batch([0, 1, 2]))
        assert store.add_tombstones([1, 99]) == 1  # 99 not covered
        assert store.add_tombstones([1]) == 0  # already dead
        assert store.live_doc_count() == 2
        store.close()

        reopened = SegmentStore(tmp_path)  # tombstones survive restart
        assert reopened.tombstones == {1}
        reopened.close()

    def test_merge_folds_and_drops_tombstones(self, tmp_path):
        store = SegmentStore(tmp_path, merge_policy=TieredMergePolicy(merge_factor=2))
        store.commit_segment(*simple_batch([0, 1]))
        store.commit_segment(*simple_batch([2, 3]))
        store.add_tombstones([1])
        assert store.merge_once() is not None
        assert store.segment_count == 1
        assert store.tombstones == set()  # consumed by the merge
        assert [p.doc_id for p in store.readers[0].postings("title", "doc")] == [0, 2, 3]
        # summary statistics were summed across the group
        sections = store.readers[0].summary_sections()
        assert sections[0][2]["hello"].postings == 4
        store.close()

    def test_merge_all_compacts_and_sweeps_directories(self, tmp_path):
        store = SegmentStore(tmp_path, merge_policy=TieredMergePolicy(merge_factor=2))
        for i in range(4):
            store.commit_segment(*simple_batch([i]))
        assert store.merge_all() >= 2
        assert store.segment_count == 1
        live_names = {meta.name for meta in store.manifest.segments}
        on_disk = {p.name for p in tmp_path.iterdir() if p.is_dir()}
        assert on_disk == live_names
        store.close()

    def test_orphan_sweep_on_open(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.commit_segment(*simple_batch([0]))
        store.close()
        orphan = tmp_path / "seg-000999"
        orphan.mkdir()
        (orphan / "junk.bin").write_bytes(b"x")
        reopened = SegmentStore(tmp_path)
        assert not orphan.exists()
        reopened.close()

    def test_all_tombstoned_group_vanishes(self, tmp_path):
        store = SegmentStore(tmp_path, merge_policy=TieredMergePolicy(merge_factor=2))
        store.commit_segment(*simple_batch([0]))
        store.commit_segment(*simple_batch([1]))
        store.add_tombstones([0, 1])
        assert store.merge_once() is None  # group merged away entirely
        assert store.segment_count == 0
        assert store.live_doc_count() == 0
        store.close()
