"""The block-max column: codec, handles, and v1 backward compatibility.

Version 2 adds ``blockmax.bin`` — per term, per 128-document block, the
metadata block-skipping needs — while leaving ``postings.bin`` and every
other file byte-identical.  These tests pin the codec round-trip, the
:class:`TermHandle` access path, and the promise that version-1 segment
directories (no column) still open and answer correctly.
"""

import json
import random

import pytest

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.evaluation import PRUNED, TERM_AT_A_TIME
from repro.engine.index import Posting
from repro.engine.query import ListQuery, TermQuery
from repro.engine.search import SearchEngine
from repro.storage.format import (
    POSTINGS_BLOCK_SIZE,
    StorageError,
    decode_posting_list,
    decode_varint,
    encode_posting_list,
    scan_posting_block,
)
from repro.storage.manifest import MANIFEST_NAME, Manifest, read_manifest
from repro.storage.segment import SegmentReader, SegmentWriter


def make_postings(n_docs: int, seed: int = 0) -> list[Posting]:
    rng = random.Random(seed)
    postings = []
    doc_id = 0
    for _ in range(n_docs):
        doc_id += rng.randint(1, 5)
        positions = tuple(
            sorted(rng.randint(0, 50) for _ in range(rng.randint(1, 4)))
        )
        postings.append(Posting(doc_id, positions))
    return postings


class TestCodec:
    @pytest.mark.parametrize("n_docs", [0, 1, 127, 128, 129, 400])
    def test_blocks_are_a_pure_overlay(self, n_docs):
        postings = make_postings(n_docs)
        plain = bytearray()
        encode_posting_list(plain, postings)
        with_blocks = bytearray()
        blocks: list[tuple[int, int, int]] = []
        encode_posting_list(with_blocks, postings, blocks)
        assert bytes(plain) == bytes(with_blocks)  # v1-compatible bytes
        assert sum(count for _, _, count in blocks) == n_docs
        expected_blocks = (n_docs + POSTINGS_BLOCK_SIZE - 1) // POSTINGS_BLOCK_SIZE
        assert len(blocks) == expected_blocks
        if blocks:
            assert blocks[-1][0] == postings[-1].doc_id

    def test_scan_posting_block_matches_full_decode(self):
        postings = make_postings(400, seed=3)
        blob = bytearray()
        blocks: list[tuple[int, int, int]] = []
        encode_posting_list(blob, postings, blocks)
        decoded = decode_posting_list(blob, 0)
        assert decoded == postings
        _, first_data = decode_varint(blob, 0)
        previous_doc = 0
        seen: list[tuple[int, int]] = []
        for number, (last_doc, start, count) in enumerate(blocks):
            doc_ids, tfs = scan_posting_block(blob, start, count, previous_doc)
            assert doc_ids[-1] == last_doc
            if number == 0:
                assert start == first_data
            seen.extend(zip(doc_ids, tfs))
            previous_doc = last_doc
        assert seen == [
            (posting.doc_id, posting.term_frequency) for posting in postings
        ]


def write_segment(directory, postings_by_term, base_length=10):
    """One single-field segment whose doc lengths are ``base_length + id``."""
    doc_ids = sorted({p.doc_id for plist in postings_by_term.values() for p in plist})
    documents = [
        (doc_id, Document(f"http://seg/{doc_id}", {F.BODY_OF_TEXT: "x"}), base_length + doc_id)
        for doc_id in doc_ids
    ]
    writer = SegmentWriter(directory / "seg-000000", "seg-000000")
    return writer.write(documents, {F.BODY_OF_TEXT: postings_by_term}, [])


class TestTermHandle:
    def test_handle_metadata_and_probes(self, tmp_path):
        postings = make_postings(300, seed=5)
        write_segment(tmp_path, {"alpha": postings})
        reader = SegmentReader(tmp_path / "seg-000000")
        try:
            handle = reader.term_handle(F.BODY_OF_TEXT, "alpha")
            assert handle is not None and handle.blocks is not None
            assert len(handle.blocks) == (300 + POSTINGS_BLOCK_SIZE - 1) // POSTINGS_BLOCK_SIZE
            assert handle.document_count() == 300
            assert handle.max_term_frequency() == max(
                posting.term_frequency for posting in postings
            )
            # Doc lengths are base + id, so the term-wide min length is
            # the first posting's.
            assert handle.min_doc_length() == 10 + postings[0].doc_id
            by_id = {p.doc_id: p.term_frequency for p in postings}
            probe_ids = [p.doc_id for p in postings[::17]]
            probe_ids += [postings[0].doc_id - 1, postings[-1].doc_id + 100]
            for doc_id in probe_ids:
                assert handle.probe(doc_id) == by_id.get(doc_id, 0)
            # Past the last posting no block can match.
            assert handle.block_bound(postings[-1].doc_id + 100) == (0, 0)
            covered = handle.block_bound(postings[0].doc_id)
            assert covered is not None and covered[0] >= postings[0].term_frequency
            assert reader.term_handle(F.BODY_OF_TEXT, "missing") is None
        finally:
            reader.close()

    def test_block_bounds_dominate_their_blocks(self, tmp_path):
        postings = make_postings(300, seed=6)
        write_segment(tmp_path, {"alpha": postings})
        reader = SegmentReader(tmp_path / "seg-000000")
        try:
            handle = reader.term_handle(F.BODY_OF_TEXT, "alpha")
            for posting in postings:
                max_tf, min_len = handle.block_bound(posting.doc_id)
                assert max_tf >= posting.term_frequency
                assert min_len <= 10 + posting.doc_id
        finally:
            reader.close()


def downgrade_to_v1(store_dir):
    """Rewrite a committed store as a version-1 directory (no column)."""
    manifest = read_manifest(store_dir)
    assert manifest is not None and manifest.segments
    for segment in manifest.segments:
        segment_dir = store_dir / segment.name
        (segment_dir / "blockmax.bin").unlink()
        header_path = segment_dir / "segment.json"
        header = json.loads(header_path.read_text(encoding="utf-8"))
        header["format_version"] = 1
        header["files"].pop("blockmax.bin", None)
        header_path.write_text(json.dumps(header, indent=1), encoding="utf-8")
    payload = manifest.to_json()
    payload["format_version"] = 1
    (store_dir / MANIFEST_NAME).write_text(
        json.dumps(payload, indent=1), encoding="utf-8"
    )


class TestBackwardCompatibility:
    def _build(self, store_dir, n_docs=220):
        rng = random.Random(9)
        vocab = ["alpha", "beta", "gamma", "delta"]
        engine = SearchEngine(storage="segments", storage_dir=store_dir)
        for index in range(n_docs):
            body = " ".join(rng.choices(vocab, k=rng.randint(3, 20)))
            engine.add(Document(f"http://x/{index}", {F.BODY_OF_TEXT: body}))
        engine.flush()
        return engine

    def test_v1_directory_still_opens_and_answers(self, tmp_path):
        store_dir = tmp_path / "store"
        engine = self._build(store_dir)
        query = ListQuery(
            (TermQuery(F.BODY_OF_TEXT, "alpha"), TermQuery(F.BODY_OF_TEXT, "gamma"))
        )
        expected = engine.search(ranking_query=query, top_k=5)
        engine.close()

        downgrade_to_v1(store_dir)
        warmed = SearchEngine(
            storage="segments", storage_dir=store_dir, evaluation=PRUNED
        )
        try:
            # The v1 directory opens, the handle degrades gracefully
            # (no block column), and both evaluation modes still give
            # the exact same answer.
            reader = warmed.segment_store.readers[0]
            assert reader.format_version == 1
            handle = reader.term_handle(F.BODY_OF_TEXT, "alpha")
            assert handle is not None and handle.blocks is None
            assert handle.min_doc_length() is None
            assert handle.block_bound(0) is None
            pruned = warmed.search(ranking_query=query, top_k=5)
            warmed.evaluation = TERM_AT_A_TIME
            exhaustive = warmed.search(ranking_query=query, top_k=5)
            assert pruned == exhaustive == expected
        finally:
            warmed.close()

    def test_unknown_versions_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            Manifest.from_json({"format_version": 99})
        store_dir = tmp_path / "store"
        engine = self._build(store_dir, n_docs=40)
        engine.close()
        manifest = read_manifest(store_dir)
        segment_dir = store_dir / manifest.segments[0].name
        header_path = segment_dir / "segment.json"
        header = json.loads(header_path.read_text(encoding="utf-8"))
        header["format_version"] = 99
        header_path.write_text(json.dumps(header, indent=1), encoding="utf-8")
        with pytest.raises(StorageError):
            SegmentReader(segment_dir)
