"""Manifest commits: atomicity, versioning, crash behaviour."""

import json
import os

import pytest

import repro.storage.manifest as manifest_module
from repro.storage.format import StorageError
from repro.storage.manifest import (
    MANIFEST_NAME,
    Manifest,
    SegmentMeta,
    atomic_write_text,
    commit_manifest,
    read_manifest,
)


def meta(name, base, count, size=100):
    return SegmentMeta(name=name, doc_base=base, doc_count=count, size_bytes=size)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "file.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text(encoding="utf-8") == "two"
        assert not path.with_name(path.name + ".tmp").exists()

    def test_crash_during_rename_keeps_old_content(self, tmp_path, monkeypatch):
        path = tmp_path / "file.txt"
        atomic_write_text(path, "committed")

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(manifest_module.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(path, "torn")
        monkeypatch.setattr(manifest_module.os, "replace", os.replace)
        assert path.read_text(encoding="utf-8") == "committed"


class TestManifestRoundTrip:
    def test_empty_round_trip(self, tmp_path):
        commit_manifest(tmp_path, Manifest())
        loaded = read_manifest(tmp_path)
        assert loaded == Manifest()

    def test_full_round_trip(self, tmp_path):
        manifest = Manifest(
            generation=7,
            next_segment_id=3,
            segments=[meta("seg-000000", 0, 10), meta("seg-000002", 10, 5)],
            tombstones=[2, 8],
            analyzer={"tokenizer": "unicode-1", "stem": False},
            ranking="Salton-2",
        )
        commit_manifest(tmp_path, manifest)
        assert read_manifest(tmp_path) == manifest

    def test_missing_manifest_is_none(self, tmp_path):
        assert read_manifest(tmp_path) is None

    def test_version_mismatch_rejected(self, tmp_path):
        commit_manifest(tmp_path, Manifest())
        path = tmp_path / MANIFEST_NAME
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(StorageError, match="version"):
            read_manifest(tmp_path)

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{ not json")
        with pytest.raises(StorageError, match="unreadable"):
            read_manifest(tmp_path)


class TestDocumentCeiling:
    def test_ceiling_tracks_highest_segment(self):
        manifest = Manifest(
            segments=[meta("seg-000000", 0, 10), meta("seg-000001", 10, 7)]
        )
        assert manifest.document_ceiling == 17
        assert Manifest().document_ceiling == 0

    def test_total_bytes(self):
        manifest = Manifest(
            segments=[meta("a", 0, 1, size=40), meta("b", 1, 1, size=2)]
        )
        assert manifest.total_bytes() == 42
