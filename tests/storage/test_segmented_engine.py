"""The heart of the tentpole: segments must be invisible.

A ``storage="segments"`` engine — whatever mix of tail, flushes, and
merges its history took — must answer every query **bit-identically**
to the ``storage="memory"`` oracle over the same documents.  So must
an engine warmed from the same directory in a "new process".
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.corpus import CollectionSpec, generate_collection, source1_documents
from repro.engine import fields as F
from repro.engine.query import BooleanQuery, ListQuery, ProxQuery, TermQuery
from repro.engine.search import SearchEngine
from repro.storage import StorageError, TieredMergePolicy


def t(text, field=F.BODY_OF_TEXT, **kwargs):
    return TermQuery(field, text, **kwargs)


QUERIES = [
    (t("databases"), None),
    (None, ListQuery((t("distributed"), t("databases")))),
    (BooleanQuery("and", (t("distributed"), t("databases"))), None),
    (BooleanQuery("and-not", (t("databases"), t("deductive"))), None),
    (ProxQuery(t("deductive"), t("databases"), 1, True), None),
    (t("data", modifiers=frozenset({"right-truncation"})), None),
    (None, ListQuery((t("databases", weight=2.0), t("systems")))),
    (t("1996-01-01", field=F.DATE_LAST_MODIFIED, modifiers=frozenset({">="})), None),
]


def assert_equivalent(oracle, candidate):
    """Every query answers identically, and so do the statistics."""
    for filter_query, ranking_query in QUERIES:
        assert oracle.search(filter_query, ranking_query) == candidate.search(
            filter_query, ranking_query
        ), (filter_query, ranking_query)
    assert oracle.document_count == candidate.document_count
    assert oracle.store.average_token_count() == candidate.store.average_token_count()
    assert oracle.index.summary_sections() == candidate.index.summary_sections()
    assert (
        oracle.index.summary_vocabulary_size()
        == candidate.index.summary_vocabulary_size()
    )
    for field in oracle.index.fields():
        assert oracle.index.vocabulary(field) == candidate.index.vocabulary(field)


def corpus():
    """The hand-written source-1 docs plus a generated tail: 15 documents."""
    return source1_documents() + generate_collection(
        CollectionSpec(
            name="gen",
            topics={"databases": 1.0, "networking": 0.5},
            size=12,
            body_words=(10, 25),
            seed=5,
        )
    )


def build_pair(tmp_path, documents, flush_every=None, merge_policy=None):
    oracle = SearchEngine()
    oracle.add_all(documents)
    segmented = SearchEngine(
        storage="segments",
        storage_dir=tmp_path / "store",
        merge_policy=merge_policy,
    )
    for i, document in enumerate(documents):
        segmented.add(document)
        if flush_every and (i + 1) % flush_every == 0:
            segmented.flush()
    return oracle, segmented


class TestEquivalence:
    def test_pure_tail(self, tmp_path):
        oracle, segmented = build_pair(tmp_path, source1_documents())
        assert_equivalent(oracle, segmented)
        segmented.close()

    def test_flushed_and_tail_mix(self, tmp_path):
        oracle, segmented = build_pair(tmp_path, corpus(), flush_every=4)
        assert segmented.segment_store.segment_count == 3  # and a 3-doc tail
        assert_equivalent(oracle, segmented)
        segmented.close()

    def test_after_merges(self, tmp_path):
        documents = generate_collection(
            CollectionSpec(
                name="merge",
                topics={"databases": 1.0},
                size=16,
                body_words=(10, 20),
                seed=3,
            )
        )
        oracle, segmented = build_pair(
            tmp_path,
            documents,
            flush_every=2,
            merge_policy=TieredMergePolicy(merge_factor=2),
        )
        before = segmented.segment_store.segment_count
        assert before == 8
        segmented.checkpoint(merge=True)
        assert segmented.segment_store.segment_count < before
        assert_equivalent(oracle, segmented)
        segmented.close()

    def test_warm_reopen(self, tmp_path):
        oracle, segmented = build_pair(tmp_path, corpus(), flush_every=4)
        segmented.checkpoint()
        segmented.close()
        warmed = SearchEngine(storage="segments", storage_dir=tmp_path / "store")
        assert_equivalent(oracle, warmed)
        warmed.close()

    def test_indexing_continues_after_reopen(self, tmp_path):
        documents = corpus()
        oracle, segmented = build_pair(tmp_path, documents[:5])
        segmented.checkpoint()
        segmented.close()
        warmed = SearchEngine(storage="segments", storage_dir=tmp_path / "store")
        warmed.add_all(documents[5:])
        oracle.add_all(documents[5:])
        assert_equivalent(oracle, warmed)
        warmed.close()

    def test_generated_collection(self, tmp_path):
        documents = generate_collection(
            CollectionSpec(
                name="gen",
                topics={"databases": 1.0, "networking": 0.5},
                size=60,
                body_words=(20, 40),
                seed=11,
            )
        )
        oracle, segmented = build_pair(
            tmp_path,
            documents,
            flush_every=7,
            merge_policy=TieredMergePolicy(merge_factor=3),
        )
        segmented.maybe_merge()
        assert_equivalent(oracle, segmented)
        segmented.close()


class TestMutation:
    def test_remove_rebuilds_exactly(self, tmp_path):
        documents = corpus()
        oracle, segmented = build_pair(tmp_path, documents, flush_every=3)
        victim = documents[2].linkage
        assert oracle.remove(victim)
        assert segmented.remove(victim)
        assert_equivalent(oracle, segmented)
        segmented.close()

    def test_replace_after_checkpoint(self, tmp_path):
        documents = corpus()
        oracle, segmented = build_pair(tmp_path, documents, flush_every=3)
        segmented.checkpoint()
        replacement = documents[0]
        oracle.replace(replacement)
        segmented.replace(replacement)
        assert_equivalent(oracle, segmented)
        segmented.close()

    def test_tombstone_hides_document(self, tmp_path):
        documents = corpus()
        _, segmented = build_pair(tmp_path, documents, flush_every=3)
        victim = documents[1]
        assert segmented.tombstone(victim.linkage)
        assert not segmented.tombstone(victim.linkage)  # already gone
        hits = segmented.search(t("databases"))
        assert all(
            segmented.store[hit.doc_id].linkage != victim.linkage for hit in hits
        )
        assert segmented.store.by_linkage(victim.linkage) is None
        assert segmented.document_count == len(documents) - 1
        # tombstones survive a restart, then a merge reclaims the bytes
        segmented.checkpoint()
        segmented.close()
        warmed = SearchEngine(
            storage="segments",
            storage_dir=tmp_path / "store",
            merge_policy=TieredMergePolicy(merge_factor=2),
        )
        assert warmed.document_count == len(documents) - 1
        warmed.segment_store.merge_all()
        assert warmed.segment_store.tombstones == set()
        hits = warmed.search(t("databases"))
        assert all(
            warmed.store[hit.doc_id].linkage != victim.linkage for hit in hits
        )
        warmed.close()

    def test_tombstone_requires_segments(self):
        engine = SearchEngine()
        with pytest.raises(StorageError, match="segments"):
            engine.tombstone("http://nope")


class TestGuards:
    def test_storage_dir_required(self):
        with pytest.raises(ValueError, match="storage_dir"):
            SearchEngine(storage="segments")
        with pytest.raises(ValueError, match="storage_dir"):
            SearchEngine(storage="memory", storage_dir="/tmp/x")

    def test_unknown_storage_mode(self):
        with pytest.raises(ValueError, match="storage mode"):
            SearchEngine(storage="papyrus")

    def test_analyzer_mismatch_on_open(self, tmp_path):
        from repro.text.analysis import Analyzer

        engine = SearchEngine(storage="segments", storage_dir=tmp_path / "s")
        engine.close()
        with pytest.raises(StorageError, match="analyzer mismatch"):
            SearchEngine(
                analyzer=Analyzer(stem=True),
                storage="segments",
                storage_dir=tmp_path / "s",
            )


WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]


@st.composite
def histories(draw):
    """A document history with flush points sprinkled through it."""
    n_docs = draw(st.integers(1, 14))
    documents = []
    for i in range(n_docs):
        n_words = draw(st.integers(1, 8))
        body = " ".join(
            draw(st.sampled_from(WORDS)) for _ in range(n_words)
        )
        title = draw(st.sampled_from(WORDS))
        documents.append((f"http://h/{i}", title, body))
    flush_after = draw(st.sets(st.integers(0, n_docs - 1)))
    merge_at_end = draw(st.booleans())
    return documents, flush_after, merge_at_end


class TestPropertyEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(histories())
    def test_any_history_matches_oracle(self, tmp_path, history):
        import shutil

        from repro.engine.documents import Document

        documents, flush_after, merge_at_end = history
        store_dir = tmp_path / "prop-store"
        shutil.rmtree(store_dir, ignore_errors=True)

        oracle = SearchEngine()
        segmented = SearchEngine(
            storage="segments",
            storage_dir=store_dir,
            merge_policy=TieredMergePolicy(merge_factor=2),
        )
        for i, (linkage, title, body) in enumerate(documents):
            document = Document(linkage, {F.TITLE: title, F.BODY_OF_TEXT: body})
            oracle.add(document)
            segmented.add(document)
            if i in flush_after:
                segmented.flush()
        if merge_at_end:
            segmented.checkpoint(merge=True)

        for word in WORDS:
            query = ListQuery((t(word), t(word, field=F.TITLE)))
            assert oracle.search(ranking_query=query) == segmented.search(
                ranking_query=query
            )
            assert oracle.evaluate_filter(t(word)) == segmented.evaluate_filter(
                t(word)
            )
        assert oracle.index.summary_sections() == segmented.index.summary_sections()

        # ...and a warm reopen of the same directory still matches.
        segmented.checkpoint()
        segmented.close()
        warmed = SearchEngine(
            storage="segments",
            storage_dir=store_dir,
            merge_policy=TieredMergePolicy(merge_factor=2),
        )
        query = ListQuery(tuple(t(word) for word in WORDS))
        assert oracle.search(ranking_query=query) == warmed.search(
            ranking_query=query
        )
        warmed.close()
