"""Checkpoint/restore: summary indexes, leaf brokers, cache tiers.

Restoration must be *bit-identical*: the same packed columns, the same
corpus statistics, the same selector scores (sparse and dense-oracle),
the same remaining TTLs.  Leaf checkpoints additionally carry the
delta-log cursor, so a warm restart replays only the log tail.
"""

import pytest

from repro.broker import LeafBroker
from repro.cache import FRESH, MISS, STALE, QueryResultCache
from repro.metasearch.selection import Cori
from repro.metasearch.summary_index import SummaryIndex
from repro.observability.metrics import MetricsRegistry, get_registry, set_registry
from repro.storage import StorageError
from repro.storage.checkpoint import (
    load_cache,
    load_leaf_checkpoint,
    load_summary_index,
    save_cache,
    save_leaf_checkpoint,
    save_summary_index,
)

from tests.broker.util import demo_population, make_summary

TERMS = ["databases", "retrieval", "medicine", "systems"]


def churned_index():
    """An index whose free list has seen some action."""
    population = demo_population(n_sources=16, seed=9)
    index = SummaryIndex.from_summaries(population)
    for source_id in list(population)[::4]:
        index.remove(source_id)
    index.add("Late-0", make_summary(40, {"databases": (9, 4), "systems": (3, 2)}))
    index.add("Late-1", make_summary(7, {"medicine": (2, 1)}))
    index.remove("Late-0")
    return index


def assert_bit_identical(original, restored):
    assert restored.generation == original.generation
    assert restored._clamped_mass_total == original._clamped_mass_total
    assert restored._source_ids == original._source_ids
    assert restored._num_docs == original._num_docs
    assert restored._word_mass == original._word_mass
    assert restored._free == original._free
    assert restored.mean_clamped_word_mass() == original.mean_clamped_word_mass()
    assert restored.summaries() == original.summaries()
    assert set(restored._shards) == set(original._shards)
    for term in original._shards:
        ours, theirs = original.term_columns(term), restored.term_columns(term)
        assert ours.ordinals == theirs.ordinals
        assert ours.document_frequencies == theirs.document_frequencies
        assert ours.postings == theirs.postings


class TestSummaryIndexCheckpoint:
    def test_round_trip_is_bit_identical(self, tmp_path):
        index = churned_index()
        generation = save_summary_index(index, tmp_path / "summary.ckpt")
        assert generation == index.generation
        restored = load_summary_index(tmp_path / "summary.ckpt")
        assert_bit_identical(index, restored)

    def test_restored_selector_scores_match_dense_oracle(self, tmp_path):
        index = churned_index()
        save_summary_index(index, tmp_path / "summary.ckpt")
        restored = load_summary_index(tmp_path / "summary.ckpt")
        sparse = Cori().rank(TERMS, restored)
        assert sparse == Cori().rank(TERMS, index)
        assert sparse == Cori(backend="dense").rank(TERMS, restored.summaries())

    def test_restored_index_keeps_evolving(self, tmp_path):
        index = churned_index()
        save_summary_index(index, tmp_path / "summary.ckpt")
        restored = load_summary_index(tmp_path / "summary.ckpt")
        # mutations after restore reuse freed ordinals the same way
        for target in (index, restored):
            target.add("Post", make_summary(5, {"retrieval": (4, 2)}))
            target.remove("Late-1")
        assert_bit_identical(index, restored)

    def test_empty_index_round_trips(self, tmp_path):
        save_summary_index(SummaryIndex(), tmp_path / "empty.ckpt")
        restored = load_summary_index(tmp_path / "empty.ckpt")
        assert len(restored) == 0
        assert restored.generation == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"NOPE rest of file")
        with pytest.raises(StorageError, match="not a summary-index checkpoint"):
            load_summary_index(path)

    def test_version_mismatch_rejected(self, tmp_path):
        from repro.storage.checkpoint import _SUMMARY_MAGIC
        from repro.storage.format import encode_varint

        blob = bytearray(_SUMMARY_MAGIC)
        encode_varint(blob, 999)
        path = tmp_path / "future.ckpt"
        path.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="version"):
            load_summary_index(path)


class TestLeafCheckpoint:
    def deltas(self):
        population = demo_population(n_sources=12, seed=3)
        return [(source_id, population[source_id]) for source_id in sorted(population)]

    def test_warm_restart_replays_only_the_tail(self, tmp_path):
        deltas = self.deltas()
        live = LeafBroker("leaf-07")
        for source_id, summary in deltas[:8]:
            live.apply_delta(source_id, summary)
        position = live.save_checkpoint(tmp_path / "leaf.ckpt")
        assert position == 8
        for source_id, summary in deltas[8:]:
            live.apply_delta(source_id, summary)

        warmed = LeafBroker.from_checkpoint(tmp_path / "leaf.ckpt")
        assert warmed.leaf_id == "leaf-07"
        assert warmed.restored_log_position == 8
        assert len(warmed._log) == 0  # the checkpoint compacted the log away
        for source_id, summary in deltas[warmed.restored_log_position :]:
            warmed.apply_delta(source_id, summary)
        assert warmed.index.generation == live.index.generation
        assert warmed.index.summaries() == live.index.summaries()
        assert Cori().rank(TERMS, warmed.index) == Cori().rank(TERMS, live.index)

    def test_standby_restored_independently(self, tmp_path):
        live = LeafBroker("leaf-00")
        for source_id, summary in self.deltas():
            live.apply_delta(source_id, summary)
        live.save_checkpoint(tmp_path / "leaf.ckpt")

        warmed = LeafBroker.from_checkpoint(tmp_path / "leaf.ckpt")
        assert warmed._standby is not warmed.index
        assert warmed._standby.generation == warmed.index.generation
        assert warmed.in_sync
        # failover right after a warm restart serves the same shard
        warmed.fail()
        warmed.fail_over()
        assert warmed.index.summaries() == live.index.summaries()

    def test_eager_replication_flag_propagates(self, tmp_path):
        live = LeafBroker("leaf-00")
        live.apply_delta("S0", make_summary(3, {"query": (2, 1)}))
        live.save_checkpoint(tmp_path / "leaf.ckpt")
        warmed = LeafBroker.from_checkpoint(
            tmp_path / "leaf.ckpt", eager_replication=True
        )
        warmed.apply_delta("S1", make_summary(1, {"query": (1, 1)}))
        assert warmed.in_sync

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"XXXX")
        with pytest.raises(StorageError, match="not a leaf checkpoint"):
            load_leaf_checkpoint(path)

    def test_leaf_and_summary_checkpoints_are_distinct(self, tmp_path):
        live = LeafBroker("leaf-00")
        live.apply_delta("S0", make_summary(3, {"query": (2, 1)}))
        save_leaf_checkpoint(live, tmp_path / "leaf.ckpt")
        with pytest.raises(StorageError, match="not a summary-index checkpoint"):
            load_summary_index(tmp_path / "leaf.ckpt")


class FakeClock:
    def __init__(self, now_ms=0.0):
        self.now_ms = now_ms

    def __call__(self):
        return self.now_ms


class TestCacheCheckpoint:
    def make(self, now_ms=0.0, **kwargs):
        clock = FakeClock(now_ms)
        defaults = dict(ttl_ms=100.0, stale_grace_ms=100.0, clock=clock)
        defaults.update(kwargs)
        return QueryResultCache(**defaults), clock

    def test_remaining_ttl_survives_clock_restart(self, tmp_path):
        cache, clock = self.make()
        cache.store("q1", {"docs": 3}, source_ids=("s1",))
        clock.now_ms = 60.0  # 40ms of freshness left
        assert cache.save_checkpoint(tmp_path / "cache.ckpt") == 1

        # "new process": the monotonic clock restarts at an unrelated epoch
        warmed, warmed_clock = self.make(now_ms=5000.0)
        assert warmed.load_checkpoint(tmp_path / "cache.ckpt") == 1
        assert warmed.lookup("q1") == ({"docs": 3}, FRESH)
        warmed_clock.now_ms = 5041.0  # past the 40ms that remained
        assert warmed.lookup("q1") == ({"docs": 3}, STALE)
        warmed_clock.now_ms = 5141.0  # past the stale grace too
        assert warmed.lookup("q1") == (None, MISS)

    def test_tags_survive_for_invalidation(self, tmp_path):
        cache, _ = self.make()
        cache.store("a", 1, source_ids=("s1",))
        cache.store("b", 2, source_ids=("s2",))
        cache.save_checkpoint(tmp_path / "cache.ckpt")
        warmed, _ = self.make()
        warmed.load_checkpoint(tmp_path / "cache.ckpt")
        assert warmed.invalidate_source("s1") == 1
        assert warmed.lookup("a") == (None, MISS)
        assert warmed.lookup("b") == (2, FRESH)

    def test_lru_order_survives(self, tmp_path):
        from repro.cache.core import LruTtlCache

        clock = FakeClock()
        cache = LruTtlCache(capacity=3, clock=clock)
        for key in ("a", "b", "c"):
            cache.put(key, key.upper())
        cache.get("a")  # "b" is now least recently used
        save_cache(cache, tmp_path / "lru.ckpt")

        warmed = LruTtlCache(capacity=3, clock=FakeClock())
        load_cache(warmed, tmp_path / "lru.ckpt")
        warmed.put("d", "D")  # one over capacity: evicts the LRU entry
        assert "b" not in warmed
        assert all(key in warmed for key in ("a", "c", "d"))

    def test_restore_requires_empty_cache(self, tmp_path):
        cache, _ = self.make()
        cache.store("k", 1)
        cache.save_checkpoint(tmp_path / "cache.ckpt")
        with pytest.raises(StorageError, match="empty"):
            cache.load_checkpoint(tmp_path / "cache.ckpt")

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"ELF\x7f")
        cache, _ = self.make()
        with pytest.raises(StorageError, match="not a cache checkpoint"):
            cache.load_checkpoint(path)


class TestCheckpointMetrics:
    def test_saves_and_loads_are_observed_by_kind(self, tmp_path):
        previous = get_registry()
        set_registry(MetricsRegistry())
        try:
            save_summary_index(churned_index(), tmp_path / "s.ckpt")
            load_summary_index(tmp_path / "s.ckpt")
            leaf = LeafBroker("leaf-00")
            leaf.apply_delta("S0", make_summary(1, {"query": (1, 1)}))
            leaf.save_checkpoint(tmp_path / "l.ckpt")
            LeafBroker.from_checkpoint(tmp_path / "l.ckpt")
            cache = QueryResultCache(ttl_ms=10.0)
            cache.store("k", 1)
            cache.save_checkpoint(tmp_path / "c.ckpt")

            def kinds(name):
                family = get_registry().family(name)
                return {labels[0] for labels, _ in family.children()}

            assert kinds("checkpoint_save_ms") == {"summary_index", "leaf", "cache"}
            assert kinds("checkpoint_load_ms") == {"summary_index", "leaf"}
        finally:
            set_registry(previous)
