"""Codec round-trips for the segment file format."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.index import Posting
from repro.storage.format import (
    count_posting_list,
    decode_posting_list,
    decode_string,
    decode_varint,
    encode_posting_list,
    encode_string,
    encode_varint,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**31, 2**63])
    def test_round_trip(self, value):
        blob = bytearray()
        encode_varint(blob, value)
        decoded, pos = decode_varint(bytes(blob), 0)
        assert decoded == value
        assert pos == len(blob)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(bytearray(), -1)

    @given(st.lists(st.integers(0, 2**64), max_size=20))
    def test_sequences_round_trip(self, values):
        blob = bytearray()
        for value in values:
            encode_varint(blob, value)
        buf = bytes(blob)
        pos = 0
        decoded = []
        for _ in values:
            value, pos = decode_varint(buf, pos)
            decoded.append(value)
        assert decoded == values
        assert pos == len(buf)

    def test_truncated_raises(self):
        blob = bytearray()
        encode_varint(blob, 300)
        with pytest.raises(IndexError):
            decode_varint(bytes(blob[:-1]), 0)


class TestString:
    @given(st.text(max_size=64))
    def test_round_trip(self, text):
        blob = bytearray()
        encode_string(blob, text)
        decoded, pos = decode_string(bytes(blob), 0)
        assert decoded == text
        assert pos == len(blob)


@st.composite
def posting_lists(draw):
    doc_ids = draw(
        st.lists(st.integers(0, 10_000), min_size=1, max_size=12, unique=True)
    )
    doc_ids.sort()
    postings = []
    for doc_id in doc_ids:
        positions = draw(
            st.lists(st.integers(0, 500), min_size=1, max_size=6, unique=True)
        )
        postings.append(Posting(doc_id, tuple(sorted(positions))))
    return postings


class TestPostingList:
    @given(posting_lists())
    def test_round_trip(self, postings):
        blob = bytearray()
        encode_posting_list(blob, postings)
        decoded = decode_posting_list(bytes(blob), 0)
        assert decoded == postings

    @given(posting_lists())
    def test_count_matches(self, postings):
        blob = bytearray()
        encode_posting_list(blob, postings)
        assert count_posting_list(bytes(blob), 0) == len(postings)

    @given(posting_lists(), st.sets(st.integers(0, 10_000)))
    def test_live_filter_drops_tombstoned(self, postings, dead):
        blob = bytearray()
        encode_posting_list(blob, postings)
        decoded = decode_posting_list(
            bytes(blob), 0, live=lambda doc_id: doc_id not in dead
        )
        assert decoded == [p for p in postings if p.doc_id not in dead]
