"""The tiered merge policy: pure planning invariants."""

import pytest

from repro.storage.manifest import SegmentMeta
from repro.storage.merge import TieredMergePolicy


def meta(name, base, count):
    return SegmentMeta(name=name, doc_base=base, doc_count=count, size_bytes=count)


def run(counts, start=0):
    """Adjacent segments with the given doc counts."""
    segments = []
    base = start
    for i, count in enumerate(counts):
        segments.append(meta(f"seg-{i:06d}", base, count))
        base += count
    return segments


class TestTiers:
    def test_tier_of_powers(self):
        policy = TieredMergePolicy(merge_factor=4)
        assert policy.tier_of(meta("a", 0, 1)) == 0
        assert policy.tier_of(meta("a", 0, 3)) == 0
        assert policy.tier_of(meta("a", 0, 4)) == 1
        assert policy.tier_of(meta("a", 0, 15)) == 1
        assert policy.tier_of(meta("a", 0, 16)) == 2

    def test_merge_factor_must_be_sane(self):
        with pytest.raises(ValueError):
            TieredMergePolicy(merge_factor=1)


class TestPlanning:
    def test_no_plan_below_factor(self):
        policy = TieredMergePolicy(merge_factor=4)
        assert policy.plan(run([1, 1, 1])) is None

    def test_plans_full_same_tier_run(self):
        policy = TieredMergePolicy(merge_factor=4)
        segments = run([1, 1, 1, 1])
        assert policy.plan(segments) == segments

    def test_takes_first_factor_of_longer_run(self):
        policy = TieredMergePolicy(merge_factor=2)
        segments = run([1, 1, 1])
        assert policy.plan(segments) == segments[:2]

    def test_run_broken_by_other_tier(self):
        policy = TieredMergePolicy(merge_factor=2)
        # tier 0, tier 2, tier 0: not adjacent, no tier-0 run of 2.
        segments = run([1, 5, 1])
        plan = policy.plan(segments)
        assert plan is None

    def test_lowest_tier_wins(self):
        policy = TieredMergePolicy(merge_factor=2)
        # Two eligible runs: tier-2 [4,4] first, then tier-0 [1,1].
        segments = run([4, 4, 1, 1])
        plan = policy.plan(segments)
        assert [m.doc_count for m in plan] == [1, 1]

    def test_max_merge_docs_caps_output(self):
        policy = TieredMergePolicy(merge_factor=2, max_merge_docs=5)
        assert policy.plan(run([4, 4])) is None
        assert policy.plan(run([2, 2])) is not None

    def test_plan_is_adjacent(self):
        policy = TieredMergePolicy(merge_factor=2)
        segments = run([1, 1, 1, 1])
        plan = policy.plan(segments)
        assert plan == segments[:2]
        assert plan[0].doc_base + plan[0].doc_count == plan[1].doc_base
