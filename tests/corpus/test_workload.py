"""Query workloads and the containment relevance oracle."""

import pytest

from repro.corpus.generator import CollectionSpec, generate_collection
from repro.corpus.workload import build_workload


@pytest.fixture(scope="module")
def collections():
    return {
        "DB": generate_collection(
            CollectionSpec(name="DB", topics={"databases": 1.0}, size=30, seed=1)
        ),
        "Med": generate_collection(
            CollectionSpec(name="Med", topics={"medicine": 1.0}, size=30, seed=2)
        ),
    }


@pytest.fixture(scope="module")
def workload(collections):
    return build_workload(collections, n_queries=20, seed=7)


class TestGeneration:
    def test_requested_count(self, workload):
        assert len(workload.queries) == 20

    def test_every_query_has_relevant_documents(self, workload):
        for query in workload.queries:
            assert query.relevant

    def test_deterministic(self, collections):
        a = build_workload(collections, n_queries=5, seed=3)
        b = build_workload(collections, n_queries=5, seed=3)
        assert [q.terms for q in a.queries] == [q.terms for q in b.queries]

    def test_term_count_bounds(self, collections):
        workload = build_workload(
            collections, n_queries=10, terms_per_query=(2, 2), seed=5
        )
        assert all(len(q.terms) == 2 for q in workload.queries)

    def test_empty_collections_rejected(self):
        with pytest.raises(ValueError):
            build_workload({}, n_queries=1)


class TestOracle:
    def test_containment_semantics(self, workload, collections):
        """A linkage is relevant iff its tokenized body contains every
        query term."""
        from repro.text.tokenize import UnicodeTokenizer

        tokenizer = UnicodeTokenizer()
        query = workload.queries[0]
        all_docs = {
            doc.linkage: doc for docs in collections.values() for doc in docs
        }
        for linkage in query.relevant:
            body_words = set(tokenizer.words(all_docs[linkage].body))
            assert set(query.terms) <= body_words

    def test_relevant_by_source_sums_to_total(self, workload):
        for query in workload.queries:
            assert sum(query.relevant_by_source.values()) == len(query.relevant)


class TestQueryConversion:
    def test_squery_shape(self, workload):
        squery = workload.queries[0].to_squery(max_documents=5)
        squery.validate()
        assert squery.max_number_documents == 5
        texts = [t.lstring.text for t in squery.ranking_expression.terms()]
        assert tuple(texts) == workload.queries[0].terms

    def test_engine_query_shape(self, workload):
        engine_query = workload.queries[0].to_engine_query()
        assert [t.text for t in engine_query.terms()] == list(
            workload.queries[0].terms
        )


class TestReferenceRanking:
    def test_reference_ranking_nonempty(self, workload):
        ranking = workload.reference_ranking(workload.queries[0])
        assert ranking

    def test_reference_engine_holds_all_documents(self, workload, collections):
        total = sum(len(docs) for docs in collections.values())
        assert workload.reference_engine().document_count == total

    def test_reference_engine_cached(self, workload):
        assert workload.reference_engine() is workload.reference_engine()
