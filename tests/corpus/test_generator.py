"""The synthetic collection generator: determinism and topical skew."""

import pytest

from repro.corpus.generator import CollectionSpec, generate_collection, zipf_weights
from repro.engine import fields as F


def spec(**overrides):
    defaults = dict(name="Test", topics={"databases": 1.0}, size=30, seed=42)
    defaults.update(overrides)
    return CollectionSpec(**defaults)


class TestSpecValidation:
    def test_unknown_topic_rejected(self):
        with pytest.raises(ValueError):
            generate_collection(spec(topics={"astrology": 1.0}))

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            generate_collection(spec(general_fraction=1.5))
        with pytest.raises(ValueError):
            generate_collection(spec(spanish_fraction=-0.1))


class TestDeterminism:
    def test_same_seed_same_collection(self):
        assert generate_collection(spec()) == generate_collection(spec())

    def test_different_seeds_differ(self):
        a = generate_collection(spec(seed=1))
        b = generate_collection(spec(seed=2))
        assert a != b


class TestDocumentShape:
    def test_size(self):
        assert len(generate_collection(spec(size=17))) == 17

    def test_required_fields_present(self):
        for doc in generate_collection(spec()):
            assert doc.title
            assert doc.author
            assert doc.body
            assert doc.get(F.DATE_LAST_MODIFIED).startswith("199")
            assert doc.linkage.startswith("http://test.example.org/")

    def test_unique_linkages(self):
        docs = generate_collection(spec())
        assert len({doc.linkage for doc in docs}) == len(docs)

    def test_body_length_within_bounds(self):
        for doc in generate_collection(spec(body_words=(50, 60))):
            assert 50 <= len(doc.body.split()) <= 60

    def test_abstract_toggle(self):
        with_abs = generate_collection(spec(with_abstract=True))
        without = generate_collection(spec(with_abstract=False))
        assert any(doc.get(F.ABSTRACT) for doc in with_abs)
        assert all(not doc.get(F.ABSTRACT) for doc in without)


class TestTopicalSkew:
    def test_collections_reflect_their_topics(self):
        """§3.2's scenario: "databases" is common in a DB collection and
        rare in an unrelated one."""
        db_docs = generate_collection(spec(topics={"databases": 1.0}, size=50))
        med_docs = generate_collection(
            spec(topics={"medicine": 1.0}, size=50, seed=43)
        )

        def df(docs, word):
            return sum(1 for doc in docs if word in doc.body.lower().split())

        assert df(db_docs, "databases") > df(med_docs, "databases")
        assert df(med_docs, "patient") > df(db_docs, "patient")

    def test_general_words_shared(self):
        db_docs = generate_collection(spec(general_fraction=0.5))
        text = " ".join(doc.body for doc in db_docs)
        assert "analysis" in text or "system" in text


class TestSpanishMix:
    def test_spanish_fraction_produces_spanish_documents(self):
        docs = generate_collection(spec(spanish_fraction=0.5, size=60))
        spanish = [doc for doc in docs if doc.language == "es"]
        assert 10 < len(spanish) < 50
        assert all(doc.get(F.LANGUAGES) == "es" for doc in spanish)


class TestZipf:
    def test_weights_decrease(self):
        weights = zipf_weights(10)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_exponent_steepens(self):
        flat = zipf_weights(10, 0.5)
        steep = zipf_weights(10, 2.0)
        assert steep[9] < flat[9]


class TestSummaryPopulation:
    def population(self, **overrides):
        from repro.corpus.generator import (
            SummaryPopulationSpec,
            generate_source_summaries,
        )

        defaults = dict(n_sources=12, seed=9)
        defaults.update(overrides)
        return generate_source_summaries(SummaryPopulationSpec(**defaults))

    def test_deterministic(self):
        assert self.population() == self.population()
        assert self.population() != self.population(seed=10)

    def test_shape_and_invariants(self):
        summaries = self.population()
        assert len(summaries) == 12
        for summary in summaries.values():
            assert summary.num_docs >= 40
            (section,) = summary.sections
            assert section.field == "body-of-text"
            assert section.entries  # every source has vocabulary
            for entry in section.entries:
                # df ≤ postings and df ≤ num_docs — the GlOSS invariants.
                assert 1 <= entry.document_frequency <= entry.postings
                assert entry.document_frequency <= summary.num_docs

    def test_topical_zipf_head(self):
        """Each source's most frequent word dominates — Zipf, not uniform."""
        summaries = self.population()
        for summary in summaries.values():
            entries = summary.sections[0].entries
            assert entries[0].postings > entries[-1].postings

    def test_neighbouring_sources_cycle_topics(self):
        """Sources draw from cycled topic pools, so adjacent sources get
        distinct topical heads while same-topic sources overlap."""
        summaries = self.population(n_sources=14)  # two full topic cycles
        tops = [
            {entry.word for entry in summary.sections[0].entries[:10]}
            for summary in summaries.values()
        ]
        # Source i and i+7 share a topic pool; i and i+1 do not.
        assert len(tops[0] & tops[7]) > len(tops[0] & tops[1])

    def test_validation(self):
        from repro.corpus.generator import (
            SummaryPopulationSpec,
            generate_source_summaries,
        )

        with pytest.raises(ValueError):
            generate_source_summaries(SummaryPopulationSpec(n_sources=0))
        with pytest.raises(ValueError):
            generate_source_summaries(
                SummaryPopulationSpec(n_sources=1, general_fraction=2.0)
            )
        with pytest.raises(ValueError):
            generate_source_summaries(
                SummaryPopulationSpec(n_sources=1, topics_per_source=99)
            )
