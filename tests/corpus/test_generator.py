"""The synthetic collection generator: determinism and topical skew."""

import pytest

from repro.corpus.generator import CollectionSpec, generate_collection, zipf_weights
from repro.engine import fields as F


def spec(**overrides):
    defaults = dict(name="Test", topics={"databases": 1.0}, size=30, seed=42)
    defaults.update(overrides)
    return CollectionSpec(**defaults)


class TestSpecValidation:
    def test_unknown_topic_rejected(self):
        with pytest.raises(ValueError):
            generate_collection(spec(topics={"astrology": 1.0}))

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            generate_collection(spec(general_fraction=1.5))
        with pytest.raises(ValueError):
            generate_collection(spec(spanish_fraction=-0.1))


class TestDeterminism:
    def test_same_seed_same_collection(self):
        assert generate_collection(spec()) == generate_collection(spec())

    def test_different_seeds_differ(self):
        a = generate_collection(spec(seed=1))
        b = generate_collection(spec(seed=2))
        assert a != b


class TestDocumentShape:
    def test_size(self):
        assert len(generate_collection(spec(size=17))) == 17

    def test_required_fields_present(self):
        for doc in generate_collection(spec()):
            assert doc.title
            assert doc.author
            assert doc.body
            assert doc.get(F.DATE_LAST_MODIFIED).startswith("199")
            assert doc.linkage.startswith("http://test.example.org/")

    def test_unique_linkages(self):
        docs = generate_collection(spec())
        assert len({doc.linkage for doc in docs}) == len(docs)

    def test_body_length_within_bounds(self):
        for doc in generate_collection(spec(body_words=(50, 60))):
            assert 50 <= len(doc.body.split()) <= 60

    def test_abstract_toggle(self):
        with_abs = generate_collection(spec(with_abstract=True))
        without = generate_collection(spec(with_abstract=False))
        assert any(doc.get(F.ABSTRACT) for doc in with_abs)
        assert all(not doc.get(F.ABSTRACT) for doc in without)


class TestTopicalSkew:
    def test_collections_reflect_their_topics(self):
        """§3.2's scenario: "databases" is common in a DB collection and
        rare in an unrelated one."""
        db_docs = generate_collection(spec(topics={"databases": 1.0}, size=50))
        med_docs = generate_collection(
            spec(topics={"medicine": 1.0}, size=50, seed=43)
        )

        def df(docs, word):
            return sum(1 for doc in docs if word in doc.body.lower().split())

        assert df(db_docs, "databases") > df(med_docs, "databases")
        assert df(med_docs, "patient") > df(db_docs, "patient")

    def test_general_words_shared(self):
        db_docs = generate_collection(spec(general_fraction=0.5))
        text = " ".join(doc.body for doc in db_docs)
        assert "analysis" in text or "system" in text


class TestSpanishMix:
    def test_spanish_fraction_produces_spanish_documents(self):
        docs = generate_collection(spec(spanish_fraction=0.5, size=60))
        spanish = [doc for doc in docs if doc.language == "es"]
        assert 10 < len(spanish) < 50
        assert all(doc.get(F.LANGUAGES) == "es" for doc in spanish)


class TestZipf:
    def test_weights_decrease(self):
        weights = zipf_weights(10)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_exponent_steepens(self):
        flat = zipf_weights(10, 0.5)
        steep = zipf_weights(10, 2.0)
        assert steep[9] < flat[9]
