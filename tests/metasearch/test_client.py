"""The metasearcher facade, end to end over the wire."""

import pytest

from repro.metasearch import (
    Metasearcher,
    NormalizedScoreMerge,
    RandomSelector,
    SelectAll,
)
from repro.starts import SQuery, parse_expression
from repro.starts.errors import ProtocolError


@pytest.fixture
def searcher(small_federation):
    internet, resource_url, _ = small_federation
    searcher = Metasearcher(internet, [resource_url])
    searcher.refresh()
    return searcher


def db_query(**overrides):
    defaults = dict(
        ranking_expression=parse_expression(
            'list((body-of-text "databases") (body-of-text "query"))'
        ),
    )
    defaults.update(overrides)
    return SQuery(**defaults)


class TestSearchPipeline:
    def test_selects_topical_source(self, searcher):
        result = searcher.search(db_query(), k_sources=1)
        assert result.selected_sources == ["Fed-DB"]

    def test_merged_documents_returned(self, searcher):
        result = searcher.search(db_query(), k_sources=2)
        assert result.documents
        scores = [d.score for d in result.documents]
        assert scores == sorted(scores, reverse=True)

    def test_max_documents_respected(self, searcher):
        result = searcher.search(db_query(max_number_documents=3), k_sources=3)
        assert len(result.documents) <= 3

    def test_translation_reports_per_source(self, searcher):
        result = searcher.search(db_query(), k_sources=3)
        assert set(result.translation_reports) == set(result.selected_sources)

    def test_per_source_results_exposed(self, searcher):
        result = searcher.search(db_query(), k_sources=2)
        for source_id, results in result.per_source_results.items():
            assert results.sources == (source_id,)

    def test_requires_refresh_first(self, small_federation):
        internet, resource_url, _ = small_federation
        fresh = Metasearcher(internet, [resource_url])
        with pytest.raises(ProtocolError):
            fresh.search(db_query())

    def test_invalid_query_rejected(self, searcher):
        with pytest.raises(ProtocolError):
            searcher.search(SQuery())


class TestStrategyOverrides:
    def test_selector_override(self, searcher):
        result = searcher.search(db_query(), k_sources=3, selector=SelectAll())
        assert len(result.selected_sources) == 3

    def test_merger_override(self, searcher):
        result = searcher.search(
            db_query(), k_sources=2, merger=NormalizedScoreMerge()
        )
        for document in result.documents:
            assert 0.0 <= document.score <= 1.0

    def test_random_selector_still_works_end_to_end(self, searcher):
        result = searcher.search(db_query(), k_sources=1, selector=RandomSelector(3))
        assert len(result.selected_sources) == 1


class TestResultView:
    def test_linkages_and_top(self, searcher):
        result = searcher.search(db_query(), k_sources=2)
        assert result.linkages() == [d.linkage for d in result.documents]
        assert result.top(2) == result.documents[:2]


class TestNetworkEconomy:
    def test_skips_sources_where_nothing_survives(self, small_federation):
        """A Boolean-only source is never queried with a ranking-only
        query — the client knows from metadata it would be pointless."""
        from repro.corpus import source1_documents
        from repro.resource import Resource
        from repro.transport import SimulatedInternet, publish_resource
        from repro.vendors import build_vendor_source

        internet = SimulatedInternet()
        resource = Resource("R")
        resource.add_source(
            build_vendor_source("GrepMaster", "OnlyGrep", source1_documents())
        )
        publish_resource(internet, resource, "http://only.example.org")
        searcher = Metasearcher(internet, ["http://only.example.org/resource"])
        searcher.refresh()
        internet.reset_log()

        result = searcher.search(db_query(), k_sources=1)
        assert result.per_source_results == {}
        assert internet.request_count() == 0  # no query round trip at all
