"""Broker hierarchies: summary aggregation and best-first descent."""

import pytest

from repro.metasearch.brokers import BrokerNode, HierarchicalSelector, merge_summaries
from repro.metasearch.selection import VGlossMax
from repro.starts.metadata import SContentSummary, SummaryEntryLine, SummarySection


def summary(num_docs, words):
    entries = tuple(
        SummaryEntryLine(word, postings, df)
        for word, (postings, df) in sorted(words.items())
    )
    return SContentSummary(
        num_docs=num_docs,
        sections=(SummarySection("body-of-text", "en", entries),),
    )


class TestMergeSummaries:
    def test_statistics_add(self):
        merged = merge_summaries(
            [
                summary(10, {"databases": (30, 8)}),
                summary(20, {"databases": (10, 5), "networks": (7, 3)}),
            ]
        )
        assert merged.num_docs == 30
        assert merged.total_postings("databases") == 40
        assert merged.document_frequency("databases") == 13
        assert merged.document_frequency("networks") == 3

    def test_sections_keep_field_language_grouping(self):
        english = summary(5, {"alpha": (1, 1)})
        spanish = SContentSummary(
            num_docs=5,
            sections=(
                SummarySection(
                    "body-of-text", "es", (SummaryEntryLine("datos", 2, 2),)
                ),
            ),
        )
        merged = merge_summaries([english, spanish])
        languages = {section.language for section in merged.sections}
        assert languages == {"en", "es"}

    def test_empty_input(self):
        assert merge_summaries([]).num_docs == 0

    def test_header_flags_are_weakest_claims(self):
        stemmed = SContentSummary(num_docs=1, stemming=True)
        unstemmed = SContentSummary(num_docs=1, stemming=False)
        assert merge_summaries([stemmed, unstemmed]).stemming is False
        assert merge_summaries([stemmed, stemmed]).stemming is True

    def test_empty_summary_does_not_weaken_flags(self):
        """Regression: a summary with no sections and no documents
        describes nothing, so its default flags must not drag the merge
        down to the weakest defaults."""
        stemmed = summary(5, {"alpha": (3, 2)})
        stemmed = SContentSummary(
            num_docs=stemmed.num_docs,
            sections=stemmed.sections,
            stemming=True,
            case_sensitive=True,
        )
        empty = SContentSummary(num_docs=0)
        merged = merge_summaries([stemmed, empty])
        assert merged.stemming is True
        assert merged.case_sensitive is True
        assert merged.num_docs == 5

    def test_zero_doc_sectioned_summary_still_claims(self):
        """A source with sections but num_docs == 0 is making claims
        about its (empty) list and must participate in flag weakening."""
        stemmed = SContentSummary(
            num_docs=1,
            stemming=True,
            sections=(SummarySection("body-of-text", "en", ()),),
        )
        zero_docs = SContentSummary(
            num_docs=0,
            stemming=False,
            sections=(SummarySection("body-of-text", "en", ()),),
        )
        assert merge_summaries([stemmed, zero_docs]).stemming is False

    def test_all_empty_inputs_yield_defaults(self):
        empty = SContentSummary(num_docs=0)
        merged = merge_summaries([empty, empty])
        assert merged.num_docs == 0
        assert merged.sections == ()
        defaults = SContentSummary(num_docs=0)
        assert merged.stemming == defaults.stemming
        assert merged.has_postings == defaults.has_postings

    def test_statistics_availability_merges_as_weakest_claim(self):
        """Regression: a child without postings (or df) statistics must
        mark the merged summary as lacking them too."""
        rich = summary(5, {"alpha": (3, 2)})
        poor = SContentSummary(
            num_docs=5,
            sections=summary(5, {"beta": (2, 1)}).sections,
            has_postings=False,
            has_document_frequencies=False,
        )
        merged = merge_summaries([rich, poor])
        assert merged.has_postings is False
        assert merged.has_document_frequencies is False
        both_rich = merge_summaries([rich, summary(2, {"gamma": (1, 1)})])
        assert both_rich.has_postings is True
        assert both_rich.has_document_frequencies is True

    def test_empty_summary_does_not_strengthen_availability(self):
        """The empty summary's has_postings=True default must not
        override claiming children either way — only claimants count."""
        poor = SContentSummary(
            num_docs=3,
            sections=summary(3, {"alpha": (1, 1)}).sections,
            has_postings=False,
        )
        empty = SContentSummary(num_docs=0)
        assert merge_summaries([poor, empty]).has_postings is False

    def test_merge_equals_union_summary(self):
        """Aggregation is exact: merging per-source summaries equals the
        summary of the union collection."""
        from repro.corpus import source1_documents, source2_documents
        from repro.source import StartsSource

        separate = [
            StartsSource("A", source1_documents()).content_summary(),
            StartsSource("B", source2_documents()).content_summary(),
        ]
        union = StartsSource(
            "AB", source1_documents() + source2_documents()
        ).content_summary()
        merged = merge_summaries(separate)
        assert merged.num_docs == union.num_docs
        for word in ("databases", "distributed", "ullman"):
            assert merged.total_postings(word) == union.total_postings(word)
            assert merged.document_frequency(word) == union.document_frequency(word)


@pytest.fixture
def hierarchy():
    """Two brokers: CS (db + ir sources) and Med (two medical sources)."""
    db = BrokerNode.leaf("db", summary(50, {"databases": (200, 40), "query": (80, 30)}))
    ir = BrokerNode.leaf("ir", summary(50, {"retrieval": (150, 35), "query": (60, 25)}))
    med1 = BrokerNode.leaf("med1", summary(50, {"patient": (180, 45)}))
    med2 = BrokerNode.leaf("med2", summary(50, {"diagnosis": (120, 30)}))
    cs = BrokerNode.broker("cs", [db, ir])
    med = BrokerNode.broker("med", [med1, med2])
    return BrokerNode.broker("root", [cs, med])


class TestHierarchicalSelection:
    def test_descends_to_topical_leaf(self, hierarchy):
        selector = HierarchicalSelector(hierarchy)
        assert selector.select(["databases"], 1) == ["db"]
        assert selector.select(["patient"], 1) == ["med1"]

    def test_selects_k_leaves_best_first(self, hierarchy):
        selector = HierarchicalSelector(hierarchy)
        selected = selector.select(["query"], 2)
        assert selected == ["db", "ir"]

    def test_prunes_unpromising_branch(self, hierarchy):
        """A databases query never scores the medical leaves."""
        selector = HierarchicalSelector(hierarchy)
        selector.select(["databases"], 1)
        # Scored: root + its 2 children + cs's 2 children = 5, not 7.
        assert selector.summaries_scored == 5

    def test_flat_equivalence_on_leaves(self, hierarchy):
        """The hierarchy picks the same top source as a flat scan."""
        flat = VGlossMax()
        leaves = {
            node.source_id: node.aggregate_summary() for node in hierarchy.leaves()
        }
        flat_best = flat.select(["databases", "query"], leaves, 1)
        tree_best = HierarchicalSelector(hierarchy).select(["databases", "query"], 1)
        assert tree_best == flat_best

    def test_k_larger_than_leaves(self, hierarchy):
        selector = HierarchicalSelector(hierarchy)
        assert len(selector.select(["query"], 10)) == 4

    def test_aggregate_summary_cached(self, hierarchy):
        first = hierarchy.aggregate_summary()
        assert hierarchy.aggregate_summary() is first
