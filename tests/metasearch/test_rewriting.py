"""Predicate rewriting (refs [3, 4]): emulating modifiers client-side."""

import pytest

from repro.corpus import source1_documents
from repro.metasearch.rewriting import PredicateRewriter
from repro.metasearch.translation import ClientTranslator
from repro.source import SourceCapabilities, StartsSource
from repro.starts import SQuery, SOr, STerm, parse_expression


@pytest.fixture
def no_stem_source():
    """A source whose engine indexes normally but declares no stem."""
    return StartsSource(
        "NoStem",
        source1_documents(),
        capabilities=SourceCapabilities.full_basic1().without_modifiers(
            "stem", "phonetic", "right-truncation", "left-truncation"
        ),
    )


def rewrite(expression_text, source):
    rewriter = PredicateRewriter()
    node = parse_expression(expression_text)
    rewritten, report = rewriter.rewrite(
        node, source.metadata(), source.content_summary()
    )
    return rewritten, report


class TestStemRewriting:
    def test_stem_becomes_or_of_variants(self, no_stem_source):
        rewritten, report = rewrite('(title stem "databases")', no_stem_source)
        assert report.rewrite_count == 1
        assert isinstance(rewritten, SOr)
        words = sorted(t.lstring.text for t in rewritten.terms())
        # The summary's title vocabulary contains both surface forms.
        assert "database" in words and "databases" in words

    def test_rewritten_terms_carry_no_stem_modifier(self, no_stem_source):
        rewritten, _ = rewrite('(title stem "databases")', no_stem_source)
        for term in rewritten.terms():
            assert "stem" not in term.modifier_names()

    def test_supported_modifiers_left_alone(self, source1):
        rewriter = PredicateRewriter()
        node = parse_expression('(title stem "databases")')
        rewritten, report = rewriter.rewrite(
            node, source1.metadata(), source1.content_summary()
        )
        assert rewritten == node
        assert report.rewrite_count == 0

    def test_no_vocabulary_match_keeps_term(self, no_stem_source):
        rewritten, report = rewrite('(title stem "xylophones")', no_stem_source)
        assert isinstance(rewritten, STerm)
        assert report.not_rewritable


class TestOtherModifiers:
    def test_phonetic_rewriting(self, no_stem_source):
        rewritten, report = rewrite('(author phonetic "Ullmann")', no_stem_source)
        assert report.rewrite_count == 1
        words = [t.lstring.text for t in rewritten.terms()]
        assert "ullman" in words

    def test_right_truncation_rewriting(self, no_stem_source):
        rewritten, report = rewrite(
            '(body-of-text right-truncation "databas")', no_stem_source
        )
        words = [t.lstring.text for t in rewritten.terms()]
        assert any(word.startswith("databas") for word in words)

    def test_prox_operands_not_rewritten(self, no_stem_source):
        rewritten, report = rewrite(
            '((body-of-text stem "databases") prox[1,T] (body-of-text "systems"))',
            no_stem_source,
        )
        assert report.rewrite_count == 0  # prox terms must stay atomic


class TestEndToEndRecovery:
    def test_rewriting_recovers_stem_recall(self, no_stem_source):
        """The headline: with rewriting, a no-stem source answers a stem
        query as if it supported stemming."""
        query = SQuery(
            filter_expression=parse_expression('(title stem "databases")')
        )

        plain = ClientTranslator()
        translated_plain, _ = plain.translate(query, no_stem_source.metadata())
        hits_plain = no_stem_source.search(translated_plain).documents

        rewriting = ClientTranslator(rewriter=PredicateRewriter())
        translated_rw, report = rewriting.translate(
            query, no_stem_source.metadata(), summary=no_stem_source.content_summary()
        )
        hits_rw = no_stem_source.search(translated_rw).documents

        # Without rewriting the stem modifier is dropped: only the
        # exact plural form matches.  With rewriting both forms match.
        assert len(hits_rw) > len(hits_plain)
        assert any("dood" in doc.linkage for doc in hits_rw)
        assert any(note.startswith("rewritten") for note in report.dropped)

    def test_no_summary_means_no_rewriting(self, no_stem_source):
        rewriting = ClientTranslator(rewriter=PredicateRewriter())
        query = SQuery(
            filter_expression=parse_expression('(title stem "databases")')
        )
        translated, report = rewriting.translate(query, no_stem_source.metadata())
        # Falls back to dropping the modifier, as without a rewriter.
        assert not any(note.startswith("rewritten") for note in report.dropped)


class TestExpansionCap:
    def test_max_expansion_respected(self, no_stem_source):
        rewriter = PredicateRewriter(max_expansion=2)
        node = parse_expression('(body-of-text right-truncation "d")')
        rewritten, report = rewriter.rewrite(
            node, no_stem_source.metadata(), no_stem_source.content_summary()
        )
        assert len(rewritten.terms()) <= 2
