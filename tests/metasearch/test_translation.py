"""Client-side translation from MBasic-1 metadata."""

import pytest

from repro.corpus import source1_documents
from repro.metasearch.translation import (
    ClientTranslator,
    capabilities_from_metadata,
)
from repro.source import SourceCapabilities, StartsSource
from repro.starts import SQuery, parse_expression
from repro.vendors import build_vendor_source


def query_with_everything():
    return SQuery(
        filter_expression=parse_expression(
            '((author "Ullman") and (title stem "databases"))'
        ),
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
    )


class TestCapabilityReconstruction:
    def test_round_trip_through_metadata(self):
        """capabilities → metadata → capabilities preserves support."""
        original = SourceCapabilities.full_basic1().without_fields("author")
        source = StartsSource("S", source1_documents(), capabilities=original)
        rebuilt = capabilities_from_metadata(source.metadata())
        assert not rebuilt.supports_field("author")
        assert rebuilt.supports_field("title")
        assert rebuilt.query_parts == original.query_parts
        assert rebuilt.turn_off_stop_words == original.turn_off_stop_words

    def test_required_fields_always_present(self):
        source = StartsSource("S", source1_documents())
        rebuilt = capabilities_from_metadata(source.metadata())
        for name in ("title", "any", "linkage", "date/time-last-modified"):
            assert rebuilt.supports_field(name)


class TestClientTranslation:
    def test_lossless_for_full_source(self):
        source = StartsSource("S", source1_documents())
        translated, report = ClientTranslator().translate(
            query_with_everything(), source.metadata()
        )
        assert report.is_lossless()
        assert translated.filter_expression == query_with_everything().filter_expression

    def test_predicts_server_side_actual_query(self):
        """The client's pre-translation equals the source's actual-query
        report — the metadata is a faithful contract."""
        source = StartsSource(
            "S",
            source1_documents(),
            capabilities=SourceCapabilities.full_basic1()
            .without_fields("author")
            .without_modifiers("stem"),
        )
        query = query_with_everything()
        translated, report = ClientTranslator().translate(query, source.metadata())
        assert not report.is_lossless()

        results = source.search(query)
        assert results.actual_filter_expression == translated.filter_expression
        assert results.actual_ranking_expression == translated.ranking_expression

    def test_ranking_dropped_for_boolean_only_source(self):
        source = build_vendor_source("GrepMaster", "G", source1_documents())
        translated, report = ClientTranslator().translate(
            query_with_everything(), source.metadata()
        )
        assert translated.ranking_expression is None
        assert not report.ranking_survived
        assert report.filter_survived

    def test_stop_word_preservation_flag(self):
        source = build_vendor_source("ZeusFind", "Z", source1_documents())
        query = SQuery(
            ranking_expression=parse_expression('list((body-of-text "databases"))'),
            drop_stop_words=False,
        )
        translated, report = ClientTranslator().translate(query, source.metadata())
        assert not report.stop_words_preserved
        assert translated.drop_stop_words is True

    def test_client_predicts_stop_word_elimination(self):
        source = StartsSource("S", source1_documents())
        query = SQuery(
            ranking_expression=parse_expression(
                'list((body-of-text "the") (body-of-text "databases"))'
            )
        )
        translated, report = ClientTranslator().translate(query, source.metadata())
        terms = [t.lstring.text for t in translated.ranking_expression.terms()]
        assert terms == ["databases"]
        assert any("stop word" in note for note in report.dropped)


class TestWorthQuerying:
    def test_totally_unsupported_query_flagged(self):
        source = build_vendor_source("GrepMaster", "G", source1_documents())
        ranking_only = SQuery(
            ranking_expression=parse_expression('list((body-of-text "databases"))')
        )
        assert not ClientTranslator().worth_querying(ranking_only, source.metadata())

    def test_supported_query_flagged_true(self):
        source = StartsSource("S", source1_documents())
        assert ClientTranslator().worth_querying(
            query_with_everything(), source.metadata()
        )


class TestReport:
    def test_feature_loss_counts_drops(self):
        source = StartsSource(
            "S",
            source1_documents(),
            capabilities=SourceCapabilities.full_basic1().without_fields("author"),
        )
        _, report = ClientTranslator().translate(
            query_with_everything(), source.metadata()
        )
        assert report.feature_loss == len(report.dropped) > 0
