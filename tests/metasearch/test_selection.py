"""Source selection: GlOSS family, CORI, baselines, cost awareness."""

import pytest

from repro.metasearch.selection import (
    BGloss,
    BySize,
    Cori,
    CostAware,
    RandomSelector,
    SelectAll,
    VGlossMax,
    VGlossSum,
)
from repro.starts.metadata import SContentSummary, SummaryEntryLine, SummarySection


def summary(num_docs, words):
    """words: {word: (postings, df)}"""
    entries = tuple(
        SummaryEntryLine(word, postings, df) for word, (postings, df) in words.items()
    )
    return SContentSummary(
        num_docs=num_docs,
        sections=(SummarySection("body-of-text", "en", entries),),
    )


@pytest.fixture
def summaries():
    """A DB-heavy source, a slight-DB source, and an unrelated one."""
    return {
        "DB": summary(100, {"databases": (400, 80), "query": (150, 60)}),
        "Mixed": summary(100, {"databases": (40, 20), "patient": (100, 50)}),
        "Med": summary(100, {"patient": (500, 90), "diagnosis": (200, 70)}),
    }


class TestBGloss:
    def test_estimates_conjunctive_matches(self, summaries):
        ranked = BGloss().rank(["databases", "query"], summaries)
        assert ranked[0][0] == "DB"
        # Independence estimate: 100 * 0.8 * 0.6 = 48.
        assert ranked[0][1] == pytest.approx(48.0)

    def test_missing_term_zeroes_source(self, summaries):
        ranked = dict(BGloss().rank(["databases", "diagnosis"], summaries))
        assert ranked["DB"] == 0.0  # no "diagnosis" in DB
        assert ranked["Med"] == 0.0  # no "databases" in Med

    def test_empty_source_scores_zero(self):
        assert BGloss().score(["x"], summary(0, {})) == 0.0


class TestVGloss:
    def test_sum_uses_postings_mass(self, summaries):
        ranked = VGlossSum().rank(["databases"], summaries)
        assert ranked[0] == ("DB", 400.0)

    def test_max_prefers_concentrated_usage(self):
        spread = summary(100, {"databases": (100, 100)})  # 1 occurrence/doc
        dense = summary(100, {"databases": (100, 10)})  # 10 occurrences/doc
        score_spread = VGlossMax().score(["databases"], spread)
        score_dense = VGlossMax().score(["databases"], dense)
        assert score_spread > 0 and score_dense > 0
        # Max rewards the per-document density signal through avg tf.
        per_doc_dense = score_dense / 10
        per_doc_spread = score_spread / 100
        assert per_doc_dense > per_doc_spread

    def test_topical_source_wins(self, summaries):
        assert VGlossMax().select(["databases", "query"], summaries, 1) == ["DB"]
        assert VGlossMax().select(["patient", "diagnosis"], summaries, 1) == ["Med"]


class TestCori:
    def test_topical_source_wins(self, summaries):
        assert Cori().rank(["databases"], summaries)[0][0] == "DB"

    def test_discriminative_terms_matter(self, summaries):
        """"patient" appears in two sources, "diagnosis" in one: the
        unique term pulls Med ahead of Mixed."""
        ranked = Cori().rank(["patient", "diagnosis"], summaries)
        order = [source_id for source_id, _ in ranked]
        assert order.index("Med") < order.index("Mixed")

    def test_beliefs_bounded(self, summaries):
        for _, goodness in Cori().rank(["databases", "patient"], summaries):
            assert 0.0 <= goodness <= 1.0

    def test_empty_summaries(self):
        assert Cori().rank(["x"], {}) == []

    def test_score_alone_unsupported(self, summaries):
        with pytest.raises(NotImplementedError):
            Cori().score(["x"], summaries["DB"])


class TestBaselines:
    def test_select_all_is_indifferent(self, summaries):
        ranked = SelectAll().rank(["databases"], summaries)
        assert [goodness for _, goodness in ranked] == [1.0, 1.0, 1.0]

    def test_random_is_seeded(self, summaries):
        a = RandomSelector(seed=5).rank(["databases"], summaries)
        b = RandomSelector(seed=5).rank(["databases"], summaries)
        assert a == b

    def test_random_varies_across_queries(self, summaries):
        selector = RandomSelector(seed=5)
        orders = {
            tuple(s for s, _ in selector.rank([term], summaries))
            for term in ("alpha", "beta", "gamma", "delta", "epsilon")
        }
        assert len(orders) > 1

    def test_by_size(self):
        summaries = {"Small": summary(10, {}), "Big": summary(1000, {})}
        assert BySize().select(["anything"], summaries, 1) == ["Big"]


class TestCostAware:
    def test_expensive_source_demoted(self, summaries):
        plain = VGlossMax()
        costed = CostAware(plain, costs={"DB": 100.0}, tradeoff=1.0)
        assert plain.select(["databases"], summaries, 1) == ["DB"]
        assert costed.select(["databases"], summaries, 1) != ["DB"]

    def test_zero_cost_is_transparent(self, summaries):
        plain = VGlossMax().rank(["databases"], summaries)
        costed = CostAware(VGlossMax(), costs={}).rank(["databases"], summaries)
        assert [s for s, _ in plain] == [s for s, _ in costed]

    def test_name_reflects_inner(self):
        assert "vGlOSS-Max" in CostAware(VGlossMax(), {}).name


class TestDeterminism:
    def test_ties_break_on_source_id(self):
        tied = {"B": summary(10, {"x": (5, 5)}), "A": summary(10, {"x": (5, 5)})}
        ranked = VGlossSum().rank(["x"], tied)
        assert [source_id for source_id, _ in ranked] == ["A", "B"]
