"""Health scoring demonstrably changes federation behavior.

The ISSUE's acceptance scenario: inject faults into one source of a
healthy federation and watch the whole loop close — the score drops
below the threshold, the source is hedged immediately, deprioritized in
selection, and held down longer by the negative cache, all visible in
the metrics registry.  Plus the flip side: a disabled registry (and no
health scorer) leaves pipeline behavior byte-identical.
"""

import pytest

from repro.cache import CachePolicy
from repro.corpus import CollectionSpec, generate_collection
from repro.metasearch import Metasearcher
from repro.observability import MetricsRegistry, SourceHealth, set_registry
from repro.resource import Resource
from repro.starts import SQuery, parse_expression
from repro.transport import FaultProfile, SimulatedInternet, publish_resource
from repro.vendors import build_vendor_source

FAULTY = "Hf-Db"


def _federation(seed: int = 7):
    """A private three-vendor federation (fault injection would leak
    out of a shared session-scoped one)."""
    internet = SimulatedInternet(seed=seed)
    resource = Resource("HealthFederation")
    plans = [
        (FAULTY, "AcmeSearch", {"databases": 1.0}),
        ("Hf-Net", "OkapiWorks", {"networking": 1.0}),
        ("Hf-Med", "InferNet", {"medicine": 1.0}),
    ]
    for index, (source_id, vendor, topics) in enumerate(plans):
        documents = generate_collection(
            CollectionSpec(name=source_id, topics=topics, size=40, seed=200 + index)
        )
        resource.add_source(build_vendor_source(vendor, source_id, documents))
    url = "http://health.example.org"
    publish_resource(internet, resource, url)
    return internet, f"{url}/resource"


def _query(text: str) -> SQuery:
    return SQuery(
        ranking_expression=parse_expression(f'(body-of-text "{text}")'),
        max_number_documents=5,
    )


def _host(searcher: Metasearcher, source_id: str) -> str:
    url = searcher.discovery.source(source_id).query_url
    return url.split("//", 1)[-1].split("/", 1)[0]


class TestHealthLoop:
    def test_faulty_source_trips_the_whole_feedback_loop(self, fresh_registry):
        internet, resource_url = _federation()
        health = SourceHealth()
        searcher = Metasearcher(
            internet,
            [resource_url],
            health=health,
            # Three failed rounds before the negative cache kicks in, so
            # the scorer sees the source keep failing first.
            cache_policy=CachePolicy(negative_failure_threshold=3),
        )
        searcher.refresh()
        internet.set_fault_profile(
            _host(searcher, FAULTY), FaultProfile(failure_rate=1.0)
        )

        results = [
            searcher.search(_query(text), k_sources=3)
            for text in ("databases", "networking", "medicine", "protein")
        ]

        # 1. The score collapsed below the unhealthy threshold.
        assert health.score(FAULTY) < health.policy.unhealthy_below
        assert health.is_unhealthy(FAULTY)
        assert all(health.score(sid) > 0.9 for sid in ("Hf-Net", "Hf-Med"))

        # 2. Once unhealthy, the source was hedged immediately: a later
        # round carries a hedged duplicate attempt.
        hedged = [
            attempt
            for result in results
            for outcome in result.outcomes.values()
            if outcome.source_id == FAULTY
            for attempt in outcome.attempts
            if attempt.hedged
        ]
        assert hedged
        ((labels, hedges),) = fresh_registry.family("source_hedges_total").children()
        assert labels == (FAULTY,)
        assert hedges.value == len(hedged)

        # 3. Selection deprioritized it: sunk to the end of the round.
        assert results[-1].selected_sources[-1] == FAULTY

        # 4. The third failure negative-cached it with a *scaled* hold —
        # the gauge shows a TTL beyond the configured base.
        assert results[-1].skipped_sources() == [FAULTY]
        ((labels, ttl),) = fresh_registry.family("negative_cache_ttl_ms").children()
        assert labels == (FAULTY,)
        assert ttl.value > searcher.cache_policy.negative_ttl_ms
        assert ttl.value <= (
            searcher.cache_policy.negative_ttl_ms
            * health.policy.negative_ttl_max_scale
        )

        # 5. And the gauge agrees with the scorer.
        ((labels, gauge),) = [
            child
            for child in fresh_registry.family("source_health_score").children()
            if child[0] == (FAULTY,)
        ]
        assert gauge.value == pytest.approx(health.score(FAULTY))

    def test_healthy_federation_is_left_alone(self, fresh_registry):
        internet, resource_url = _federation()
        health = SourceHealth()
        searcher = Metasearcher(internet, [resource_url], health=health)
        searcher.refresh()
        result = searcher.search(_query("databases"), k_sources=3)
        assert result.failed_sources() == []
        assert all(not attempt.hedged
                   for outcome in result.outcomes.values()
                   for attempt in outcome.attempts)
        assert all(snap.score > 0.9 for snap in health.snapshot().values())


class TestDisabledRegistryNeutrality:
    @staticmethod
    def _run(registry: MetricsRegistry):
        internet, resource_url = _federation(seed=13)
        previous = set_registry(registry)
        try:
            searcher = Metasearcher(internet, [resource_url])
            searcher.refresh()
            result = searcher.search(_query("databases networking"), k_sources=3)
        finally:
            set_registry(previous)
        return result

    def test_disabled_registry_restores_pre_instrumentation_behavior(self):
        enabled = self._run(MetricsRegistry())
        disabled = self._run(MetricsRegistry.disabled())
        assert (
            [(d.linkage, d.score, d.source_id) for d in enabled.documents]
            == [(d.linkage, d.score, d.source_id) for d in disabled.documents]
        )
        assert enabled.selected_sources == disabled.selected_sources
        assert enabled.outcome_counts() == disabled.outcome_counts()
        # The simulated wire is seeded, so even latencies agree.
        assert enabled.query_latency_serial_ms == disabled.query_latency_serial_ms
