"""The term-sharded summary index: deltas, columns, corpus statistics."""

import pytest

from repro.metasearch.selection import BGloss, Cori, VGlossSum
from repro.metasearch.summary_index import SummaryIndex
from repro.observability.metrics import MetricsRegistry, get_registry, set_registry
from repro.starts.metadata import SContentSummary, SummaryEntryLine, SummarySection


def summary(num_docs, words, case_sensitive=False):
    """words: {word: (postings, df)}"""
    entries = tuple(
        SummaryEntryLine(word, postings, df) for word, (postings, df) in words.items()
    )
    return SContentSummary(
        num_docs=num_docs,
        case_sensitive=case_sensitive,
        sections=(SummarySection("body-of-text", "en", entries),),
    )


@pytest.fixture
def index():
    return SummaryIndex.from_summaries(
        {
            "DB": summary(100, {"databases": (400, 80), "query": (150, 60)}),
            "Mixed": summary(80, {"databases": (40, 20), "patient": (100, 50)}),
            "Med": summary(120, {"patient": (500, 90), "diagnosis": (200, 70)}),
        }
    )


class TestBuild:
    def test_sizes(self, index):
        assert len(index) == 3
        assert index.source_count == 3
        assert index.term_count == 4  # databases, query, patient, diagnosis
        assert "DB" in index and "Nope" not in index

    def test_source_columns(self, index):
        ordinal = dict(index.sorted_sources())["Med"]
        assert index.source_id(ordinal) == "Med"
        assert index.num_docs(ordinal) == 120
        assert index.clamped_word_mass(ordinal) == 700.0

    def test_term_columns(self, index):
        columns = index.term_columns("databases")
        assert len(columns) == 2
        by_source = {
            index.source_id(ordinal): (
                columns.document_frequencies[slot],
                columns.postings[slot],
            )
            for slot, ordinal in enumerate(columns.ordinals)
        }
        assert by_source == {"DB": (80, 400), "Mixed": (20, 40)}
        assert columns.positions == {
            ordinal: slot for slot, ordinal in enumerate(columns.ordinals)
        }

    def test_absent_term_is_empty(self, index):
        columns = index.term_columns("nonexistent")
        assert len(columns) == 0
        assert columns.collection_frequency == 0

    def test_collection_frequency(self, index):
        assert index.collection_frequency("databases") == 2
        assert index.collection_frequency("diagnosis") == 1

    def test_mean_clamped_word_mass_matches_dense(self, index):
        dense = [
            max(1.0, float(s.total_word_mass())) for s in index.summaries().values()
        ]
        assert index.mean_clamped_word_mass() == sum(dense) / len(dense)

    def test_summaries_roundtrip(self, index):
        assert set(index.summaries()) == {"DB", "Mixed", "Med"}
        assert index.summary("DB").num_docs == 100


class TestDeltas:
    def test_remove_drops_shards_and_cf(self, index):
        generation = index.generation
        assert index.remove("Med") is True
        assert index.generation > generation
        assert "Med" not in index
        # diagnosis lived only in Med: its shard is gone entirely.
        assert index.collection_frequency("diagnosis") == 0
        assert index.term_count == 3
        # patient survives in Mixed; CORI's cf decremented, not zeroed.
        assert index.collection_frequency("patient") == 1

    def test_remove_unknown_is_noop(self, index):
        generation = index.generation
        assert index.remove("Nope") is False
        assert index.generation == generation

    def test_reharvest_replaces(self, index):
        index.add("DB", summary(10, {"vldb": (5, 3)}))
        assert len(index) == 3
        assert index.collection_frequency("query") == 0
        assert index.collection_frequency("vldb") == 1
        assert index.num_docs(dict(index.sorted_sources())["DB"]) == 10

    def test_ordinal_recycling(self, index):
        victim = dict(index.sorted_sources())["DB"]
        index.remove("DB")
        index.add("New", summary(5, {"fresh": (2, 1)}))
        assert dict(index.sorted_sources())["New"] == victim

    def test_delta_stream_matches_rebuild(self, index):
        index.remove("Mixed")
        index.add("DB", summary(60, {"databases": (90, 30)}))
        index.add("Extra", summary(40, {"query": (10, 5)}))
        rebuilt = SummaryIndex.from_summaries(index.summaries())
        for selector in (BGloss(), VGlossSum(), Cori()):
            assert selector.rank(["databases", "query"], index) == selector.rank(
                ["databases", "query"], rebuilt
            )
        assert index.mean_clamped_word_mass() == rebuilt.mean_clamped_word_mass()

    def test_update_none_removes(self, index):
        index.update("Med", None)
        assert "Med" not in index
        index.update("Med", summary(7, {"patient": (3, 2)}))
        assert index.collection_frequency("patient") == 2


class TestCaseSensitivity:
    def test_mixed_case_term_honours_per_summary_rule(self):
        index = SummaryIndex.from_summaries(
            {
                "Insensitive": summary(10, {"unix": (8, 4)}),
                "Sensitive": summary(10, {"Unix": (6, 3)}, case_sensitive=True),
            }
        )
        # Lowercase probe: matches the insensitive source only — the
        # sensitive one holds the capitalized spelling.
        lower = index.term_columns("unix")
        assert {index.source_id(o) for o in lower.ordinals} == {"Insensitive"}
        # Capitalized probe: sensitive source via the raw key, the
        # insensitive one via its lowered key.
        upper = index.term_columns("Unix")
        assert {index.source_id(o) for o in upper.ordinals} == {
            "Insensitive",
            "Sensitive",
        }
        assert upper.collection_frequency == 2


class TestGauges:
    def test_bump_sets_gauges(self, index):
        previous = get_registry()
        set_registry(MetricsRegistry())
        try:
            index.add("Extra", summary(3, {"word": (2, 1)}))

            def gauge_value(name):
                [(_, child)] = get_registry().family(name).children()
                return child.value

            assert gauge_value("summary_index_sources") == 4.0
            assert gauge_value("summary_index_terms") == 5.0
        finally:
            set_registry(previous)

    def test_disabled_registry_is_accepted(self, index):
        previous = get_registry()
        set_registry(MetricsRegistry.disabled())
        try:
            index.add("Quiet", summary(3, {"word": (2, 1)}))
            assert "Quiet" in index
        finally:
            set_registry(previous)
