"""The cached metasearch path: hits off the wire, stale-while-revalidate,
negative caching of dead sources, and invalidation on forget()."""

import pytest

from repro.cache import CachePolicy, QueryResultCache
from repro.corpus import source1_documents, source2_documents
from repro.metasearch import Metasearcher
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import FaultProfile, SimulatedInternet, publish_resource


def ranking_query(*terms: str) -> SQuery:
    items = " ".join(f'(body-of-text "{term}")' for term in terms)
    return SQuery(ranking_expression=parse_expression(f"list({items})"))


@pytest.fixture
def searcher(small_federation):
    internet, resource_url, _ = small_federation
    searcher = Metasearcher(internet, [resource_url])
    searcher.refresh()
    return internet, searcher


class TestResultCacheHits:
    def test_repeat_query_is_served_without_wire_traffic(self, searcher):
        internet, searcher = searcher
        query = ranking_query("databases")
        first = searcher.search(query)
        assert first.cache_status is None

        requests_before = internet.request_count()
        second = searcher.search(query)
        assert second.cache_status == "hit"
        assert internet.request_count() == requests_before
        assert second.linkages() == first.linkages()
        assert second.outcome_counts() == first.outcome_counts()

    def test_equivalent_spelling_shares_the_cached_answer(self, searcher):
        internet, searcher = searcher
        searcher.search(ranking_query("databases", "relational"))
        requests_before = internet.request_count()
        flipped = searcher.search(ranking_query("relational", "databases"))
        assert flipped.cache_status == "hit"
        assert internet.request_count() == requests_before

    def test_hit_is_visible_in_trace_and_counters(self, searcher):
        _, searcher = searcher
        query = ranking_query("databases")
        searcher.search(query)
        result = searcher.search(query)
        assert result.trace.cache is not None
        assert result.trace.cache.hits == 1
        rendered = result.explain_trace()
        assert "result cache: hit" in rendered
        assert "cache counters:" in rendered
        assert searcher.result_cache.stats.hits == 1

    def test_served_copies_do_not_share_mutable_state(self, searcher):
        _, searcher = searcher
        query = ranking_query("databases")
        first = searcher.search(query)
        expected = list(first.linkages())
        first.documents.clear()
        first.per_source_results.clear()
        second = searcher.search(query)
        assert second.cache_status == "hit"
        assert second.linkages() == expected

    def test_different_k_sources_do_not_collide(self, searcher):
        _, searcher = searcher
        query = ranking_query("databases")
        wide = searcher.search(query, k_sources=3)
        narrow = searcher.search(query, k_sources=1)
        # Different source sets -> different keys -> both were misses.
        assert narrow.cache_status is None
        assert set(narrow.selected_sources) != set(wide.selected_sources)


class TestDisabledPolicy:
    def test_disabled_means_no_caching_anywhere(self, small_federation):
        internet, resource_url, _ = small_federation
        searcher = Metasearcher(
            internet, [resource_url], cache_policy=CachePolicy.disabled()
        )
        searcher.refresh()
        assert searcher.result_cache is None
        assert searcher.negative_cache is None
        assert searcher.discovery.ttl_policy is None

        query = ranking_query("databases")
        first = searcher.search(query)
        requests_after_first = internet.request_count()
        second = searcher.search(query)
        assert internet.request_count() > requests_after_first  # wire paid again
        assert first.cache_status is None and second.cache_status is None
        # The trace renders exactly as the uncached pipeline always did.
        assert second.trace.cache is None
        assert "cache" not in second.explain_trace()


class TestStaleWhileRevalidate:
    def test_stale_entry_is_served_then_refreshed(self, searcher):
        internet, searcher = searcher
        clock = {"now": 0.0}
        searcher.result_cache = QueryResultCache(
            ttl_ms=100.0, stale_grace_ms=1000.0, clock=lambda: clock["now"]
        )
        query = ranking_query("databases")
        first = searcher.search(query)

        clock["now"] = 500.0  # past the TTL, inside the grace window
        requests_before = internet.request_count()
        stale = searcher.search(query)
        assert stale.cache_status == "stale"
        assert stale.linkages() == first.linkages()
        # The serial executor revalidates inline: the refresh already
        # paid the wire and re-stored the entry.
        assert internet.request_count() > requests_before
        assert searcher.result_cache.stats.stores == 2

        requests_after_refresh = internet.request_count()
        refreshed = searcher.search(query)
        assert refreshed.cache_status == "hit"
        assert internet.request_count() == requests_after_refresh

    def test_stale_serve_is_counted(self, searcher):
        _, searcher = searcher
        clock = {"now": 0.0}
        searcher.result_cache = QueryResultCache(
            ttl_ms=100.0, stale_grace_ms=1000.0, clock=lambda: clock["now"]
        )
        query = ranking_query("databases")
        searcher.search(query)
        clock["now"] = 500.0
        stale = searcher.search(query)
        assert stale.trace.cache.stale_hits == 1
        assert "result cache: stale" in stale.explain_trace()


class TestNegativeCaching:
    @pytest.fixture
    def world_with_dead_source(self):
        internet = SimulatedInternet(seed=5)
        resource = Resource(
            "Mixed",
            [
                StartsSource(
                    "Alive", source1_documents(), base_url="http://alive.org/s"
                ),
                StartsSource(
                    "Doomed", source2_documents(), base_url="http://doomed.org/s"
                ),
            ],
        )
        publish_resource(internet, resource, "http://mixed.org")
        searcher = Metasearcher(internet, ["http://mixed.org/resource"])
        searcher.refresh()
        # The host dies after discovery, so the query round meets it.
        internet.set_fault_profile("doomed.org", FaultProfile.dead())
        return internet, searcher

    def test_failed_source_is_skipped_on_the_next_search(
        self, world_with_dead_source
    ):
        internet, searcher = world_with_dead_source
        first = searcher.search(ranking_query("databases"), k_sources=2)
        assert "Doomed" in first.failed_sources()

        # A different query, same selection: the dead source is now
        # negative-cached and never probed.
        log_size = len(internet.log)
        second = searcher.search(ranking_query("stanford"), k_sources=2)
        assert "Doomed" in second.skipped_sources()
        assert "negative-cached" in second.outcomes["Doomed"].skip_reason
        doomed_requests = [
            record
            for record in internet.log[log_size:]
            if "doomed.org" in record.url
        ]
        assert doomed_requests == []
        assert second.trace.cache.negative_skips == 1

    def test_recovery_clears_the_negative_entry(self, world_with_dead_source):
        internet, searcher = world_with_dead_source
        searcher.search(ranking_query("databases"), k_sources=2)
        assert len(searcher.negative_cache) == 1

        internet.set_fault_profile("doomed.org", FaultProfile())  # host heals
        searcher.negative_cache.forget("Doomed")  # operator resets the hold
        result = searcher.search(ranking_query("stanford"), k_sources=2)
        assert "Doomed" in result.ok_sources()
        assert len(searcher.negative_cache) == 0


class TestInvalidation:
    def test_forget_purges_cached_results_for_that_source(self, searcher):
        _, searcher = searcher
        searcher.search(ranking_query("databases"))
        assert len(searcher.result_cache) == 1
        victim = searcher.discovery.known_sources()[0].source_id
        searcher.discovery.forget(victim)
        assert len(searcher.result_cache) == 0

    def test_forgetting_an_uninvolved_source_keeps_the_entry(self, searcher):
        _, searcher = searcher
        result = searcher.search(ranking_query("databases"), k_sources=1)
        uninvolved = [
            known.source_id
            for known in searcher.discovery.known_sources()
            if known.source_id not in result.selected_sources
        ]
        searcher.discovery.forget(uninvolved[0])
        assert len(searcher.result_cache) == 1
