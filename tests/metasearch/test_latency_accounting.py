"""Serial vs parallel latency accounting on metasearch results."""

import pytest

from repro.corpus import source1_documents, source2_documents
from repro.metasearch import Metasearcher, SelectAll
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import HostProfile, SimulatedInternet, publish_resource


@pytest.fixture
def world():
    internet = SimulatedInternet(seed=10)
    resource = Resource(
        "World",
        [
            StartsSource("Fast", source1_documents(), base_url="http://fast.org/s"),
            StartsSource("Slow", source2_documents(), base_url="http://slow.org/s"),
        ],
    )
    publish_resource(
        internet,
        resource,
        "http://world.org",
        source_profiles={
            "Fast": HostProfile(latency_ms=10.0, jitter_ms=0.0),
            "Slow": HostProfile(latency_ms=400.0, jitter_ms=0.0),
        },
    )
    searcher = Metasearcher(internet, ["http://world.org/resource"])
    searcher.refresh()
    return searcher


def query():
    return SQuery(
        ranking_expression=parse_expression('list((body-of-text "databases"))')
    )


class TestLatencyAccounting:
    def test_serial_is_sum_parallel_is_max(self, world):
        result = world.search(query(), k_sources=2, selector=SelectAll())
        assert result.query_latency_serial_ms == pytest.approx(410.0)
        assert result.query_latency_parallel_ms == pytest.approx(400.0)

    def test_single_source_degenerate(self, world):
        result = world.search(query(), k_sources=1, selector=SelectAll())
        assert result.query_latency_serial_ms == result.query_latency_parallel_ms

    def test_no_queries_zero_latency(self, world):
        """A query nothing survives at produces zero query latency."""
        from repro.corpus import source1_documents
        from repro.source import SourceCapabilities

        internet = SimulatedInternet()
        resource = Resource(
            "R",
            [
                StartsSource(
                    "FOnly",
                    source1_documents(),
                    capabilities=SourceCapabilities(query_parts="F"),
                )
            ],
        )
        publish_resource(internet, resource, "http://r.org")
        searcher = Metasearcher(internet, ["http://r.org/resource"])
        searcher.refresh()
        result = searcher.search(query(), k_sources=1)
        assert result.query_latency_serial_ms == 0.0
        assert result.query_latency_parallel_ms == 0.0
