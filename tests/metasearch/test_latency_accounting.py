"""Serial vs parallel latency accounting on metasearch results."""

import pytest

from repro.corpus import source1_documents, source2_documents
from repro.federation import QueryPolicy
from repro.metasearch import Metasearcher, SelectAll
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import (
    FaultProfile,
    HostProfile,
    SimulatedInternet,
    publish_resource,
)


@pytest.fixture
def world():
    internet = SimulatedInternet(seed=10)
    resource = Resource(
        "World",
        [
            StartsSource("Fast", source1_documents(), base_url="http://fast.org/s"),
            StartsSource("Slow", source2_documents(), base_url="http://slow.org/s"),
        ],
    )
    publish_resource(
        internet,
        resource,
        "http://world.org",
        source_profiles={
            "Fast": HostProfile(latency_ms=10.0, jitter_ms=0.0),
            "Slow": HostProfile(latency_ms=400.0, jitter_ms=0.0),
        },
    )
    searcher = Metasearcher(internet, ["http://world.org/resource"])
    searcher.refresh()
    return searcher


def query():
    return SQuery(
        ranking_expression=parse_expression('list((body-of-text "databases"))')
    )


class TestLatencyAccounting:
    def test_serial_is_sum_parallel_is_max(self, world):
        result = world.search(query(), k_sources=2, selector=SelectAll())
        assert result.query_latency_serial_ms == pytest.approx(410.0)
        assert result.query_latency_parallel_ms == pytest.approx(400.0)

    def test_single_source_degenerate(self, world):
        result = world.search(query(), k_sources=1, selector=SelectAll())
        assert result.query_latency_serial_ms == result.query_latency_parallel_ms

    def test_no_queries_zero_latency(self, world):
        """A query nothing survives at produces zero query latency."""
        from repro.corpus import source1_documents
        from repro.source import SourceCapabilities

        internet = SimulatedInternet()
        resource = Resource(
            "R",
            [
                StartsSource(
                    "FOnly",
                    source1_documents(),
                    capabilities=SourceCapabilities(query_parts="F"),
                )
            ],
        )
        publish_resource(internet, resource, "http://r.org")
        searcher = Metasearcher(internet, ["http://r.org/resource"])
        searcher.refresh()
        result = searcher.search(query(), k_sources=1)
        assert result.query_latency_serial_ms == 0.0
        assert result.query_latency_parallel_ms == 0.0


class TestGroupedLatency:
    """With group_by_resource, the parallel figure is the max over
    groups of the *sum within each group* — a group whose entry source
    retried pays all of its attempts and backoff waits sequentially."""

    @pytest.fixture
    def grouped_world(self):
        internet = SimulatedInternet(seed=12)
        resource_a = Resource(
            "GroupA",
            [
                StartsSource(
                    "R1A", source1_documents(), base_url="http://r1a.org/s"
                ),
                StartsSource(
                    "R1B", source2_documents(), base_url="http://r1b.org/s"
                ),
            ],
        )
        resource_b = Resource(
            "GroupB",
            [StartsSource("R2A", source1_documents(), base_url="http://r2a.org/s")],
        )
        publish_resource(
            internet,
            resource_a,
            "http://groupa.org",
            source_profiles={
                "R1A": HostProfile(latency_ms=80.0, jitter_ms=0.0),
                "R1B": HostProfile(latency_ms=80.0, jitter_ms=0.0),
            },
        )
        publish_resource(
            internet,
            resource_b,
            "http://groupb.org",
            source_profiles={"R2A": HostProfile(latency_ms=100.0, jitter_ms=0.0)},
        )
        searcher = Metasearcher(
            internet,
            ["http://groupa.org/resource", "http://groupb.org/resource"],
            query_policy=QueryPolicy(max_retries=1, backoff_base_ms=5.0),
        )
        searcher.refresh()
        return internet, searcher

    def test_parallel_is_max_over_groups_of_sums(self, grouped_world):
        internet, searcher = grouped_world
        # Group A's entry source fails once, succeeds on retry:
        # its group occupies 80 (fail) + 5 (backoff) + 80 (ok) = 165 ms.
        internet.set_fault_profile("r1a.org", FaultProfile.flaky(1))

        result = searcher.search(
            query(), k_sources=3, selector=SelectAll(), group_by_resource=True
        )

        # One outcome per routed group: R1A carries R1B as sibling.
        assert set(result.outcomes) == {"R1A", "R2A"}
        assert result.outcomes["R1A"].sibling_ids == ("R1B",)
        assert result.outcomes["R1A"].elapsed_ms == pytest.approx(165.0)
        assert result.outcomes["R2A"].elapsed_ms == pytest.approx(100.0)
        # A flat max over individual requests would wrongly report 100.
        assert result.query_latency_parallel_ms == pytest.approx(165.0)
        assert result.query_latency_serial_ms == pytest.approx(265.0)
