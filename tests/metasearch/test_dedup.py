"""Cross-source near-duplicate collapsing."""

import pytest

from repro.metasearch.dedup import collapse_near_duplicates, jaccard, word_shingles
from repro.metasearch.merging import MergedDocument
from repro.starts.results import SQRDocument


def merged(linkage, score, source, title, body=""):
    fields = {"title": title}
    if body:
        fields["body-of-text"] = body
    return MergedDocument(
        linkage,
        score,
        source,
        SQRDocument(linkage=linkage, raw_score=score, sources=(source,), fields=fields),
    )


class TestShingles:
    def test_two_word_shingles(self):
        assert word_shingles("a b c") == {("a", "b"), ("b", "c")}

    def test_short_text(self):
        assert word_shingles("single") == {("single",)}

    def test_empty(self):
        assert word_shingles("") == frozenset()

    def test_case_folded(self):
        assert word_shingles("Alpha Beta") == word_shingles("alpha beta")


class TestJaccard:
    def test_identical(self):
        s = word_shingles("a b c d")
        assert jaccard(s, s) == 1.0

    def test_disjoint(self):
        assert jaccard(word_shingles("a b"), word_shingles("x y")) == 0.0

    def test_empty_is_zero(self):
        assert jaccard(frozenset(), frozenset()) == 0.0


class TestCollapse:
    def test_mirror_collapses(self):
        documents = [
            merged("http://a.org/p.ps", 0.9, "A", "Deductive Database Systems Compared"),
            merged("http://mirror.org/p.ps", 0.5, "B", "Deductive Database Systems Compared"),
        ]
        kept = collapse_near_duplicates(documents)
        assert [m.linkage for m in kept] == ["http://a.org/p.ps"]

    def test_distinct_titles_survive(self):
        documents = [
            merged("http://a/1", 0.9, "A", "Deductive Database Systems"),
            merged("http://b/2", 0.5, "B", "Congestion Control in Packet Networks"),
        ]
        assert len(collapse_near_duplicates(documents)) == 2

    def test_rank_order_preserved(self):
        documents = [
            merged("http://a/1", 0.9, "A", "First Title Entirely Different"),
            merged("http://b/2", 0.7, "B", "Second Title Also Quite Unique"),
            merged("http://c/3", 0.5, "C", "First Title Entirely Different"),
        ]
        kept = collapse_near_duplicates(documents)
        assert [m.linkage for m in kept] == ["http://a/1", "http://b/2"]

    def test_threshold_controls_aggressiveness(self):
        documents = [
            merged("http://a/1", 0.9, "A", "distributed database systems overview"),
            merged("http://b/2", 0.5, "B", "distributed database systems surveyed"),
        ]
        strict = collapse_near_duplicates(documents, threshold=0.95)
        loose = collapse_near_duplicates(documents, threshold=0.4)
        assert len(strict) == 2
        assert len(loose) == 1

    def test_documents_without_text_never_collapse(self):
        documents = [
            merged("http://a/1", 0.9, "A", ""),
            merged("http://b/2", 0.5, "B", ""),
        ]
        assert len(collapse_near_duplicates(documents)) == 2

    def test_body_field_used_when_present(self):
        documents = [
            merged("http://a/1", 0.9, "A", "Short", "same body text across mirrors ok"),
            merged("http://b/2", 0.5, "B", "Short", "same body text across mirrors ok"),
        ]
        kept = collapse_near_duplicates(documents, threshold=0.8)
        assert len(kept) == 1

    def test_input_untouched(self):
        documents = [
            merged("http://a/1", 0.9, "A", "Same Exact Title Here"),
            merged("http://b/2", 0.5, "B", "Same Exact Title Here"),
        ]
        collapse_near_duplicates(documents)
        assert len(documents) == 2
