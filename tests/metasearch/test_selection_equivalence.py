"""Indexed selection is a bit-exact twin of the dense scan.

Every selector runs twice over the same randomized summary sets — once
``backend="indexed"`` (sparse, over a :class:`SummaryIndex`), once
``backend="dense"`` (the original dict scan, the oracle) — and must
produce the *same floats in the same order*, ties included.  The same
holds after arbitrary add / re-harvest / remove delta streams.
"""

from hypothesis import given, settings, strategies as st

from repro.metasearch.selection import (
    BGloss,
    BySize,
    Cori,
    CostAware,
    RandomSelector,
    SelectAll,
    VGlossMax,
    VGlossSum,
)
from repro.metasearch.summary_index import SummaryIndex
from repro.starts.metadata import SContentSummary, SummaryEntryLine, SummarySection

WORD_POOL = ["alpha", "beta", "Gamma", "delta", "epsilon", "Zeta"]
QUERY_POOL = WORD_POOL + ["absent", "Missing"]


def _selectors():
    return [
        BGloss(),
        VGlossSum(),
        VGlossMax(),
        Cori(),
        SelectAll(),
        BySize(),
        RandomSelector(seed=3),
        CostAware(Cori(), {"S0": 0.4, "S2": 1.5}, tradeoff=0.8),
    ]


def _dense_twin(selector):
    if isinstance(selector, CostAware):
        return CostAware(
            Cori(backend="dense"), {"S0": 0.4, "S2": 1.5}, tradeoff=0.8
        )
    if isinstance(selector, RandomSelector):
        return RandomSelector(seed=3, backend="dense")
    return type(selector)(backend="dense")


@st.composite
def summary_sets(draw):
    n_sources = draw(st.integers(0, 8))
    summaries = {}
    for s in range(n_sources):
        n_words = draw(st.integers(0, len(WORD_POOL)))
        words = draw(
            st.lists(
                st.sampled_from(WORD_POOL),
                min_size=n_words,
                max_size=n_words,
                unique=True,
            )
        )
        entries = tuple(
            SummaryEntryLine(
                word,
                draw(st.integers(-1, 30)),
                draw(st.integers(-1, 25)),
            )
            for word in words
        )
        summaries[f"S{s}"] = SContentSummary(
            num_docs=draw(st.sampled_from([0, 1, 5, 40, 300])),
            case_sensitive=draw(st.booleans()),
            sections=(SummarySection("body-of-text", "en", entries),),
        )
    return summaries


@st.composite
def queries(draw):
    n_terms = draw(st.integers(0, 4))
    return draw(
        st.lists(
            st.sampled_from(QUERY_POOL), min_size=n_terms, max_size=n_terms
        )
    )


@settings(max_examples=120, deadline=None)
@given(summaries=summary_sets(), terms=queries(), k=st.integers(0, 10))
def test_indexed_equals_dense(summaries, terms, k):
    index = SummaryIndex.from_summaries(summaries)
    for selector in _selectors():
        dense = _dense_twin(selector)
        # Same scores, same order, same floats — not approx.
        assert selector.rank(terms, index) == dense.rank(terms, summaries)
        assert selector.select(terms, index, k) == dense.select(terms, summaries, k)


@settings(max_examples=60, deadline=None)
@given(
    initial=summary_sets(),
    replacement=summary_sets(),
    terms=queries(),
    data=st.data(),
)
def test_equivalence_survives_delta_streams(initial, replacement, terms, data):
    """add → re-harvest → remove deltas leave the index equal to both a
    from-scratch rebuild and the dense oracle over the same dict."""
    index = SummaryIndex.from_summaries(initial)
    live = dict(initial)
    # Replace a few sources (re-harvest) with summaries from the second
    # set, then forget a few.
    for source_id, summary in replacement.items():
        if data.draw(st.booleans(), label=f"replace {source_id}"):
            index.add(source_id, summary)
            live[source_id] = summary
    for source_id in list(live):
        if data.draw(st.booleans(), label=f"forget {source_id}"):
            index.remove(source_id)
            del live[source_id]

    assert index.summaries() == live
    rebuilt = SummaryIndex.from_summaries(live)
    for selector in _selectors():
        dense = _dense_twin(selector)
        ranked = selector.rank(terms, index)
        assert ranked == selector.rank(terms, rebuilt)
        assert ranked == dense.rank(terms, live)
        assert selector.select(terms, index, 3) == dense.select(terms, live, 3)


class TestTieDeterminism:
    """Satellite: tied goodness must order by source id on both paths."""

    def _tied_summaries(self):
        entries = (
            SummaryEntryLine("alpha", 12, 6),
            SummaryEntryLine("beta", 4, 2),
        )
        clone = SContentSummary(
            num_docs=50,
            sections=(SummarySection("body-of-text", "en", entries),),
        )
        return {source_id: clone for source_id in ("S3", "S0", "S2", "S1")}

    def test_cori_rank_pins_tied_order(self):
        summaries = self._tied_summaries()
        index = SummaryIndex.from_summaries(summaries)
        indexed = Cori().rank(["alpha", "beta"], index)
        dense = Cori(backend="dense").rank(["alpha", "beta"], summaries)
        assert indexed == dense
        # All four sources are identical, so every goodness ties and the
        # order must fall back to lexicographic source id.
        assert [source_id for source_id, _ in indexed] == ["S0", "S1", "S2", "S3"]
        assert len({goodness for _, goodness in indexed}) == 1

    def test_cost_aware_rank_pins_tied_order(self):
        summaries = self._tied_summaries()
        index = SummaryIndex.from_summaries(summaries)
        costs = {"S1": 0.5, "S2": 0.5}  # S1/S2 tie below the S0/S3 tie
        indexed = CostAware(Cori(), costs).rank(["alpha"], index)
        dense = CostAware(Cori(backend="dense"), costs).rank(["alpha"], summaries)
        assert indexed == dense
        assert [source_id for source_id, _ in indexed] == ["S0", "S3", "S1", "S2"]

    def test_select_honours_tied_order(self):
        summaries = self._tied_summaries()
        index = SummaryIndex.from_summaries(summaries)
        assert Cori().select(["alpha"], index, 2) == ["S0", "S1"]
        assert CostAware(Cori(), {}).select(["alpha"], index, 3) == [
            "S0",
            "S1",
            "S2",
        ]


class TestEdgeCases:
    """Satellite: degenerate inputs behave identically on both paths."""

    def _summaries(self):
        return {
            "Empty": SContentSummary(
                num_docs=0,
                sections=(SummarySection("body-of-text", "en", ()),),
            ),
            "Full": SContentSummary(
                num_docs=30,
                sections=(
                    SummarySection(
                        "body-of-text",
                        "en",
                        (SummaryEntryLine("alpha", 10, 5),),
                    ),
                ),
            ),
        }

    def test_empty_term_list(self):
        summaries = self._summaries()
        index = SummaryIndex.from_summaries(summaries)
        for selector in _selectors():
            assert selector.rank([], index) == _dense_twin(selector).rank(
                [], summaries
            )

    def test_terms_absent_from_every_source(self):
        summaries = self._summaries()
        index = SummaryIndex.from_summaries(summaries)
        terms = ["nowhere", "tobefound"]
        for selector in _selectors():
            assert selector.rank(terms, index) == _dense_twin(selector).rank(
                terms, summaries
            )
        # BGloss: no source can match a conjunctive query with an
        # unknown term; everything scores zero.
        assert all(g == 0.0 for _, g in BGloss().rank(terms, index))

    def test_source_with_zero_docs(self):
        summaries = self._summaries()
        index = SummaryIndex.from_summaries(summaries)
        ranked = dict(BGloss().rank(["alpha"], index))
        assert ranked["Empty"] == 0.0
        assert ranked["Full"] > 0.0
        cori = dict(Cori().rank(["alpha"], index))
        assert cori == dict(Cori(backend="dense").rank(["alpha"], summaries))


class TestDiscoveryMaintenance:
    """The discovery service keeps its index coherent with summaries()."""

    def test_harvest_populates_index(self, small_federation):
        from repro.metasearch.discovery import DiscoveryService
        from repro.transport import StartsClient

        internet, resource_url, _ = small_federation
        discovery = DiscoveryService(StartsClient(internet))
        discovery.refresh_resource(resource_url)
        index = discovery.summary_index()
        assert set(index.source_ids()) == set(discovery.summaries())
        assert index.summaries() == discovery.summaries()

    def test_forget_mid_stream_drops_source_and_decrements_cf(
        self, small_federation
    ):
        from repro.metasearch.discovery import DiscoveryService
        from repro.transport import StartsClient

        internet, resource_url, _ = small_federation
        discovery = DiscoveryService(StartsClient(internet))
        discovery.refresh_resource(resource_url)
        index = discovery.summary_index()
        # Pick a word the DB source contributes, then forget the source
        # mid-stream: the index sheds it and CORI's cf decrements.
        word = next(
            entry.word.lower()
            for entry in discovery.summaries()["Fed-DB"].sections[0].entries
        )
        cf_before = index.collection_frequency(word)
        assert cf_before >= 1
        discovery.forget("Fed-DB")
        assert "Fed-DB" not in index
        assert index.collection_frequency(word) == cf_before - 1
        assert index.summaries() == discovery.summaries()
        # Selection over the post-forget index matches the dense oracle
        # over the post-forget summaries.
        assert Cori().rank([word], index) == Cori(backend="dense").rank(
            [word], discovery.summaries()
        )
