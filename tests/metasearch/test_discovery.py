"""Metadata harvesting: resource → sources, caching, expiry."""

import pytest

from repro.cache import SummaryTtlPolicy
from repro.metasearch.discovery import DiscoveryService, KnownSource
from repro.starts import SMetaAttributes
from repro.transport import SimulatedInternet, StartsClient


@pytest.fixture
def service(small_federation):
    internet, resource_url, _ = small_federation
    return DiscoveryService(StartsClient(internet)), resource_url, internet


class TestHarvesting:
    def test_refresh_discovers_all_sources(self, service):
        discovery, url, _ = service
        harvested = discovery.refresh_resource(url)
        assert sorted(s.source_id for s in harvested) == [
            "Fed-DB",
            "Fed-Med",
            "Fed-Net",
        ]

    def test_metadata_and_summary_fetched(self, service):
        discovery, url, _ = service
        discovery.refresh_resource(url)
        known = discovery.source("Fed-DB")
        assert known.metadata.source_id == "Fed-DB"
        assert known.summary is not None
        assert known.summary.num_docs == 40
        assert known.sample_results is not None

    def test_query_url_from_metadata(self, service):
        discovery, url, _ = service
        discovery.refresh_resource(url)
        assert discovery.source("Fed-DB").query_url.endswith("/query")

    def test_summaries_view(self, service):
        discovery, url, _ = service
        discovery.refresh_resource(url)
        assert set(discovery.summaries()) == {"Fed-DB", "Fed-Med", "Fed-Net"}


class TestCaching:
    def test_second_refresh_reuses_cache(self, service):
        discovery, url, internet = service
        discovery.refresh_resource(url)
        count_after_first = internet.request_count()
        discovery.refresh_resource(url)
        # Only the resource blob is re-fetched; sources are cached.
        assert internet.request_count() == count_after_first + 1

    def test_forget_forces_refetch(self, service):
        discovery, url, internet = service
        discovery.refresh_resource(url)
        discovery.forget("Fed-DB")
        count_before = internet.request_count()
        discovery.refresh_resource(url)
        assert internet.request_count() > count_before + 1

    def test_forget_purges_every_cached_artifact(self, service):
        """forget() drops the summary, sample results, harvest date and
        unreachable marker — not just the source entry."""
        discovery, url, _ = service
        discovery.refresh_resource(url)
        known = discovery.source("Fed-DB")
        assert known.summary is not None
        discovery.unreachable["Fed-DB"] = "http://stale-marker"

        discovery.forget("Fed-DB")

        with pytest.raises(KeyError):
            discovery.source("Fed-DB")
        assert known.summary is None  # heavyweight references severed
        assert known.sample_results is None
        assert "Fed-DB" not in discovery.fetched_on
        assert "Fed-DB" not in discovery.unreachable

    def test_forget_fires_purge_hooks(self, service):
        discovery, url, _ = service
        discovery.refresh_resource(url)
        purged: list[str] = []
        discovery.add_purge_hook(purged.append)
        discovery.forget("Fed-DB")
        discovery.forget("never-known")  # still purges derived caches
        assert purged == ["Fed-DB", "never-known"]

    def test_refresh_records_harvest_dates(self, service):
        discovery, url, _ = service
        discovery.refresh_resource(url)
        assert discovery.fetched_on["Fed-DB"] == discovery.clock


class TestExpiry:
    def test_expired_metadata_refetched(self, small_federation):
        internet, url, resource = small_federation
        # Make one source advertise an already-past expiry date.
        resource.source("Fed-DB").date_changed = "1996-01-01"
        source = resource.source("Fed-DB")
        original_metadata = source.metadata

        def expiring_metadata():
            metadata = original_metadata()
            from dataclasses import replace

            return replace(metadata, date_expires="1996-06-01")

        source.metadata = expiring_metadata
        try:
            discovery = DiscoveryService(StartsClient(internet), clock="1996-08-01")
            discovery.refresh_resource(url)
            count = internet.request_count()
            discovery.refresh_resource(url)
            # Fed-DB was stale: its blobs were re-fetched.
            assert internet.request_count() > count + 1
        finally:
            source.metadata = original_metadata

    def test_stale_reharvest_fires_purge_hooks(self, small_federation):
        """A re-harvest replaces a source's knowledge: derived caches
        must hear about it just like on forget()."""
        internet, url, resource = small_federation
        source = resource.source("Fed-DB")
        original_metadata = source.metadata

        def expiring_metadata():
            from dataclasses import replace

            return replace(original_metadata(), date_expires="1996-06-01")

        source.metadata = expiring_metadata
        try:
            discovery = DiscoveryService(StartsClient(internet), clock="1996-08-01")
            discovery.refresh_resource(url)
            purged: list[str] = []
            discovery.add_purge_hook(purged.append)
            discovery.refresh_resource(url)
            assert purged == ["Fed-DB"]
        finally:
            source.metadata = original_metadata


class TestTtlPolicyStaleness:
    """`_is_stale` edge cases under the heuristic TTL policy."""

    def make_service(self, clock="1996-08-01", **policy_kwargs) -> DiscoveryService:
        return DiscoveryService(
            StartsClient(SimulatedInternet()),
            clock=clock,
            ttl_policy=SummaryTtlPolicy(**policy_kwargs),
        )

    def known(self, **metadata_kwargs) -> KnownSource:
        return KnownSource("s1", SMetaAttributes(source_id="s1", **metadata_kwargs))

    def test_missing_date_changed_never_goes_stale(self):
        service = self.make_service(clock="2020-01-01")
        service.fetched_on["s1"] = "1996-08-01"
        assert not service._is_stale(self.known())

    def test_date_changed_drives_heuristic_expiry(self):
        service = self.make_service(clock="1996-08-30")
        service.fetched_on["s1"] = "1996-08-01"
        # ~213 days old at harvest -> 21-day TTL -> stale by Aug 30.
        assert service._is_stale(self.known(date_changed="1996-01-01"))
        service.clock = "1996-08-20"
        assert not service._is_stale(self.known(date_changed="1996-01-01"))

    def test_future_date_changed_is_min_ttl_not_forever(self):
        service = self.make_service(clock="1996-08-05", min_ttl_days=1)
        service.fetched_on["s1"] = "1996-08-01"
        assert service._is_stale(self.known(date_changed="1999-01-01"))

    def test_zero_min_ttl_goes_stale_next_day(self):
        service = self.make_service(
            clock="1996-08-02", heuristic_fraction=0.0, min_ttl_days=0
        )
        service.fetched_on["s1"] = "1996-08-01"
        assert service._is_stale(self.known(date_changed="1996-07-31"))
        service.clock = "1996-08-01"
        assert not service._is_stale(self.known(date_changed="1996-07-31"))

    def test_explicit_expires_still_wins(self):
        service = self.make_service(clock="1996-08-01")
        service.fetched_on["s1"] = "1996-08-01"
        fresh_forever = self.known(date_changed="1990-01-01")
        expired = self.known(date_changed="1996-07-31", date_expires="1996-07-01")
        assert service._is_stale(expired)
        assert not service._is_stale(fresh_forever)
        assert not service._is_stale(self.known(date_expires="1996-09-01"))

    def test_never_harvested_is_not_stale(self):
        service = self.make_service(clock="2020-01-01")
        assert not service._is_stale(self.known(date_changed="1990-01-01"))

    def test_without_policy_expires_only_rule_is_unchanged(self):
        service = DiscoveryService(StartsClient(SimulatedInternet()))
        assert not service._is_stale(self.known(date_changed="1900-01-01"))
        assert service._is_stale(self.known(date_expires="1996-07-01"))
