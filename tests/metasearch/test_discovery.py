"""Metadata harvesting: resource → sources, caching, expiry."""

import pytest

from repro.metasearch.discovery import DiscoveryService
from repro.transport import StartsClient


@pytest.fixture
def service(small_federation):
    internet, resource_url, _ = small_federation
    return DiscoveryService(StartsClient(internet)), resource_url, internet


class TestHarvesting:
    def test_refresh_discovers_all_sources(self, service):
        discovery, url, _ = service
        harvested = discovery.refresh_resource(url)
        assert sorted(s.source_id for s in harvested) == [
            "Fed-DB",
            "Fed-Med",
            "Fed-Net",
        ]

    def test_metadata_and_summary_fetched(self, service):
        discovery, url, _ = service
        discovery.refresh_resource(url)
        known = discovery.source("Fed-DB")
        assert known.metadata.source_id == "Fed-DB"
        assert known.summary is not None
        assert known.summary.num_docs == 40
        assert known.sample_results is not None

    def test_query_url_from_metadata(self, service):
        discovery, url, _ = service
        discovery.refresh_resource(url)
        assert discovery.source("Fed-DB").query_url.endswith("/query")

    def test_summaries_view(self, service):
        discovery, url, _ = service
        discovery.refresh_resource(url)
        assert set(discovery.summaries()) == {"Fed-DB", "Fed-Med", "Fed-Net"}


class TestCaching:
    def test_second_refresh_reuses_cache(self, service):
        discovery, url, internet = service
        discovery.refresh_resource(url)
        count_after_first = internet.request_count()
        discovery.refresh_resource(url)
        # Only the resource blob is re-fetched; sources are cached.
        assert internet.request_count() == count_after_first + 1

    def test_forget_forces_refetch(self, service):
        discovery, url, internet = service
        discovery.refresh_resource(url)
        discovery.forget("Fed-DB")
        count_before = internet.request_count()
        discovery.refresh_resource(url)
        assert internet.request_count() > count_before + 1


class TestExpiry:
    def test_expired_metadata_refetched(self, small_federation):
        internet, url, resource = small_federation
        # Make one source advertise an already-past expiry date.
        resource.source("Fed-DB").date_changed = "1996-01-01"
        source = resource.source("Fed-DB")
        original_metadata = source.metadata

        def expiring_metadata():
            metadata = original_metadata()
            from dataclasses import replace

            return replace(metadata, date_expires="1996-06-01")

        source.metadata = expiring_metadata
        try:
            discovery = DiscoveryService(StartsClient(internet), clock="1996-08-01")
            discovery.refresh_resource(url)
            count = internet.request_count()
            discovery.refresh_resource(url)
            # Fed-DB was stale: its blobs were re-fetched.
            assert internet.request_count() > count + 1
        finally:
            source.metadata = original_metadata
