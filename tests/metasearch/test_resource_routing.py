"""Figure 1 routing through the metasearcher: one query per resource."""

import pytest

from repro.corpus import source1_documents, source2_documents, ullman_dood_document
from repro.metasearch import Metasearcher, SelectAll
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import SimulatedInternet, publish_resource


@pytest.fixture
def world():
    """One resource, two same-engine sources, one shared document."""
    internet = SimulatedInternet(seed=6)
    resource = Resource(
        "Dialog",
        [
            StartsSource("Dialog-1", source1_documents()),
            StartsSource("Dialog-2", [ullman_dood_document(), *source2_documents()]),
        ],
    )
    publish_resource(internet, resource, "http://dialog.example.org")
    searcher = Metasearcher(internet, ["http://dialog.example.org/resource"])
    searcher.refresh()
    return internet, searcher


def query():
    return SQuery(
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        )
    )


class TestGroupedRouting:
    def test_single_request_for_shared_resource(self, world):
        internet, searcher = world
        internet.reset_log()
        searcher.search(
            query(), k_sources=2, selector=SelectAll(), group_by_resource=True
        )
        assert internet.request_count() == 1

    def test_ungrouped_sends_one_request_per_source(self, world):
        internet, searcher = world
        internet.reset_log()
        searcher.search(query(), k_sources=2, selector=SelectAll())
        assert internet.request_count() == 2

    def test_resource_side_duplicate_elimination(self, world):
        internet, searcher = world
        result = searcher.search(
            query(), k_sources=2, selector=SelectAll(), group_by_resource=True
        )
        ullman = [
            doc for doc in result.documents if "ullman" in doc.linkage
        ]
        assert len(ullman) == 1
        # The surviving entry carries both member sources.
        assert set(ullman[0].document.sources) == {"Dialog-1", "Dialog-2"}

    def test_grouped_and_ungrouped_cover_same_documents(self, world):
        internet, searcher = world
        grouped = searcher.search(
            query(), k_sources=2, selector=SelectAll(), group_by_resource=True
        )
        ungrouped = searcher.search(query(), k_sources=2, selector=SelectAll())
        assert set(grouped.linkages()) == set(ungrouped.linkages())
