"""Language-aware behaviour across selection and querying."""

import pytest

from repro.corpus import CollectionSpec, generate_collection
from repro.metasearch import Metasearcher
from repro.resource import Resource
from repro.starts import SQuery, parse_expression
from repro.transport import SimulatedInternet, publish_resource
from repro.vendors import build_vendor_source


@pytest.fixture(scope="module")
def mixed_world():
    internet = SimulatedInternet(seed=8)
    resource = Resource("Mixed")
    resource.add_source(
        build_vendor_source(
            "MundoDocs",
            "Bilingual",
            generate_collection(
                CollectionSpec(
                    name="Bilingual",
                    topics={"databases": 1.0},
                    size=40,
                    spanish_fraction=0.6,
                    seed=4,
                )
            ),
        )
    )
    resource.add_source(
        build_vendor_source(
            "AcmeSearch",
            "EnglishOnly",
            generate_collection(
                CollectionSpec(
                    name="EnglishOnly", topics={"databases": 1.0}, size=40, seed=5
                )
            ),
        )
    )
    publish_resource(internet, resource, "http://mixed.example.org")
    searcher = Metasearcher(internet, ["http://mixed.example.org/resource"])
    searcher.refresh()
    return searcher


class TestSpanishSelection:
    def test_spanish_terms_select_bilingual_source(self, mixed_world):
        query = SQuery(
            ranking_expression=parse_expression(
                'list((body-of-text [es "datos"]) (body-of-text [es "consulta"]))'
            )
        )
        result = mixed_world.search(query, k_sources=1)
        assert result.selected_sources == ["Bilingual"]

    def test_english_terms_still_work(self, mixed_world):
        query = SQuery(
            ranking_expression=parse_expression('list((body-of-text "databases"))')
        )
        result = mixed_world.search(query, k_sources=2)
        assert result.documents

    def test_spanish_results_come_from_spanish_documents(self, mixed_world):
        query = SQuery(
            ranking_expression=parse_expression('list((body-of-text [es "datos"]))'),
            answer_fields=("title", "languages"),
        )
        result = mixed_world.search(query, k_sources=1)
        assert result.documents
        for merged in result.documents:
            assert merged.document.get("languages", "") == "es"


class TestSourceLanguagesMetadata:
    def test_bilingual_source_declares_both(self, mixed_world):
        metadata = mixed_world.discovery.source("Bilingual").metadata
        assert "es" in metadata.source_languages
        assert any(tag.startswith("en") for tag in metadata.source_languages)

    def test_english_source_declares_english_only(self, mixed_world):
        metadata = mixed_world.discovery.source("EnglishOnly").metadata
        assert all(not tag.startswith("es") for tag in metadata.source_languages)
