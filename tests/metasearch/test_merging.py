"""Rank merging strategies over crafted heterogeneous results."""

import math

import pytest

from repro.metasearch.merging import (
    MERGE_STRATEGIES,
    CalibratedMerge,
    CoriMerge,
    MergeContext,
    NormalizedScoreMerge,
    RawScoreMerge,
    RoundRobinMerge,
    TermFrequencyMerge,
    TfIdfRecomputeMerge,
)
from repro.source.sample import SampleResults
from repro.starts.ast import STerm
from repro.starts.attributes import FieldRef
from repro.starts.lstring import LString
from repro.starts.metadata import (
    SContentSummary,
    SMetaAttributes,
    SummaryEntryLine,
    SummarySection,
)
from repro.starts.results import SQRDocument, SQResults, TermStats


def stats(word, tf, weight, df):
    return TermStats(
        STerm(LString(word), FieldRef("body-of-text")), tf, weight, df
    )


def doc(linkage, score, source, tf_map, doc_count=1000):
    return SQRDocument(
        linkage=linkage,
        raw_score=score,
        sources=(source,),
        term_stats=tuple(
            stats(word, tf, 0.5, df) for word, (tf, df) in tf_map.items()
        ),
        doc_count=doc_count,
    )


@pytest.fixture
def scenario():
    """The paper's §3.2 trap: S1 scores 0..1, S2 scores 0..1000.

    S2's document d2 is the better match (higher tf of both terms) but
    has the *lower* normalized quality under raw comparison because S1
    maxes at 1.0 while S2's raw scores look huge.
    """
    d1 = doc("http://s1/d1", 0.82, "S1", {"distributed": (10, 190), "databases": (15, 232)})
    d2 = doc("http://s2/d2", 270.0, "S2", {"distributed": (20, 901), "databases": (34, 788)})
    d3 = doc("http://s2/d3", 120.0, "S2", {"distributed": (2, 901), "databases": (1, 788)})
    results = {
        "S1": SQResults(sources=("S1",), documents=(d1,)),
        "S2": SQResults(sources=("S2",), documents=(d2, d3)),
    }
    metadata = {
        "S1": SMetaAttributes(source_id="S1", score_range=(0.0, 1.0)),
        "S2": SMetaAttributes(source_id="S2", score_range=(0.0, 1000.0)),
    }
    summaries = {
        "S1": SContentSummary(
            num_docs=1000,
            sections=(
                SummarySection(
                    "body-of-text",
                    "en",
                    (
                        SummaryEntryLine("distributed", 400, 190),
                        SummaryEntryLine("databases", 500, 232),
                    ),
                ),
            ),
        ),
        "S2": SContentSummary(
            num_docs=9000,
            sections=(
                SummarySection(
                    "body-of-text",
                    "en",
                    (
                        SummaryEntryLine("distributed", 2000, 901),
                        SummaryEntryLine("databases", 1800, 788),
                    ),
                ),
            ),
        ),
    }
    context = MergeContext(
        metadata=metadata,
        summaries=summaries,
        query_terms=("distributed", "databases"),
    )
    return results, context


class TestRawScore:
    def test_falls_into_the_trap(self, scenario):
        """Raw merging ranks S2's mediocre d3 above S1's strong d1 —
        exactly the incomparability the paper warns about."""
        results, context = scenario
        merged = RawScoreMerge().merge(results, context)
        order = [m.linkage for m in merged]
        assert order.index("http://s2/d3") < order.index("http://s1/d1")


class TestNormalized:
    def test_score_range_normalization_corrects_scale(self, scenario):
        results, context = scenario
        merged = NormalizedScoreMerge().merge(results, context)
        by_linkage = {m.linkage: m.score for m in merged}
        assert by_linkage["http://s1/d1"] == pytest.approx(0.82)
        assert by_linkage["http://s2/d2"] == pytest.approx(0.27)
        # The strong S1 document now beats S2's weak one.
        order = [m.linkage for m in merged]
        assert order.index("http://s1/d1") < order.index("http://s2/d3")

    def test_infinite_range_falls_back_to_observed_max(self, scenario):
        results, context = scenario
        context.metadata["S2"] = SMetaAttributes(
            source_id="S2", score_range=(0.0, math.inf)
        )
        merged = NormalizedScoreMerge().merge(results, context)
        by_linkage = {m.linkage: m.score for m in merged}
        assert by_linkage["http://s2/d2"] == pytest.approx(1.0)

    def test_missing_metadata_defaults_to_unit_range(self, scenario):
        results, context = scenario
        context.metadata.pop("S2")
        merged = NormalizedScoreMerge().merge(results, context)
        assert merged  # no crash; S2 treated as 0..1


class TestTermFrequency:
    def test_example9_reranking(self, scenario):
        """Example 9: counting occurrences ranks S2's d2 (20+34) above
        S1's d1 (10+15) despite the lower raw score."""
        results, context = scenario
        merged = TermFrequencyMerge().merge(results, context)
        assert merged[0].linkage == "http://s2/d2"
        assert merged[0].score == 54.0


class TestTfIdfRecompute:
    def test_uses_global_statistics(self, scenario):
        results, context = scenario
        merged = TfIdfRecomputeMerge().merge(results, context)
        by_linkage = {m.linkage: m.score for m in merged}
        # d2 has double the tf at the same doc length: clearly ahead.
        assert by_linkage["http://s2/d2"] > by_linkage["http://s1/d1"]
        assert by_linkage["http://s1/d1"] > by_linkage["http://s2/d3"]

    def test_survives_missing_summaries(self, scenario):
        results, context = scenario
        context.summaries.clear()
        merged = TfIdfRecomputeMerge().merge(results, context)
        assert len(merged) == 3


class TestCoriMerge:
    def test_belief_weighted_order(self, scenario):
        results, context = scenario
        merged = CoriMerge().merge(results, context)
        assert len(merged) == 3
        scores = [m.score for m in merged]
        assert scores == sorted(scores, reverse=True)

    def test_degrades_without_summaries(self, scenario):
        results, context = scenario
        context.summaries.clear()
        merged = CoriMerge().merge(results, context)
        assert len(merged) == 3


class TestRoundRobin:
    def test_interleaves_by_rank(self, scenario):
        results, context = scenario
        merged = RoundRobinMerge().merge(results, context)
        # Depth-0 documents (d1, d2) precede depth-1 (d3).
        top_two = {m.linkage for m in merged[:2]}
        assert top_two == {"http://s1/d1", "http://s2/d2"}


class TestCalibrated:
    def test_sample_scale_correction(self, scenario):
        results, context = scenario
        context.samples = {
            "S1": SampleResults({("q",): [1.0]}),
            "S2": SampleResults({("q",): [1000.0]}),
        }
        merged = CalibratedMerge().merge(results, context)
        by_linkage = {m.linkage: m.score for m in merged}
        assert by_linkage["http://s1/d1"] == pytest.approx(0.82)
        assert by_linkage["http://s2/d2"] == pytest.approx(0.27)

    def test_without_samples_equals_raw(self, scenario):
        results, context = scenario
        raw = [m.linkage for m in RawScoreMerge().merge(results, context)]
        uncalibrated = [m.linkage for m in CalibratedMerge().merge(results, context)]
        assert raw == uncalibrated


class TestDeduplication:
    def test_duplicate_linkage_keeps_best(self, scenario):
        results, context = scenario
        dup = doc("http://s1/d1", 0.9, "S2", {"distributed": (10, 901)})
        results["S2"] = SQResults(
            sources=("S2",), documents=results["S2"].documents + (dup,)
        )
        merged = RawScoreMerge().merge(results, context)
        entries = [m for m in merged if m.linkage == "http://s1/d1"]
        assert len(entries) == 1
        assert entries[0].score == pytest.approx(0.9)


class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(MERGE_STRATEGIES) == {
            "raw-score",
            "range-normalized",
            "term-frequency",
            "tfidf-recompute",
            "cori-weighted",
            "round-robin",
            "sample-calibrated",
        }
