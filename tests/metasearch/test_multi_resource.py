"""Metasearch across several independent resources."""

import pytest

from repro.corpus import CollectionSpec, generate_collection
from repro.metasearch import Metasearcher
from repro.resource import Resource
from repro.starts import SQuery, parse_expression
from repro.transport import SimulatedInternet, publish_resource
from repro.vendors import build_vendor_source


@pytest.fixture(scope="module")
def two_resources():
    internet = SimulatedInternet(seed=5)

    campus = Resource("Campus")
    campus.add_source(
        build_vendor_source(
            "AcmeSearch",
            "Campus-DB",
            generate_collection(
                CollectionSpec(name="Campus-DB", topics={"databases": 1.0}, size=30, seed=1)
            ),
        )
    )
    publish_resource(internet, campus, "http://campus.example.org")

    commercial = Resource("Commercial")
    commercial.add_source(
        build_vendor_source(
            "OkapiWorks",
            "Dialog-Med",
            generate_collection(
                CollectionSpec(name="Dialog-Med", topics={"medicine": 1.0}, size=30, seed=2)
            ),
        )
    )
    commercial.add_source(
        build_vendor_source(
            "InferNet",
            "Dialog-Law",
            generate_collection(
                CollectionSpec(name="Dialog-Law", topics={"law": 1.0}, size=30, seed=3)
            ),
        )
    )
    publish_resource(internet, commercial, "http://dialog.example.org")

    return internet, [
        "http://campus.example.org/resource",
        "http://dialog.example.org/resource",
    ]


class TestMultiResourceDiscovery:
    def test_all_sources_from_all_resources(self, two_resources):
        internet, urls = two_resources
        searcher = Metasearcher(internet, urls)
        known = searcher.refresh()
        assert sorted(k.source_id for k in known) == [
            "Campus-DB",
            "Dialog-Law",
            "Dialog-Med",
        ]

    def test_resource_attribution_tracked(self, two_resources):
        internet, urls = two_resources
        searcher = Metasearcher(internet, urls)
        searcher.refresh()
        assert searcher.discovery.source("Campus-DB").resource_url == urls[0]
        assert searcher.discovery.source("Dialog-Med").resource_url == urls[1]

    def test_add_resource_later(self, two_resources):
        internet, urls = two_resources
        searcher = Metasearcher(internet, urls[:1])
        searcher.refresh()
        assert len(searcher.discovery.known_sources()) == 1
        searcher.add_resource(urls[1])
        searcher.refresh()
        assert len(searcher.discovery.known_sources()) == 3


class TestCrossResourceSelection:
    def test_selection_spans_resources(self, two_resources):
        internet, urls = two_resources
        searcher = Metasearcher(internet, urls)
        searcher.refresh()

        medical = SQuery(
            ranking_expression=parse_expression(
                'list((body-of-text "patient") (body-of-text "diagnosis"))'
            )
        )
        result = searcher.search(medical, k_sources=1)
        assert result.selected_sources == ["Dialog-Med"]

        database = SQuery(
            ranking_expression=parse_expression('list((body-of-text "databases"))')
        )
        result = searcher.search(database, k_sources=1)
        assert result.selected_sources == ["Campus-DB"]

    def test_merging_spans_resources(self, two_resources):
        internet, urls = two_resources
        searcher = Metasearcher(internet, urls)
        searcher.refresh()
        # "analysis" is a general word present in every collection.
        query = SQuery(
            ranking_expression=parse_expression('list((body-of-text "analysis"))'),
            max_number_documents=30,
        )
        result = searcher.search(query, k_sources=3)
        sources_seen = {doc.source_id for doc in result.documents}
        assert len(sources_seen) >= 2
