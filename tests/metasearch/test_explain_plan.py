"""The dry-run query planner."""

import pytest

from repro.metasearch import Metasearcher
from repro.starts import SQuery, parse_expression
from repro.starts.errors import ProtocolError


@pytest.fixture
def searcher(small_federation):
    internet, resource_url, _ = small_federation
    searcher = Metasearcher(internet, [resource_url])
    searcher.refresh()
    return searcher, internet


def query():
    return SQuery(
        ranking_expression=parse_expression(
            'list((body-of-text "databases") (body-of-text "patient"))'
        )
    )


class TestExplainPlan:
    def test_plan_lists_all_sources_marks_chosen(self, searcher):
        client, _ = searcher
        plan = client.explain_plan(query(), k_sources=2)
        for source_id in ("Fed-DB", "Fed-Med", "Fed-Net"):
            assert source_id in plan
        assert plan.count("->") == 2

    def test_plan_shows_translated_expressions(self, searcher):
        client, _ = searcher
        plan = client.explain_plan(query(), k_sources=1)
        assert "ranking: list(" in plan
        assert "filter:  (none)" in plan

    def test_plan_touches_no_network(self, searcher):
        client, internet = searcher
        internet.reset_log()
        client.explain_plan(query(), k_sources=3)
        assert internet.request_count() == 0

    def test_plan_reports_result_estimates(self, searcher):
        client, _ = searcher
        plan = client.explain_plan(query(), k_sources=1)
        assert "est. matches=" in plan

    def test_plan_notes_translation_losses(self, searcher):
        client, _ = searcher
        lossy = SQuery(
            ranking_expression=parse_expression(
                'list((body-of-text "the") (body-of-text "databases"))'
            )
        )
        plan = client.explain_plan(lossy, k_sources=1)
        assert "stop word" in plan

    def test_invalid_query_rejected(self, searcher):
        client, _ = searcher
        with pytest.raises(ProtocolError):
            client.explain_plan(SQuery())
