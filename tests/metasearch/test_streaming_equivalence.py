"""``search_stream`` must reproduce batch ``search`` bit for bit.

Two identically seeded worlds are built per comparison — one consumed
by batch :meth:`Metasearcher.search`, one by
:meth:`Metasearcher.search_stream` — because both paths draw from the
simulated internet's deterministic jitter/fault streams.  The final
streamed ranking (documents, scores, source attributions, order) must
equal the batch oracle across every merge strategy, executor, fault
profile and retry/hedge policy.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import CachePolicy
from repro.experiments import FederationSpec, build_federation
from repro.federation import (
    AsyncExecutor,
    OutcomeStatus,
    ParallelExecutor,
    QueryPolicy,
    SerialExecutor,
)
from repro.metasearch import MERGE_STRATEGIES, Metasearcher, RawScoreMerge
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import HostProfile, SimulatedInternet, publish_resource

EXECUTORS = {
    "serial": SerialExecutor,
    "parallel": ParallelExecutor,
    "async": lambda: AsyncExecutor(max_concurrency=8),
}

RESOURCE_URL = "http://experiments.example.org/resource"


def ranking_query(max_documents: int = 20) -> SQuery:
    return SQuery(
        ranking_expression=parse_expression('list((body-of-text "database"))'),
        max_number_documents=max_documents,
    )


def build_searcher(
    seed: int,
    policy: QueryPolicy,
    flaky: int | None = None,
    dead: int | None = None,
) -> Metasearcher:
    federation = build_federation(
        FederationSpec(
            n_sources=6,
            docs_per_source=12,
            n_queries=2,
            seed=seed,
            flaky_source_index=flaky,
            dead_source_index=dead,
        )
    )
    searcher = Metasearcher(
        federation.internet,
        [RESOURCE_URL],
        cache_policy=CachePolicy.disabled(),
        query_policy=policy,
    )
    searcher.refresh()
    return searcher


def rank_of(result):
    return [(d.linkage, d.score, d.source_id) for d in result.documents]


def final_emission(stream):
    emissions = list(stream)
    assert emissions, "stream yielded nothing"
    assert emissions[-1].is_final
    return emissions[-1]


class TestStrategyExecutorMatrix:
    POLICY = QueryPolicy(timeout_ms=500.0, max_retries=1, hedge_after_ms=100.0)

    @pytest.mark.parametrize("strategy_name", sorted(MERGE_STRATEGIES))
    @pytest.mark.parametrize("executor_name", sorted(EXECUTORS))
    def test_final_rank_matches_batch(self, strategy_name, executor_name):
        query = ranking_query()
        kwargs = dict(flaky=1, dead=4)
        batch = build_searcher(13, self.POLICY, **kwargs).search(
            query,
            k_sources=5,
            merger=MERGE_STRATEGIES[strategy_name](),
            executor=EXECUTORS[executor_name](),
        )
        streamed = final_emission(
            build_searcher(13, self.POLICY, **kwargs).search_stream(
                query,
                k_sources=5,
                merger=MERGE_STRATEGIES[strategy_name](),
                executor=EXECUTORS[executor_name](),
                early_stop=False,
            )
        ).result
        assert rank_of(streamed) == rank_of(batch)
        assert {
            sid: outcome.status for sid, outcome in streamed.outcomes.items()
        } == {sid: outcome.status for sid, outcome in batch.outcomes.items()}


class TestPropertyEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 40),
        strategy_name=st.sampled_from(sorted(MERGE_STRATEGIES)),
        executor_name=st.sampled_from(sorted(EXECUTORS)),
        fault=st.sampled_from(["none", "flaky", "dead", "both"]),
        max_retries=st.integers(0, 2),
        hedge=st.sampled_from([None, 50.0, 150.0]),
        k_sources=st.integers(2, 6),
    )
    def test_stream_equals_batch(
        self, seed, strategy_name, executor_name, fault, max_retries, hedge, k_sources
    ):
        policy = QueryPolicy(
            timeout_ms=500.0,
            max_retries=max_retries,
            backoff_base_ms=10.0,
            hedge_after_ms=hedge,
        )
        kwargs = {
            "none": {},
            "flaky": {"flaky": 1},
            "dead": {"dead": 3},
            "both": {"flaky": 1, "dead": 3},
        }[fault]
        query = ranking_query()
        batch = build_searcher(seed, policy, **kwargs).search(
            query,
            k_sources=k_sources,
            merger=MERGE_STRATEGIES[strategy_name](),
            executor=EXECUTORS[executor_name](),
        )
        streamed = final_emission(
            build_searcher(seed, policy, **kwargs).search_stream(
                query,
                k_sources=k_sources,
                merger=MERGE_STRATEGIES[strategy_name](),
                executor=EXECUTORS[executor_name](),
                early_stop=False,
            )
        ).result
        assert rank_of(streamed) == rank_of(batch)


class TestGroupedRouting:
    def test_group_by_resource_stream_matches_batch(self):
        policy = QueryPolicy(timeout_ms=500.0)
        query = ranking_query()
        batch = build_searcher(5, policy).search(
            query, k_sources=5, group_by_resource=True
        )
        streamed = final_emission(
            build_searcher(5, policy).search_stream(
                query, k_sources=5, group_by_resource=True, early_stop=False
            )
        ).result
        assert rank_of(streamed) == rank_of(batch)


class TestEarlyTermination:
    """A provably stable top-k stops the stream without changing it."""

    @pytest.fixture
    def lopsided_world(self):
        """Big-score source first, small bounded-score sources behind it.

        ``Loud`` ranks with ScaledCosine (ScoreRange 0–1000, real scores
        well above 1); the ``Quiet-*`` sources advertise ScoreRange 0–1.
        Under raw-score merging, once Loud's documents are in, no Quiet
        source can beat them — the stream must stop before querying the
        Quiet stragglers.
        """
        from repro.corpus import source1_documents, source2_documents
        from repro.engine.ranking import ScaledCosine
        from repro.engine.search import SearchEngine

        internet = SimulatedInternet(seed=4)
        loud = StartsSource(
            "A-Loud",
            source1_documents(),
            engine=SearchEngine(ranking=ScaledCosine()),
            base_url="http://loud.org/s",
        )
        quiet = [
            StartsSource(
                f"B-Quiet-{index}",
                source2_documents(),
                base_url=f"http://quiet{index}.org/s",
            )
            for index in range(3)
        ]
        resource = Resource("Lopsided", [loud, *quiet])
        publish_resource(
            internet,
            resource,
            "http://lopsided.org",
            source_profiles={
                source.source_id: HostProfile(latency_ms=20.0, jitter_ms=0.0)
                for source in [loud, *quiet]
            },
        )
        searcher = Metasearcher(
            internet,
            ["http://lopsided.org/resource"],
            merger=RawScoreMerge(),
            cache_policy=CachePolicy.disabled(),
        )
        searcher.refresh()
        return searcher

    def _query(self):
        return SQuery(
            ranking_expression=parse_expression('(body-of-text "databases")'),
            max_number_documents=2,
        )

    def test_stops_early_and_cancels_pending(self, lopsided_world):
        final = final_emission(
            lopsided_world.search_stream(
                self._query(), k_sources=4, executor=SerialExecutor()
            )
        )
        assert final.terminated_early
        cancelled = [
            sid
            for sid, outcome in final.result.outcomes.items()
            if outcome.status is OutcomeStatus.CANCELLED
        ]
        assert cancelled, "expected at least one cancelled straggler"
        # The serial executor streams lazily: a cancelled source's query
        # never went out at all.
        assert all(
            not final.result.outcomes[sid].attempts for sid in cancelled
        )

    def test_early_rank_matches_full_batch(self, lopsided_world):
        streamed = final_emission(
            lopsided_world.search_stream(
                self._query(), k_sources=4, executor=SerialExecutor()
            )
        ).result
        # Fresh identical world for the batch oracle over all sources.
        from repro.corpus import source1_documents, source2_documents
        from repro.engine.ranking import ScaledCosine
        from repro.engine.search import SearchEngine

        internet = SimulatedInternet(seed=4)
        loud = StartsSource(
            "A-Loud",
            source1_documents(),
            engine=SearchEngine(ranking=ScaledCosine()),
            base_url="http://loud.org/s",
        )
        quiet = [
            StartsSource(
                f"B-Quiet-{index}",
                source2_documents(),
                base_url=f"http://quiet{index}.org/s",
            )
            for index in range(3)
        ]
        publish_resource(
            internet,
            Resource("Lopsided", [loud, *quiet]),
            "http://lopsided.org",
            source_profiles={
                source.source_id: HostProfile(latency_ms=20.0, jitter_ms=0.0)
                for source in [loud, *quiet]
            },
        )
        oracle = Metasearcher(
            internet,
            ["http://lopsided.org/resource"],
            merger=RawScoreMerge(),
            cache_policy=CachePolicy.disabled(),
        )
        oracle.refresh()
        batch = oracle.search(self._query(), k_sources=4, executor=SerialExecutor())
        assert rank_of(streamed) == rank_of(batch)

    def test_early_stop_off_queries_everyone(self, lopsided_world):
        final = final_emission(
            lopsided_world.search_stream(
                self._query(), k_sources=4, executor=SerialExecutor(),
                early_stop=False,
            )
        )
        assert not final.terminated_early
        assert all(outcome.ok for outcome in final.result.outcomes.values())


class TestDeadline:
    def test_deadline_cancels_stragglers(self):
        policy = QueryPolicy(timeout_ms=500.0)
        searcher = build_searcher(9, policy)
        emissions = list(
            searcher.search_stream(
                ranking_query(),
                k_sources=5,
                executor=SerialExecutor(),
                deadline_ms=0.0,
            )
        )
        final = emissions[-1]
        assert final.terminated_early
        statuses = {o.status for o in final.result.outcomes.values()}
        assert OutcomeStatus.CANCELLED in statuses
        # One emission for the first source, then the final wrap-up.
        assert len(emissions) == 2


class TestCacheInterplay:
    def test_second_stream_serves_from_cache(self):
        policy = QueryPolicy(timeout_ms=500.0)
        federation = build_federation(
            FederationSpec(n_sources=4, docs_per_source=10, n_queries=2, seed=21)
        )
        searcher = Metasearcher(
            federation.internet, [RESOURCE_URL], query_policy=policy
        )
        searcher.refresh()
        first = final_emission(
            searcher.search_stream(ranking_query(), k_sources=3, early_stop=False)
        )
        assert first.result.cache_status is None
        second = final_emission(
            searcher.search_stream(ranking_query(), k_sources=3, early_stop=False)
        )
        assert second.result.cache_status == "hit"
        assert rank_of(second.result) == rank_of(first.result)

    def test_early_terminated_round_is_not_cached(self):
        policy = QueryPolicy(timeout_ms=500.0)
        federation = build_federation(
            FederationSpec(n_sources=4, docs_per_source=10, n_queries=2, seed=22)
        )
        searcher = Metasearcher(
            federation.internet, [RESOURCE_URL], query_policy=policy
        )
        searcher.refresh()
        first = final_emission(
            searcher.search_stream(
                ranking_query(), k_sources=3, deadline_ms=0.0
            )
        )
        assert first.terminated_early
        second = final_emission(
            searcher.search_stream(ranking_query(), k_sources=3, early_stop=False)
        )
        assert second.result.cache_status is None
