"""Property tests on the merge strategies' shared invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metasearch.merging import (
    MERGE_STRATEGIES,
    MergeContext,
)
from repro.starts.ast import STerm
from repro.starts.attributes import FieldRef
from repro.starts.lstring import LString
from repro.starts.metadata import SMetaAttributes
from repro.starts.results import SQRDocument, SQResults, TermStats


def _term_stats(tf, df):
    return TermStats(
        STerm(LString("word"), FieldRef("body-of-text")), tf, 0.5, df
    )


@st.composite
def result_sets(draw):
    """1-3 sources, each with 0-5 documents; linkages may overlap."""
    n_sources = draw(st.integers(1, 3))
    linkage_pool = [f"http://d/{i}" for i in range(8)]
    results = {}
    for s in range(n_sources):
        source_id = f"S{s}"
        n_docs = draw(st.integers(0, 5))
        linkages = draw(
            st.lists(st.sampled_from(linkage_pool), min_size=n_docs, max_size=n_docs,
                     unique=True)
        )
        docs = []
        for linkage in linkages:
            score = draw(st.floats(0.0, 1.0, allow_nan=False))
            tf = draw(st.integers(0, 30))
            docs.append(
                SQRDocument(
                    linkage=linkage,
                    raw_score=score,
                    sources=(source_id,),
                    term_stats=(_term_stats(tf, max(tf, 1)),),
                    doc_count=draw(st.integers(1, 500)),
                )
            )
        docs.sort(key=lambda d: -d.raw_score)
        results[source_id] = SQResults(sources=(source_id,), documents=tuple(docs))
    return results


def _context(results):
    return MergeContext(
        metadata={
            source_id: SMetaAttributes(source_id=source_id, score_range=(0.0, 1.0))
            for source_id in results
        },
        query_terms=("word",),
    )


@pytest.mark.parametrize("strategy_name", sorted(MERGE_STRATEGIES))
@settings(max_examples=40, deadline=None)
@given(results=result_sets())
def test_merge_invariants(strategy_name, results):
    strategy = MERGE_STRATEGIES[strategy_name]()
    merged = strategy.merge(results, _context(results))

    input_linkages = {
        document.linkage
        for result in results.values()
        for document in result.documents
    }

    # 1. No duplicates.
    linkages = [m.linkage for m in merged]
    assert len(linkages) == len(set(linkages))

    # 2. Exactly the union of the inputs (merging never invents or
    #    loses documents).
    assert set(linkages) == input_linkages

    # 3. Best-first order.
    scores = [m.score for m in merged]
    assert scores == sorted(scores, reverse=True)

    # 4. Provenance: each merged doc cites a source that returned it.
    for m in merged:
        assert m.source_id in results
        assert any(
            d.linkage == m.linkage for d in results[m.source_id].documents
        )


@settings(max_examples=40, deadline=None)
@given(results=result_sets())
def test_range_normalized_scores_in_unit_interval(results):
    strategy = MERGE_STRATEGIES["range-normalized"]()
    for m in strategy.merge(results, _context(results)):
        assert 0.0 <= m.score <= 1.0
