"""Modifier semantics through the full source path."""

import pytest

from repro.corpus import source1_documents
from repro.engine.ranking import CosineTfIdf
from repro.engine.search import SearchEngine
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.text.analysis import Analyzer
from repro.text.tokenize import SimpleTokenizer


def search(source, text):
    query = SQuery(filter_expression=parse_expression(text))
    return {doc.linkage for doc in source.search(query).documents}


class TestThesaurusThroughSource:
    def test_synonym_match(self, source1):
        """'datastore' is a DEFAULT_THESAURUS synonym of 'database' but
        the canned documents only say 'databases'; the stem+thesaurus
        combination is needed — test the thesaurus alone on a word the
        corpus actually contains a synonym for."""
        from repro.engine import fields as F
        from repro.engine.documents import Document

        source = StartsSource(
            "Thes",
            [
                Document("http://x/0", {F.BODY_OF_TEXT: "the datastore holds rows"}),
                Document("http://x/1", {F.BODY_OF_TEXT: "nothing relevant"}),
            ],
        )
        assert search(source, '(body-of-text thesaurus "database")') == {"http://x/0"}

    def test_without_thesaurus_no_match(self, source1):
        from repro.engine import fields as F
        from repro.engine.documents import Document

        source = StartsSource(
            "Thes",
            [Document("http://x/0", {F.BODY_OF_TEXT: "the datastore holds rows"})],
        )
        assert search(source, '(body-of-text "database")') == set()


class TestCaseSensitiveModifier:
    def test_noop_on_case_insensitive_engine(self, source1):
        """Best-effort semantics: a case-insensitive engine accepts the
        modifier and matches case-insensitively — the source 'may
        freely interpret' supported attributes."""
        with_mod = search(source1, '(author case-sensitive "ullman")')
        without = search(source1, '(author "ullman")')
        assert with_mod == without

    def test_case_sensitive_engine_distinguishes(self):
        from repro.engine import fields as F
        from repro.engine.documents import Document

        class CaseTokenizer(SimpleTokenizer):
            tokenizer_id = "Case-2"
            lowercase = False

        engine = SearchEngine(
            analyzer=Analyzer(tokenizer=CaseTokenizer(), case_sensitive=True),
            ranking=CosineTfIdf(),
        )
        source = StartsSource(
            "CaseFull",
            [
                Document("http://x/0", {F.BODY_OF_TEXT: "Polish sausage"}),
                Document("http://x/1", {F.BODY_OF_TEXT: "polish the silver"}),
            ],
            engine=engine,
        )
        assert search(source, '(body-of-text "Polish")') == {"http://x/0"}
        assert search(source, '(body-of-text "polish")') == {"http://x/1"}


class TestComparisonCornerCases:
    def test_equal_boundary_dates(self, source1):
        hits_ge = search(source1, '(date-last-modified >= "1995-06-12")')
        hits_gt = search(source1, '(date-last-modified > "1995-06-12")')
        # The Ullman document is dated exactly 1995-06-12.
        assert "http://www-db.stanford.edu/~ullman/pub/dood.ps" in hits_ge
        assert "http://www-db.stanford.edu/~ullman/pub/dood.ps" not in hits_gt

    def test_not_equal(self, source1):
        hits = search(source1, '(date-last-modified != "1995-06-12")')
        assert "http://www-db.stanford.edu/~ullman/pub/dood.ps" not in hits
        assert len(hits) == 2
