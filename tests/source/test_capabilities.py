"""Capability declarations."""

import pytest

from repro.source.capabilities import SourceCapabilities


class TestConstruction:
    def test_full_basic1_supports_everything(self):
        caps = SourceCapabilities.full_basic1()
        assert caps.supports_field("title")
        assert caps.supports_field("free-form-text")
        assert caps.supports_modifier("stem")
        assert caps.supports_ranking() and caps.supports_filter()

    def test_required_fields_cannot_be_dropped(self):
        with pytest.raises(ValueError):
            SourceCapabilities(fields={"author": ()})

    def test_bad_query_parts_rejected(self):
        with pytest.raises(ValueError):
            SourceCapabilities(query_parts="X")

    @pytest.mark.parametrize("parts", ["R", "F", "RF", "rf"])
    def test_valid_query_parts(self, parts):
        SourceCapabilities(query_parts=parts)


class TestVariants:
    def test_without_fields(self):
        caps = SourceCapabilities.full_basic1().without_fields("author")
        assert not caps.supports_field("author")
        assert caps.supports_field("title")

    def test_without_modifiers(self):
        caps = SourceCapabilities.full_basic1().without_modifiers("stem", "thesaurus")
        assert not caps.supports_modifier("stem")
        assert caps.supports_modifier("phonetic")

    def test_field_alias_resolution(self):
        caps = SourceCapabilities.full_basic1()
        assert caps.supports_field("date-last-modified")


class TestCombinations:
    def test_unconstrained_by_default(self):
        caps = SourceCapabilities.full_basic1()
        assert caps.combination_is_legal("author", "stem")

    def test_explicit_combination_list(self):
        caps = SourceCapabilities(
            combinations=frozenset({("author", "phonetic")}),
        )
        assert caps.combination_is_legal("author", "phonetic")
        assert not caps.combination_is_legal("author", "stem")

    def test_unsupported_parts_never_legal(self):
        caps = SourceCapabilities.full_basic1().without_modifiers("stem")
        assert not caps.combination_is_legal("author", "stem")
