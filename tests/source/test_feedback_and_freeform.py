"""The Document-text and Free-form-text fields, end to end."""

import pytest

from repro.corpus import source1_documents
from repro.source import SourceCapabilities, StartsSource
from repro.starts import SQuery, parse_expression
from repro.vendors import build_vendor_source


class TestDocumentTextFeedback:
    """§4.1.1: "The Document-text field provides a way to pass documents
    to the sources as part of the queries, which could be useful to do
    relevance feedback"."""

    FEEDBACK = (
        "deductive databases compared with object-oriented databases for "
        "distributed query processing"
    )

    def test_feedback_ranks_similar_document_first(self, source1):
        query = SQuery(
            ranking_expression=parse_expression(f'(document-text "{self.FEEDBACK}")')
        )
        results = source1.search(query)
        assert results.documents
        assert results.documents[0].linkage.endswith("dood.ps")

    def test_feedback_in_filter_position_is_disjunctive(self, source1):
        query = SQuery(
            filter_expression=parse_expression(f'(document-text "{self.FEEDBACK}")')
        )
        results = source1.search(query)
        # Every Source-1 document shares at least one salient word.
        assert len(results.documents) >= 2

    def test_stop_words_do_not_pollute_feedback(self, source1):
        query = SQuery(
            ranking_expression=parse_expression(
                '(document-text "the and of databases")'
            )
        )
        results = source1.search(query)
        # Only "databases" is salient; documents without it score 0 and
        # are excluded.
        for document in results.documents:
            assert any(
                stats.term_frequency > 0 for stats in document.term_stats
            )

    def test_unsupported_document_text_dropped(self):
        source = StartsSource(
            "NoFeedback",
            source1_documents(),
            capabilities=SourceCapabilities.full_basic1().without_fields(
                "document-text"
            ),
        )
        query = SQuery(
            ranking_expression=parse_expression('(document-text "databases")')
        )
        results = source.search(query)
        assert results.actual_ranking_expression is None
        assert results.documents == ()


class TestFreeFormText:
    """§4.1.1: Free-form-text passes native queries through "so that
    informed metasearchers could use the sources' richer native query
    languages"."""

    def test_infix_native_query(self):
        source = build_vendor_source("AcmeSearch", "S", source1_documents())
        query = SQuery(
            filter_expression=parse_expression(
                '(free-form-text "author:Ullman AND databases")'
            )
        )
        results = source.search(query)
        assert [d.linkage for d in results.documents] == [
            "http://www-db.stanford.edu/~ullman/pub/dood.ps"
        ]

    def test_actual_query_reveals_parsed_form(self):
        """The actual query shows how the source understood the native
        text — the mechanism metasearchers use to learn native
        behaviour (§4.3.1)."""
        source = build_vendor_source("AcmeSearch", "S", source1_documents())
        query = SQuery(
            filter_expression=parse_expression(
                '(free-form-text "author:Ullman AND databases")'
            )
        )
        results = source.search(query)
        actual = results.actual_filter_expression
        assert actual is not None
        assert "author" in actual.serialize()
        assert "free-form-text" not in actual.serialize()

    def test_plusminus_native_query(self):
        source = build_vendor_source("OkapiWorks", "S", source1_documents())
        query = SQuery(
            filter_expression=parse_expression(
                '(free-form-text "+databases -glimpse")'
            )
        )
        results = source.search(query)
        assert results.documents  # conjunctive positive side matched

    def test_semicolon_native_query_on_boolean_engine(self):
        source = build_vendor_source("GrepMaster", "S", source1_documents())
        query = SQuery(
            filter_expression=parse_expression(
                '(free-form-text "deductive;databases")'
            )
        )
        results = source.search(query)
        assert [d.linkage for d in results.documents] == [
            "http://www-db.stanford.edu/~ullman/pub/dood.ps"
        ]

    def test_unparseable_native_text_dropped(self):
        source = build_vendor_source("AcmeSearch", "S", source1_documents())
        query = SQuery(
            filter_expression=parse_expression('(free-form-text "((broken")')
        )
        results = source.search(query)
        assert results.actual_filter_expression is None
        assert results.documents == ()

    def test_source_without_native_syntax_drops_term(self):
        # InferNet supports the field is not declared... build a plain
        # source: full Basic-1 declares free-form-text but no syntax.
        source = StartsSource("Plain", source1_documents())
        query = SQuery(
            filter_expression=parse_expression('(free-form-text "databases")')
        )
        results = source.search(query)
        assert results.actual_filter_expression is None
