"""Property tests on query down-translation.

The central protocol property: pruning is **idempotent** — the actual
query a source reports is fully supported by that source, so
re-translating it changes nothing.  This is what makes the client-side
prediction (ClientTranslator) coherent.
"""

from hypothesis import given, settings, strategies as st

from repro.source.capabilities import SourceCapabilities
from repro.source.execution import QueryTranslator
from repro.starts.ast import SAnd, SAndNot, SList, SOr, SProx, STerm
from repro.starts.attributes import FieldRef, ModifierRef
from repro.starts.lstring import LString
from repro.text.analysis import Analyzer

_FIELDS = ["title", "author", "body-of-text", "any", "abstract"]
_MODIFIERS = ["stem", "phonetic", "thesaurus", "right-truncation", "case-sensitive"]
_WORDS = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"]


@st.composite
def terms(draw):
    word = draw(st.sampled_from(_WORDS))
    field = draw(st.sampled_from(_FIELDS + [None]))
    modifiers = tuple(
        ModifierRef(m)
        for m in draw(st.lists(st.sampled_from(_MODIFIERS), max_size=2, unique=True))
    )
    return STerm(
        LString(word), FieldRef(field) if field else None, modifiers
    )


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        return draw(terms())
    kind = draw(st.sampled_from(["term", "and", "or", "and-not", "prox", "list"]))
    if kind == "term":
        return draw(terms())
    if kind == "and":
        return SAnd(
            tuple(draw(st.lists(expressions(depth=depth - 1), min_size=2, max_size=3)))
        )
    if kind == "or":
        return SOr(
            tuple(draw(st.lists(expressions(depth=depth - 1), min_size=2, max_size=3)))
        )
    if kind == "and-not":
        return SAndNot(
            draw(expressions(depth=depth - 1)), draw(expressions(depth=depth - 1))
        )
    if kind == "prox":
        return SProx(draw(terms()), draw(terms()), draw(st.integers(0, 3)))
    return SList(
        tuple(draw(st.lists(expressions(depth=depth - 1), min_size=1, max_size=3)))
    )


@st.composite
def capabilities(draw):
    dropped_fields = draw(
        st.lists(st.sampled_from(["author", "body-of-text", "abstract"]), max_size=2, unique=True)
    )
    dropped_modifiers = draw(
        st.lists(st.sampled_from(_MODIFIERS), max_size=3, unique=True)
    )
    caps = SourceCapabilities(
        fields={
            name: ()
            for name in SourceCapabilities.full_basic1().fields
            if name not in dropped_fields
        }
        | ({"abstract": ()} if "abstract" not in dropped_fields else {}),
        supports_prox=draw(st.booleans()),
        query_parts=draw(st.sampled_from(["RF", "F", "R"])),
    )
    return caps.without_modifiers(*dropped_modifiers)


def _translator(caps):
    return QueryTranslator(caps, Analyzer())


@settings(max_examples=120, deadline=None)
@given(expressions(), capabilities())
def test_filter_translation_is_idempotent(expression, caps):
    translator = _translator(caps)
    first = translator.translate_filter(expression, drop_stop_words=True)
    if first.actual is None:
        return
    second = translator.translate_filter(first.actual, drop_stop_words=True)
    assert second.actual == first.actual
    assert second.dropped == [] or all(
        "free-form" in note or "parsed" in note for note in second.dropped
    )


@settings(max_examples=120, deadline=None)
@given(expressions(), capabilities())
def test_ranking_translation_is_idempotent(expression, caps):
    translator = _translator(caps)
    first = translator.translate_ranking(expression, drop_stop_words=True)
    if first.actual is None:
        return
    second = translator.translate_ranking(first.actual, drop_stop_words=True)
    assert second.actual == first.actual


@settings(max_examples=100, deadline=None)
@given(expressions(), capabilities())
def test_actual_query_only_uses_supported_features(expression, caps):
    """Every term surviving translation names a supported field and
    only supported, legal modifiers."""
    translator = _translator(caps)
    outcome = translator.translate_filter(expression, drop_stop_words=True)
    if outcome.actual is None:
        return
    for term in outcome.actual.terms():
        assert caps.supports_field(term.field_name)
        for modifier in term.modifier_names():
            assert caps.combination_is_legal(term.field_name, modifier)


@settings(max_examples=100, deadline=None)
@given(expressions(), capabilities())
def test_terms_never_invented(expression, caps):
    """Translation only removes terms; it never adds words."""
    translator = _translator(caps)
    outcome = translator.translate_filter(expression, drop_stop_words=True)
    if outcome.actual is None:
        return
    original_words = {t.lstring.text for t in expression.terms()}
    surviving_words = {t.lstring.text for t in outcome.actual.terms()}
    assert surviving_words <= original_words
