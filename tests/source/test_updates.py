"""Incremental collection updates and their visibility to harvesters."""

from repro.corpus import lagunita_document, source1_documents
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression


def ranking_query():
    return SQuery(
        ranking_expression=parse_expression('list((body-of-text "databases"))')
    )


class TestAddDocuments:
    def test_document_count_grows(self, source1):
        before = source1.document_count
        source1.add_documents([lagunita_document()])
        assert source1.document_count == before + 1

    def test_new_documents_searchable(self, source1):
        source1.add_documents([lagunita_document()])
        linkages = {d.linkage for d in source1.search(ranking_query()).documents}
        assert "http://elib.stanford.edu/lagunita.ps" in linkages

    def test_summary_reflects_update(self):
        source = StartsSource("Evolving", source1_documents())
        before_df = source.content_summary().document_frequency("databases")
        source.add_documents([lagunita_document()])
        after_df = source.content_summary().document_frequency("databases")
        assert after_df == before_df + 1

    def test_date_changed_bumped(self):
        source = StartsSource(
            "Evolving", source1_documents(), date_changed="1996-01-01"
        )
        source.add_documents([lagunita_document()], date_changed="1996-09-01")
        assert source.metadata().date_changed == "1996-09-01"

    def test_date_unchanged_without_stamp(self):
        source = StartsSource(
            "Evolving", source1_documents(), date_changed="1996-01-01"
        )
        source.add_documents([lagunita_document()])
        assert source.metadata().date_changed == "1996-01-01"

    def test_term_statistics_consistent_after_update(self, source1):
        source1.add_documents([lagunita_document()])
        results = source1.search(ranking_query())
        for document in results.documents:
            for stats in document.term_stats:
                assert stats.document_frequency <= source1.document_count


class TestRemoveDocuments:
    def test_removed_documents_disappear(self):
        source = StartsSource("Shrinking", source1_documents())
        removed = source.remove_documents(
            ["http://www-db.stanford.edu/~ullman/pub/dood.ps"],
            date_changed="1996-10-01",
        )
        assert removed == 1
        assert source.document_count == 2
        linkages = {d.linkage for d in source.search(ranking_query()).documents}
        assert "http://www-db.stanford.edu/~ullman/pub/dood.ps" not in linkages
        assert source.metadata().date_changed == "1996-10-01"

    def test_absent_linkages_counted_as_zero(self):
        source = StartsSource("Stable", source1_documents(), date_changed="1996-01-01")
        assert source.remove_documents(["http://nope"], date_changed="1996-10-01") == 0
        # No removal, no date bump.
        assert source.metadata().date_changed == "1996-01-01"

    def test_summary_shrinks_after_removal(self):
        source = StartsSource("Shrinking", source1_documents())
        before = source.content_summary().num_docs
        source.remove_documents(["http://www-db.stanford.edu/pub/gravano95.ps"])
        assert source.content_summary().num_docs == before - 1
