"""StartsSource: answer specification, metadata export, summaries."""

from dataclasses import replace

import pytest

from repro.corpus import source1_documents
from repro.engine.search import SearchEngine
from repro.source import SourceCapabilities, StartsSource
from repro.starts import SQuery, parse_expression
from repro.starts.query import SortKey


@pytest.fixture
def ranking_query():
    return SQuery(
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
        answer_fields=("title", "author"),
    )


class TestAnswerSpecification:
    def test_answer_fields_returned(self, source1, ranking_query):
        doc = source1.search(ranking_query).documents[0]
        assert "title" in doc.fields
        assert "author" in doc.fields

    def test_unrequested_fields_omitted(self, source1, ranking_query):
        query = replace(ranking_query, answer_fields=("title",))
        doc = source1.search(query).documents[0]
        assert "author" not in doc.fields

    def test_linkage_always_returned(self, source1, ranking_query):
        query = replace(ranking_query, answer_fields=("title",))
        doc = source1.search(query).documents[0]
        assert doc.linkage

    def test_max_number_documents(self, source1, ranking_query):
        query = replace(ranking_query, max_number_documents=1)
        assert len(source1.search(query).documents) == 1

    def test_min_document_score_filters(self, source1, ranking_query):
        unfiltered = source1.search(ranking_query)
        top = unfiltered.documents[0].raw_score
        query = replace(ranking_query, min_document_score=top)
        results = source1.search(query)
        assert all(d.raw_score >= top for d in results.documents)
        assert len(results.documents) < len(unfiltered.documents)

    def test_default_sort_is_score_descending(self, source1, ranking_query):
        scores = [d.raw_score for d in source1.search(ranking_query).documents]
        assert scores == sorted(scores, reverse=True)

    def test_field_sort(self, source1, ranking_query):
        query = replace(ranking_query, sort_keys=(SortKey("title", descending=False),))
        titles = [d.fields["title"] for d in source1.search(query).documents]
        assert titles == sorted(titles)

    def test_result_cap_applies(self):
        source = StartsSource(
            "Capped",
            source1_documents(),
            capabilities=SourceCapabilities(result_cap=1),
        )
        query = SQuery(
            ranking_expression=parse_expression('list((body-of-text "databases"))'),
            max_number_documents=10,
        )
        assert len(source.search(query).documents) == 1

    def test_truncated_results_are_prefix_of_untruncated(self, source1, ranking_query):
        """Engine-side top-k truncation (the default, score-descending
        sort) must return exactly the head of the full result."""
        full = source1.search(ranking_query).documents
        for limit in (1, 2, len(full)):
            truncated = source1.search(
                replace(ranking_query, max_number_documents=limit)
            ).documents
            assert truncated == full[:limit]

    def test_non_score_sort_not_truncated_early(self, source1, ranking_query):
        """A custom sort order must see the whole result before the
        answer limit applies — top-k by score would pick wrong docs."""
        ascending = replace(
            ranking_query,
            sort_keys=(SortKey("score", descending=False),),
            max_number_documents=1,
        )
        full = source1.search(replace(ranking_query, max_number_documents=50))
        worst = min(d.raw_score for d in full.documents)
        results = source1.search(ascending)
        assert len(results.documents) == 1
        assert results.documents[0].raw_score == worst

    def test_min_score_composes_with_truncation(self, source1, ranking_query):
        full = source1.search(ranking_query).documents
        cutoff = full[1].raw_score
        query = replace(
            ranking_query, min_document_score=cutoff, max_number_documents=1
        )
        results = source1.search(query).documents
        assert [d.linkage for d in results] == [full[0].linkage]


class TestProtocolBehaviour:
    def test_invalid_query_rejected(self, source1):
        from repro.starts.errors import ProtocolError

        with pytest.raises(ProtocolError):
            source1.search(SQuery())

    def test_untranslatable_query_returns_empty_results(self):
        source = StartsSource(
            "RankOnly",
            source1_documents(),
            capabilities=SourceCapabilities(query_parts="R"),
        )
        query = SQuery(filter_expression=parse_expression('(title "databases")'))
        results = source.search(query)
        assert results.documents == ()
        assert results.actual_filter_expression is None

    def test_sources_attribute_names_this_source(self, source1, ranking_query):
        results = source1.search(ranking_query)
        assert results.sources == ("Source-1",)
        for doc in results.documents:
            assert doc.sources == ("Source-1",)

    def test_stateless_repeated_queries_identical(self, source1, ranking_query):
        first = source1.search(ranking_query)
        second = source1.search(ranking_query)
        assert first == second

    def test_boolean_only_engine_downgrades_declared_parts(self):
        source = StartsSource(
            "Grep",
            source1_documents(),
            engine=SearchEngine(ranking=None),
            capabilities=SourceCapabilities(query_parts="RF"),
        )
        assert source.capabilities.query_parts == "F"


class TestMetadataExport:
    def test_metadata_reflects_capabilities(self, source1):
        metadata = source1.metadata()
        assert metadata.supports_field("author")
        assert metadata.turn_off_stop_words
        assert metadata.score_range == (0.0, 1.0)

    def test_restricted_capabilities_visible(self):
        source = StartsSource(
            "Limited",
            source1_documents(),
            capabilities=SourceCapabilities.full_basic1().without_fields("author"),
        )
        assert not source.metadata().supports_field("author")

    def test_stop_word_list_exported(self, source1):
        assert "the" in source1.metadata().stop_word_list

    def test_urls_derive_from_base(self):
        source = StartsSource("S", source1_documents(), base_url="http://h.org/s")
        metadata = source.metadata()
        assert metadata.linkage == "http://h.org/s/query"
        assert metadata.content_summary_linkage == "http://h.org/s/cont_sum.txt"
        assert metadata.sample_database_results == "http://h.org/s/sample"

    def test_optional_attributes_passed_through(self):
        source = StartsSource(
            "S",
            source1_documents(),
            abstract="CS papers",
            contact="admin@example.org",
            access_constraints="none",
            date_changed="1996-03-31",
        )
        metadata = source.metadata()
        assert metadata.abstract == "CS papers"
        assert metadata.contact == "admin@example.org"
        assert metadata.date_changed == "1996-03-31"


class TestContentSummary:
    def test_summary_counts_documents(self, source1):
        assert source1.content_summary().num_docs == 3

    def test_summary_contains_body_words(self, source1):
        summary = source1.content_summary()
        assert summary.document_frequency("databases") > 0

    def test_truncation_keeps_most_frequent(self, source1):
        full = source1.content_summary()
        small = source1.content_summary(max_words_per_section=3)
        assert small.vocabulary_size() < full.vocabulary_size()
        # The dominant body word survives truncation.
        assert small.document_frequency("databases") > 0


class TestSampleResults:
    def test_sample_results_round_trip(self, source1):
        from repro.source.sample import SampleResults
        from repro.starts.soif import parse_soif

        sample = source1.sample_results()
        parsed = SampleResults.from_soif(parse_soif(sample.to_soif().dump()))
        assert parsed == sample

    def test_scores_respect_engine_range(self, source1):
        sample = source1.sample_results()
        for score in sample.all_scores():
            assert 0.0 <= score <= 1.0
