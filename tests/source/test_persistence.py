"""Whole-source persistence: identical behaviour after reload."""

import pytest

from repro.corpus import source1_documents
from repro.engine.persistence import PersistenceError
from repro.source import SourceCapabilities, StartsSource
from repro.source.persistence import load_source, save_source
from repro.starts import SQuery, parse_expression
from repro.vendors import build_vendor_source


def queries():
    yield SQuery(
        filter_expression=parse_expression(
            '((author "Ullman") and (title stem "databases"))'
        ),
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
    )
    yield SQuery(
        ranking_expression=parse_expression('list((body-of-text "databases"))'),
        max_number_documents=2,
    )


class TestRoundTrip:
    def test_search_identical_after_reload(self, tmp_path):
        original = StartsSource("Persisted", source1_documents())
        save_source(original, tmp_path)
        restored = load_source(tmp_path)
        for query in queries():
            assert original.search(query) == restored.search(query)

    def test_metadata_identical_after_reload(self, tmp_path):
        original = StartsSource(
            "Persisted",
            source1_documents(),
            abstract="CS papers",
            date_changed="1996-03-31",
        )
        save_source(original, tmp_path)
        restored = load_source(tmp_path)
        assert restored.metadata() == original.metadata()

    def test_content_summary_identical(self, tmp_path):
        original = StartsSource("Persisted", source1_documents())
        save_source(original, tmp_path)
        restored = load_source(tmp_path)
        assert restored.content_summary() == original.content_summary()

    def test_vendor_source_round_trip(self, tmp_path):
        """A vendor with quirks (BM25, whitespace tokenizer, restricted
        capabilities, native syntax) survives persistence."""
        original = build_vendor_source("OkapiWorks", "Okapi-P", source1_documents())
        save_source(original, tmp_path)
        restored = load_source(tmp_path)
        assert restored.metadata() == original.metadata()
        for query in queries():
            assert original.search(query) == restored.search(query)
        # Free-form support persisted with the native syntax.
        free_form = SQuery(
            filter_expression=parse_expression('(free-form-text "+databases")')
        )
        assert original.search(free_form) == restored.search(free_form)

    def test_boolean_only_source(self, tmp_path):
        original = StartsSource(
            "Grep-P",
            source1_documents(),
            capabilities=SourceCapabilities(query_parts="F"),
        )
        save_source(original, tmp_path)
        restored = load_source(tmp_path)
        assert restored.capabilities.query_parts == "F"
        assert restored.engine.ranking is not None  # default engine ranking kept


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_source(tmp_path / "nothing-here")

    def test_corrupt_ranking_id(self, tmp_path):
        import json

        original = StartsSource("P", source1_documents())
        save_source(original, tmp_path)
        payload = json.loads((tmp_path / "source.json").read_text())
        payload["ranking"] = "NoSuch-1"
        (tmp_path / "source.json").write_text(json.dumps(payload))
        with pytest.raises(PersistenceError, match="ranking"):
            load_source(tmp_path)
