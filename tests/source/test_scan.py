"""The Scan term-browse extension."""

import pytest

from repro.source.scan import ScanEntry, ScanRequest, ScanResponse
from repro.starts.soif import parse_soif


class TestScanAtSource:
    def test_alphabetic_slice_from_start_term(self, source1):
        response = source1.scan("body-of-text", "d", count=5)
        words = [entry.word for entry in response.entries]
        assert words == sorted(words)
        assert all(word >= "d" for word in words)
        assert len(words) == 5

    def test_statistics_carried(self, source1):
        response = source1.scan("body-of-text", "databases", count=1)
        entry = response.entries[0]
        assert entry.word == "databases"
        assert entry.postings >= entry.document_frequency >= 1

    def test_field_aliases_resolve(self, source1):
        response = source1.scan("Title", "a", count=3)
        assert response.field == "title"

    def test_empty_beyond_vocabulary(self, source1):
        assert source1.scan("body-of-text", "zzzz").entries == ()

    def test_unknown_field_is_empty(self, source1):
        assert source1.scan("abstract", "").entries == ()

    def test_start_of_vocabulary(self, source1):
        response = source1.scan("author", "", count=100)
        assert response.entries  # full author vocabulary


class TestScanWire:
    def test_request_round_trip(self):
        request = ScanRequest("title", "data", 25)
        parsed = ScanRequest.from_soif(parse_soif(request.to_soif().dump()))
        assert parsed == request

    def test_response_round_trip(self):
        response = ScanResponse(
            "title",
            (ScanEntry("algorithm", 100, 53), ScanEntry("analysis", 50, 23)),
        )
        assert ScanResponse.parse(response.to_soif().dump()) == response

    def test_scan_over_the_wire(self, source1):
        from repro.transport import SimulatedInternet, StartsClient, publish_source

        internet = SimulatedInternet()
        publish_source(internet, source1)
        client = StartsClient(internet)
        response = client.scan(
            f"{source1.base_url}/scan", "body-of-text", "data", count=4
        )
        assert response == source1.scan("body-of-text", "data", count=4)
