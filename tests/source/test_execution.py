"""Query down-translation: pruning, degradation, stop words."""

import pytest

from repro.engine.query import BooleanQuery, ListQuery, ProxQuery, TermQuery
from repro.source.capabilities import SourceCapabilities
from repro.source.execution import QueryTranslator
from repro.starts.parser import parse_expression
from repro.text.analysis import Analyzer


def translator(capabilities=None):
    return QueryTranslator(
        capabilities or SourceCapabilities.full_basic1(), Analyzer()
    )


def filter_outcome(text, capabilities=None, drop_stop_words=True):
    return translator(capabilities).translate_filter(
        parse_expression(text), drop_stop_words
    )


def ranking_outcome(text, capabilities=None, drop_stop_words=True):
    return translator(capabilities).translate_ranking(
        parse_expression(text), drop_stop_words
    )


class TestLosslessTranslation:
    def test_supported_query_passes_through(self):
        outcome = filter_outcome('((author "Ullman") and (title "databases"))')
        assert outcome.dropped == []
        assert outcome.actual.serialize() == (
            '((author "Ullman") and (title "databases"))'
        )
        assert isinstance(outcome.engine_query, BooleanQuery)

    def test_none_expression(self):
        outcome = translator().translate_filter(None, True)
        assert outcome.actual is None and outcome.engine_query is None


class TestFieldPruning:
    def test_unsupported_field_drops_term(self):
        caps = SourceCapabilities.full_basic1().without_fields("author")
        outcome = filter_outcome('((author "Ullman") and (title "db"))', caps)
        assert outcome.actual.serialize() == '(title "db")'
        assert any("author" in note for note in outcome.dropped)

    def test_or_survives_single_operand(self):
        caps = SourceCapabilities.full_basic1().without_fields("author")
        outcome = filter_outcome('((author "x") or (title "y"))', caps)
        assert outcome.actual.serialize() == '(title "y")'

    def test_everything_dropped_yields_none(self):
        caps = SourceCapabilities.full_basic1().without_fields("author")
        outcome = filter_outcome('(author "x")', caps)
        assert outcome.actual is None
        assert outcome.engine_query is None


class TestModifierPruning:
    def test_unsupported_modifier_keeps_term(self):
        caps = SourceCapabilities.full_basic1().without_modifiers("stem")
        outcome = filter_outcome('(title stem "databases")', caps)
        assert outcome.actual.serialize() == '(title "databases")'
        assert any("stem" in note for note in outcome.dropped)

    def test_illegal_combination_drops_modifier(self):
        caps = SourceCapabilities(
            combinations=frozenset({("title", "stem")}),
        )
        outcome = filter_outcome('(author stem "Ullman")', caps)
        assert outcome.actual.serialize() == '(author "Ullman")'


class TestAndNotPruning:
    def test_negative_side_dropped_keeps_positive(self):
        caps = SourceCapabilities.full_basic1().without_fields("author")
        outcome = filter_outcome('((title "x") and-not (author "y"))', caps)
        assert outcome.actual.serialize() == '(title "x")'

    def test_positive_side_dropped_kills_branch(self):
        caps = SourceCapabilities.full_basic1().without_fields("author")
        outcome = filter_outcome('((author "x") and-not (title "y"))', caps)
        assert outcome.actual is None


class TestProxDegradation:
    def test_prox_unsupported_becomes_and(self):
        caps = SourceCapabilities(supports_prox=False)
        outcome = filter_outcome('((title "alpha") prox[2,T] (title "beta"))', caps)
        assert " and " in outcome.actual.serialize()
        assert isinstance(outcome.engine_query, BooleanQuery)

    def test_prox_supported_stays_prox(self):
        outcome = filter_outcome('((title "alpha") prox[2,T] (title "beta"))')
        assert isinstance(outcome.engine_query, ProxQuery)
        assert outcome.engine_query.distance == 2

    def test_prox_with_dropped_operand_degrades_to_survivor(self):
        caps = SourceCapabilities.full_basic1().without_fields("author")
        outcome = filter_outcome('((title "alpha") prox[2,T] (author "beta"))', caps)
        assert outcome.actual.serialize() == '(title "alpha")'


class TestQueryParts:
    def test_filter_only_source_ignores_ranking(self):
        caps = SourceCapabilities(query_parts="F")
        outcome = ranking_outcome('list("x" "y")', caps)
        assert outcome.actual is None
        assert "unsupported" in outcome.dropped[0]

    def test_ranking_only_source_ignores_filter(self):
        caps = SourceCapabilities(query_parts="R")
        outcome = filter_outcome('(title "x")', caps)
        assert outcome.actual is None


class TestStopWords:
    def test_stop_word_terms_eliminated(self):
        outcome = ranking_outcome('list((body-of-text "the") (body-of-text "databases"))')
        assert [t.lstring.text for t in outcome.actual.terms()] == ["databases"]
        assert any("stop word" in note for note in outcome.dropped)

    def test_elimination_disabled_when_requested(self):
        outcome = ranking_outcome(
            'list((body-of-text "the") (body-of-text "who"))', drop_stop_words=False
        )
        assert len(outcome.actual.terms()) == 2

    def test_forced_elimination_when_source_cannot_disable(self):
        caps = SourceCapabilities(turn_off_stop_words=False)
        outcome = ranking_outcome(
            'list((body-of-text "the") (body-of-text "databases"))',
            caps,
            drop_stop_words=False,
        )
        assert [t.lstring.text for t in outcome.actual.terms()] == ["databases"]

    def test_spanish_stop_words_by_language_qualifier(self):
        outcome = ranking_outcome('list((body-of-text [es "el"]) (body-of-text [es "datos"]))')
        assert [t.lstring.text for t in outcome.actual.terms()] == ["datos"]


class TestEngineConversion:
    def test_multiword_filter_term_becomes_and(self):
        outcome = filter_outcome('(author "Jeffrey Ullman")')
        query = outcome.engine_query
        assert isinstance(query, BooleanQuery) and query.operator == "and"
        assert [t.text for t in query.terms()] == ["jeffrey", "ullman"]

    def test_multiword_ranking_term_becomes_list(self):
        outcome = ranking_outcome('(body-of-text "distributed databases")')
        assert isinstance(outcome.engine_query, ListQuery)

    def test_date_value_not_tokenized(self):
        outcome = filter_outcome('(date-last-modified > "1996-08-01")')
        assert isinstance(outcome.engine_query, TermQuery)
        assert outcome.engine_query.text == "1996-08-01"

    def test_weights_carried_to_engine(self):
        outcome = ranking_outcome('list(("distributed" 0.7) ("databases" 0.3))')
        assert [t.weight for t in outcome.engine_query.terms()] == [0.7, 0.3]

    def test_language_carried_to_engine(self):
        outcome = ranking_outcome('(body-of-text [es "datos"])')
        assert outcome.engine_query.language == "es"
