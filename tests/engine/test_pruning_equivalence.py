"""Rank safety of the pruned evaluator: bit-exact against the oracles.

``evaluation="pruned"`` promises the exhaustive answer for less work:
same documents, same float scores, same order, same TermStats — across
every ranking algorithm, both storage backends, and any mid-history
mix of flushes, merges, and tombstones.  Shapes the MaxScore driver
cannot bound (filters, Boolean/prox trees, unprunable algorithms, no
top-k or score floor) must fall back to term-at-a-time transparently.
"""

import random
import tempfile
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.evaluation import (
    DOCUMENT_AT_A_TIME,
    PRUNED,
    TERM_AT_A_TIME,
    hit_order_key,
    top_k_hits,
)
from repro.engine.pruning import PrunedContext, supports_pruning
from repro.engine.query import AND_NOT, BooleanQuery, ListQuery, ProxQuery, TermQuery
from repro.engine.ranking import RANKING_ALGORITHMS
from repro.engine.search import SearchEngine
from repro.observability.metrics import MetricsRegistry, set_registry

ALGORITHMS = sorted(RANKING_ALGORITHMS)

#: Same expansion-rich vocabulary the TAAT/DAAT equivalence suite uses:
#: stem family, Soundex pair, thesaurus group, shared prefixes/suffixes.
VOCAB = [
    "connect",
    "connected",
    "connection",
    "retention",
    "smith",
    "smyth",
    "database",
    "databank",
    "datastore",
    "gamma",
    "delta",
    "epsilon",
    "zeta",
]


def t(text, weight=1.0, field=F.BODY_OF_TEXT, modifiers=()):
    return TermQuery(field, text, modifiers=frozenset(modifiers), weight=weight)


def make_documents(seed: int, n_docs: int) -> list[Document]:
    rng = random.Random(seed)
    documents = []
    for index in range(n_docs):
        body = " ".join(rng.choices(VOCAB, k=rng.randint(3, 25)))
        fields = {F.BODY_OF_TEXT: body}
        if rng.random() < 0.5:
            fields[F.TITLE] = " ".join(rng.choices(VOCAB, k=rng.randint(1, 4)))
        engine_fields = fields
        documents.append(Document(f"http://x/{index}", engine_fields))
    return documents


def build_engine(algorithm_id: str, seed: int, n_docs: int = 30) -> SearchEngine:
    engine = SearchEngine(ranking=RANKING_ALGORITHMS[algorithm_id]())
    for document in make_documents(seed, n_docs):
        engine.add(document)
    return engine


def build_segmented_engine(
    algorithm_id: str,
    seed: int,
    directory,
    n_docs: int = 30,
    flush_every: int | None = 10,
    merge: bool = False,
    tombstones: tuple[int, ...] = (),
) -> SearchEngine:
    """A segment-backed engine with a configurable storage history."""
    engine = SearchEngine(
        ranking=RANKING_ALGORITHMS[algorithm_id](),
        storage="segments",
        storage_dir=pathlib.Path(directory) / "store",
    )
    for index, document in enumerate(make_documents(seed, n_docs)):
        engine.add(document)
        if flush_every and (index + 1) % flush_every == 0:
            engine.flush()
    for index in tombstones:
        engine.tombstone(f"http://x/{index}")
    if merge:
        engine.flush()
        assert engine.segment_store is not None
        engine.segment_store.merge_all()
    return engine


def assert_pruned_equivalent(engine, **kwargs):
    """The same search, exhaustive then pruned, must match exactly."""
    engine.evaluation = TERM_AT_A_TIME
    oracle = engine.search(**kwargs)
    engine.evaluation = PRUNED
    pruned = engine.search(**kwargs)
    engine.evaluation = TERM_AT_A_TIME
    assert pruned == oracle  # doc ids, exact scores, order, TermStats
    return oracle


QUERY = ListQuery((t("connect", 0.9), t("database", 0.4), t("gamma", 0.1)))


@pytest.mark.parametrize("algorithm_id", ALGORITHMS)
class TestMemoryBackend:
    def test_truncated_weighted_list(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=1, n_docs=40)
        for top_k in (1, 3, 10, 40, 10_000):
            assert_pruned_equivalent(engine, ranking_query=QUERY, top_k=top_k)

    def test_min_score_only(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=2, n_docs=40)
        engine.evaluation = TERM_AT_A_TIME
        full = engine.search(ranking_query=QUERY)
        for position in (0, len(full) // 2, -1):
            floor = full[position].score if full else 0.5
            assert_pruned_equivalent(
                engine, ranking_query=QUERY, min_score=floor
            )

    def test_top_k_and_min_score_combined(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=3, n_docs=40)
        engine.evaluation = TERM_AT_A_TIME
        full = engine.search(ranking_query=QUERY)
        floor = full[len(full) // 2].score if full else 0.1
        for top_k in (1, 5, 20):
            assert_pruned_equivalent(
                engine, ranking_query=QUERY, top_k=top_k, min_score=floor
            )

    def test_single_term_and_duplicates(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=4, n_docs=40)
        assert_pruned_equivalent(engine, ranking_query=t("connect"), top_k=5)
        assert_pruned_equivalent(
            engine,
            ranking_query=ListQuery((t("gamma", 0.3), t("gamma", 0.8), t("delta"))),
            top_k=5,
        )

    def test_modifier_expansions(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=5, n_docs=40)
        for modifiers, text in (
            (("stem",), "connected"),
            (("phonetic",), "smith"),
            (("thesaurus",), "database"),
            (("right-truncation",), "data"),
            (("left-truncation",), "tion"),
        ):
            query = ListQuery((t(text, modifiers=modifiers), t("gamma", 0.5)))
            assert_pruned_equivalent(engine, ranking_query=query, top_k=4)

    def test_any_field_fanout(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=6, n_docs=40)
        query = ListQuery(
            (t("smith", field=F.ANY), t("database", field=F.ANY, weight=0.6))
        )
        assert_pruned_equivalent(engine, ranking_query=query, top_k=3)

    def test_absent_term(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=7)
        query = ListQuery((t("gamma"), t("nosuchword")))
        assert_pruned_equivalent(engine, ranking_query=query, top_k=5)

    def test_against_document_at_a_time_too(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=8, n_docs=40)
        engine.evaluation = DOCUMENT_AT_A_TIME
        oracle = engine.search(ranking_query=QUERY, top_k=7)
        engine.evaluation = PRUNED
        pruned = engine.search(ranking_query=QUERY, top_k=7)
        assert pruned == oracle


@pytest.mark.parametrize("algorithm_id", ALGORITHMS)
class TestSegmentsBackend:
    def test_mixed_tail_and_segments(self, algorithm_id):
        with tempfile.TemporaryDirectory() as tmp:
            engine = build_segmented_engine(
                algorithm_id, seed=11, directory=tmp, n_docs=35, flush_every=10
            )
            for top_k in (1, 5, 35):
                assert_pruned_equivalent(engine, ranking_query=QUERY, top_k=top_k)
            engine.close()

    def test_merged_history(self, algorithm_id):
        with tempfile.TemporaryDirectory() as tmp:
            engine = build_segmented_engine(
                algorithm_id, seed=12, directory=tmp, n_docs=35,
                flush_every=7, merge=True,
            )
            assert_pruned_equivalent(engine, ranking_query=QUERY, top_k=5)
            engine.close()

    def test_tombstoned_history(self, algorithm_id):
        with tempfile.TemporaryDirectory() as tmp:
            engine = build_segmented_engine(
                algorithm_id, seed=13, directory=tmp, n_docs=35,
                flush_every=10, tombstones=(0, 7, 18, 33),
            )
            for top_k in (1, 5, 35):
                assert_pruned_equivalent(engine, ranking_query=QUERY, top_k=top_k)
            engine.close()

    def test_tombstones_then_merge(self, algorithm_id):
        with tempfile.TemporaryDirectory() as tmp:
            engine = build_segmented_engine(
                algorithm_id, seed=14, directory=tmp, n_docs=35,
                flush_every=10, tombstones=(2, 11, 29), merge=True,
            )
            engine.evaluation = TERM_AT_A_TIME
            full = engine.search(ranking_query=QUERY)
            floor = full[len(full) // 2].score if full else 0.1
            assert_pruned_equivalent(
                engine, ranking_query=QUERY, top_k=5, min_score=floor
            )
            engine.close()


# -- fallback shapes ------------------------------------------------------


class TestFallback:
    def test_unsupported_shapes_fall_back(self):
        ranking = RANKING_ALGORITHMS["Okapi-1"]()
        assert supports_pruning(ranking, QUERY, 5, 0.0)
        # No bound to prune against.
        assert not supports_pruning(ranking, QUERY, None, 0.0)
        # Non-flat shapes.
        boolean = BooleanQuery(AND_NOT, (t("gamma"), t("smith")))
        assert not supports_pruning(ranking, boolean, 5, 0.0)
        prox = ListQuery((ProxQuery(t("gamma"), t("delta"), 2, True),))
        assert not supports_pruning(ranking, prox, 5, 0.0)
        # Negative weights break the non-negativity the bounds need.
        negative = ListQuery((t("gamma", weight=-1.0), t("delta")))
        assert not supports_pruning(ranking, negative, 5, 0.0)
        # Unprunable algorithm (top-document rescaling).
        zeus = RANKING_ALGORITHMS["Zeus-1000"]()
        assert not supports_pruning(zeus, QUERY, 5, 0.0)
        # Boolean-only engine.
        assert not supports_pruning(None, QUERY, 5, 0.0)

    @pytest.mark.parametrize("algorithm_id", ALGORITHMS)
    def test_fallback_results_still_exact(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=21, n_docs=30)
        # Filters force the fallback path even under evaluation="pruned".
        assert_pruned_equivalent(
            engine,
            filter_query=BooleanQuery("or", (t("gamma"), t("smith"))),
            ranking_query=QUERY,
            top_k=5,
        )
        # Boolean ranking trees and prox fall back too.
        assert_pruned_equivalent(
            engine,
            ranking_query=BooleanQuery("and", (t("connect"), t("database"))),
            top_k=5,
        )
        assert_pruned_equivalent(
            engine,
            ranking_query=ListQuery((ProxQuery(t("gamma"), t("delta"), 2, False),)),
            top_k=5,
        )
        # Untruncated, unfloored searches are exhaustive by definition.
        assert_pruned_equivalent(engine, ranking_query=QUERY)

    def test_filter_only_and_empty_queries(self):
        engine = build_engine("Acme-1", seed=22)
        engine.evaluation = PRUNED
        assert engine.search() == []
        hits = engine.search(filter_query=t("gamma"), top_k=3)
        assert all(hit.score == 0.0 for hit in hits)


# -- the kth-boundary tie contract ----------------------------------------


class TestTieDeterminism:
    def _tied_engine(self):
        # Identical documents produce exactly equal scores; with eight
        # clones, any top-k inside the run of duplicates exercises the
        # kth-boundary tie-break.
        engine = SearchEngine(ranking=RANKING_ALGORITHMS["Okapi-1"]())
        for index in range(8):
            engine.add(
                Document(f"http://tie/{index}", {F.BODY_OF_TEXT: "gamma delta gamma"})
            )
        for index in range(4):
            engine.add(
                Document(f"http://other/{index}", {F.BODY_OF_TEXT: "delta epsilon"})
            )
        return engine

    def test_order_key_contract(self):
        scores = {3: 0.5, 1: 0.5, 2: 0.7, 9: 0.5, 4: 0.1}
        selected = top_k_hits(scores, None)
        assert selected == sorted(scores.items(), key=hit_order_key)
        assert [doc_id for doc_id, _ in selected] == [2, 1, 3, 9, 4]

    def test_duplicate_scores_straddling_k(self):
        engine = self._tied_engine()
        engine.evaluation = TERM_AT_A_TIME
        query = ListQuery((t("gamma"), t("delta", 0.5)))
        full = engine.search(ranking_query=query)
        tied = [hit.doc_id for hit in full if hit.score == full[0].score]
        assert len(tied) >= 8 and tied == sorted(tied)
        # Every cut inside the tie run keeps the lowest doc ids, on
        # both the heap-selected exhaustive path and the pruned path.
        for top_k in range(1, len(full) + 1):
            truncated = engine.search(ranking_query=query, top_k=top_k)
            assert truncated == full[:top_k]
            engine.evaluation = PRUNED
            pruned = engine.search(ranking_query=query, top_k=top_k)
            engine.evaluation = TERM_AT_A_TIME
            assert pruned == full[:top_k]

    def test_min_score_exactly_at_tie(self):
        engine = self._tied_engine()
        query = ListQuery((t("gamma"), t("delta", 0.5)))
        engine.evaluation = TERM_AT_A_TIME
        full = engine.search(ranking_query=query)
        # A floor equal to the tied score keeps the whole run (>=).
        assert_pruned_equivalent(
            engine, ranking_query=query, min_score=full[0].score
        )


# -- counters and metrics -------------------------------------------------


class TestPruningObservability:
    def test_pruning_actually_skips(self):
        engine = build_engine("Okapi-1", seed=31, n_docs=200)
        query = ListQuery((t("connect", 2.0), t("gamma"), t("zeta", 0.5)))
        assert supports_pruning(engine.ranking, query, 5, 0.0)
        context = PrunedContext(engine, query, top_k=5, min_score=0.0)
        context.hits()
        assert context.postings_skipped > 0
        assert context.threshold > 0.0

    def test_blockmax_skips_on_segments(self):
        with tempfile.TemporaryDirectory() as tmp:
            engine = build_segmented_engine(
                "Okapi-1", seed=32, directory=tmp, n_docs=400, flush_every=200
            )
            query = ListQuery((t("connect", 2.0), t("gamma"), t("zeta", 0.5)))
            context = PrunedContext(engine, query, top_k=3, min_score=0.0)
            context.hits()
            assert context.postings_skipped > 0
            engine.close()

    def test_metrics_emitted_and_disabled_neutral(self):
        registry = MetricsRegistry()
        set_registry(registry)
        try:
            engine = build_engine("Okapi-1", seed=33, n_docs=100)
            engine.evaluation = PRUNED
            baseline = engine.search(ranking_query=QUERY, top_k=3)
            families = {family.name for family in registry.families()}
            assert "engine_prune_threshold" in families
            assert "engine_postings_skipped_total" in families
            # Disabled registry: identical hits, nothing recorded.
            disabled = MetricsRegistry.disabled()
            set_registry(disabled)
            assert engine.search(ranking_query=QUERY, top_k=3) == baseline
            assert not disabled.families()
        finally:
            set_registry(MetricsRegistry())


# -- randomized corpora and queries (hypothesis) --------------------------

_terms = st.sampled_from(VOCAB)
_weights = st.sampled_from([1.0, 0.9, 0.5, 0.25, 0.0])
_modifiers = st.sampled_from(
    [(), ("stem",), ("phonetic",), ("thesaurus",), ("right-truncation",)]
)


@st.composite
def flat_queries(draw):
    """Shapes the pruned driver accepts: a term or a list of terms."""
    n_children = draw(st.integers(1, 4))
    children = tuple(
        TermQuery(
            F.BODY_OF_TEXT,
            draw(_terms),
            modifiers=frozenset(draw(_modifiers)),
            weight=draw(_weights),
        )
        for _ in range(n_children)
    )
    if n_children == 1 and draw(st.booleans()):
        return children[0]
    return ListQuery(children)


@settings(max_examples=120, deadline=None)
@given(
    algorithm_id=st.sampled_from(ALGORITHMS),
    seed=st.integers(0, 7),
    query=flat_queries(),
    top_k=st.sampled_from([None, 1, 3, 8]),
    floor_quantile=st.sampled_from([None, 0.25, 0.75]),
)
def test_random_queries_equivalent_memory(
    algorithm_id, seed, query, top_k, floor_quantile
):
    engine = build_engine(algorithm_id, seed=seed, n_docs=25)
    min_score = 0.0
    if floor_quantile is not None:
        engine.evaluation = TERM_AT_A_TIME
        full = engine.search(ranking_query=query)
        if full:
            min_score = full[int((len(full) - 1) * floor_quantile)].score
    assert_pruned_equivalent(
        engine, ranking_query=query, top_k=top_k, min_score=min_score
    )


@settings(max_examples=40, deadline=None)
@given(
    algorithm_id=st.sampled_from(ALGORITHMS),
    seed=st.integers(0, 3),
    query=flat_queries(),
    top_k=st.sampled_from([1, 4]),
    history=st.sampled_from(
        [
            {"flush_every": None},
            {"flush_every": 8},
            {"flush_every": 8, "merge": True},
            {"flush_every": 10, "tombstones": (1, 9, 17)},
            {"flush_every": 6, "tombstones": (0, 12), "merge": True},
        ]
    ),
)
def test_random_queries_equivalent_segments(
    algorithm_id, seed, query, top_k, history
):
    with tempfile.TemporaryDirectory() as tmp:
        engine = build_segmented_engine(
            algorithm_id, seed=seed, directory=tmp, n_docs=25, **history
        )
        try:
            assert_pruned_equivalent(engine, ranking_query=query, top_k=top_k)
        finally:
            engine.close()
