"""Engine persistence: save/load round trips and config guards."""

import pytest

from repro.corpus import source1_documents
from repro.engine import fields as F
from repro.engine.persistence import PersistenceError, load_engine, save_engine
from repro.engine.query import BooleanQuery, ListQuery, ProxQuery, TermQuery
from repro.engine.ranking import Bm25
from repro.engine.search import SearchEngine
from repro.text.analysis import Analyzer


def build_engine(**analyzer_kwargs):
    engine = SearchEngine(analyzer=Analyzer(**analyzer_kwargs))
    engine.add_all(source1_documents())
    return engine


def t(text, field=F.BODY_OF_TEXT, **kwargs):
    return TermQuery(field, text, **kwargs)


class TestRoundTrip:
    def test_search_results_identical(self, tmp_path):
        original = build_engine()
        path = tmp_path / "index.json"
        save_engine(original, path)
        restored = load_engine(SearchEngine(), path)

        queries = [
            (t("databases"), None),
            (BooleanQuery("and", (t("distributed"), t("databases"))), None),
            (None, ListQuery((t("distributed"), t("databases")))),
            (ProxQuery(t("deductive"), t("databases"), 1, True), None),
        ]
        for filter_query, ranking_query in queries:
            assert original.search(filter_query, ranking_query) == restored.search(
                filter_query, ranking_query
            )

    def test_documents_preserved(self, tmp_path):
        original = build_engine()
        path = tmp_path / "index.json"
        save_engine(original, path)
        restored = load_engine(SearchEngine(), path)
        assert restored.document_count == original.document_count
        for doc_id in original.store.ids():
            assert restored.store[doc_id] == original.store[doc_id]
            assert restored.store.token_count(doc_id) == original.store.token_count(
                doc_id
            )

    def test_summary_statistics_preserved(self, tmp_path):
        original = build_engine()
        path = tmp_path / "index.json"
        save_engine(original, path)
        restored = load_engine(SearchEngine(), path)
        assert restored.index.summary_sections() == original.index.summary_sections()

    def test_modifier_lookups_work_after_load(self, tmp_path):
        original = build_engine()
        path = tmp_path / "index.json"
        save_engine(original, path)
        restored = load_engine(SearchEngine(), path)
        stemmed = t("databases", modifiers=frozenset({"stem"}))
        assert restored.evaluate_filter(stemmed) == original.evaluate_filter(stemmed)

    def test_stemming_engine_round_trip(self, tmp_path):
        original = SearchEngine(analyzer=Analyzer(stem=True))
        original.add_all(source1_documents())
        path = tmp_path / "stem.json"
        save_engine(original, path)
        restored = load_engine(SearchEngine(analyzer=Analyzer(stem=True)), path)
        query = t("database")  # stems to "databas" in both engines
        assert restored.evaluate_filter(query) == original.evaluate_filter(query)


class TestAtomicSaves:
    def test_interrupted_save_leaves_previous_file_intact(
        self, tmp_path, monkeypatch
    ):
        """A crash between writing the temp file and publishing it must
        leave the previously saved index untouched and loadable."""
        import os as os_module

        import repro.storage.manifest as manifest_module

        path = tmp_path / "index.json"
        original = build_engine()
        save_engine(original, path)
        before = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(manifest_module.os, "replace", exploding_replace)
        bigger = build_engine()
        bigger.add_all(source1_documents())
        with pytest.raises(OSError, match="simulated crash"):
            save_engine(bigger, path)
        monkeypatch.setattr(manifest_module.os, "replace", os_module.replace)

        assert path.read_bytes() == before
        restored = load_engine(SearchEngine(), path)
        assert restored.document_count == original.document_count

    def test_save_never_writes_target_directly(self, tmp_path, monkeypatch):
        """Even with no prior file, an interrupted save leaves no torn
        file under the target name — only a temp beside it."""
        import repro.storage.manifest as manifest_module

        path = tmp_path / "index.json"

        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(manifest_module.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_engine(build_engine(), path)
        assert not path.exists()


class TestGuards:
    def test_analyzer_mismatch_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        save_engine(build_engine(), path)
        with pytest.raises(PersistenceError, match="analyzer mismatch"):
            load_engine(SearchEngine(analyzer=Analyzer(stem=True)), path)

    def test_nonempty_engine_rejected(self, tmp_path):
        path = tmp_path / "index.json"
        save_engine(build_engine(), path)
        target = build_engine()
        with pytest.raises(PersistenceError, match="empty"):
            load_engine(target, path)

    def test_version_mismatch_rejected(self, tmp_path):
        import json

        path = tmp_path / "index.json"
        save_engine(build_engine(), path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(PersistenceError, match="version"):
            load_engine(SearchEngine(), path)

    def test_ranking_mismatch_rejected(self, tmp_path):
        """A BM25 engine must not silently re-score a cosine-saved
        index — exported scores and metadata would differ."""
        path = tmp_path / "index.json"
        save_engine(build_engine(), path)
        with pytest.raises(PersistenceError, match="ranking mismatch"):
            load_engine(SearchEngine(ranking=Bm25()), path)

    def test_matching_ranking_accepted(self, tmp_path):
        path = tmp_path / "index.json"
        original = SearchEngine(ranking=Bm25())
        original.add_all(source1_documents())
        save_engine(original, path)
        restored = load_engine(SearchEngine(ranking=Bm25()), path)
        query = ListQuery((t("databases"),))
        assert restored.search(ranking_query=query) == original.search(
            ranking_query=query
        )
