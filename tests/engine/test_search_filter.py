"""Boolean filter evaluation: and/or/and-not/prox and date comparisons."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.query import BooleanQuery, ListQuery, ProxQuery, TermQuery
from repro.engine.search import SearchEngine


@pytest.fixture
def engine():
    e = SearchEngine()
    e.add(Document("http://x/0", {
        F.TITLE: "distributed databases",
        F.AUTHOR: "Ullman",
        F.BODY_OF_TEXT: "distributed databases on networks",
        F.DATE_LAST_MODIFIED: "1996-08-15",
    }))
    e.add(Document("http://x/1", {
        F.TITLE: "operating systems",
        F.AUTHOR: "Silberschatz",
        F.BODY_OF_TEXT: "kernels and systems but also databases sometimes",
        F.DATE_LAST_MODIFIED: "1995-02-01",
    }))
    e.add(Document("http://x/2", {
        F.TITLE: "networks",
        F.AUTHOR: "Tanenbaum",
        F.BODY_OF_TEXT: "networks route packets",
        F.DATE_LAST_MODIFIED: "1996-01-01",
    }))
    return e


def t(text, field=F.BODY_OF_TEXT, **kwargs):
    return TermQuery(field, text, **kwargs)


class TestBooleanOperators:
    def test_and(self, engine):
        q = BooleanQuery("and", (t("distributed"), t("databases")))
        assert engine.evaluate_filter(q) == {0}

    def test_or(self, engine):
        q = BooleanQuery("or", (t("distributed"), t("packets")))
        assert engine.evaluate_filter(q) == {0, 2}

    def test_and_not(self, engine):
        q = BooleanQuery("and-not", (t("databases"), t("distributed")))
        assert engine.evaluate_filter(q) == {1}

    def test_nary_and(self, engine):
        q = BooleanQuery("and", (t("databases"), t("networks"), t("distributed")))
        assert engine.evaluate_filter(q) == {0}

    def test_fields_restrict_matches(self, engine):
        assert engine.evaluate_filter(t("networks", field=F.TITLE)) == {2}
        assert engine.evaluate_filter(t("networks", field=F.BODY_OF_TEXT)) == {0, 2}

    def test_list_in_filter_position_is_or(self, engine):
        q = ListQuery((t("distributed"), t("packets")))
        assert engine.evaluate_filter(q) == {0, 2}

    def test_empty_result(self, engine):
        assert engine.evaluate_filter(t("nonexistent")) == set()


class TestProximity:
    def test_adjacent_ordered(self, engine):
        q = ProxQuery(t("distributed"), t("databases"), distance=0, ordered=True)
        assert engine.evaluate_filter(q) == {0}

    def test_order_matters_when_ordered(self, engine):
        q = ProxQuery(t("databases"), t("distributed"), distance=0, ordered=True)
        assert engine.evaluate_filter(q) == set()

    def test_unordered_matches_both_directions(self, engine):
        q = ProxQuery(t("databases"), t("distributed"), distance=0, ordered=False)
        assert engine.evaluate_filter(q) == {0}

    def test_distance_counts_intervening_words(self, engine):
        # "databases on networks": one word between databases and networks.
        close = ProxQuery(t("databases"), t("networks"), distance=1, ordered=True)
        tight = ProxQuery(t("databases"), t("networks"), distance=0, ordered=True)
        assert engine.evaluate_filter(close) == {0}
        assert engine.evaluate_filter(tight) == set()

    def test_prox_requires_same_field(self, engine):
        q = ProxQuery(
            t("distributed", field=F.TITLE), t("packets", field=F.TITLE), distance=10
        )
        assert engine.evaluate_filter(q) == set()

    def test_stop_word_gaps_count(self):
        """Positions are preserved across removed stop words, so "kernels
        and systems" has one word between kernels and systems."""
        engine = SearchEngine()
        engine.add(Document("http://x/0", {F.BODY_OF_TEXT: "kernels and systems"}))
        gap1 = ProxQuery(t("kernels"), t("systems"), distance=1, ordered=True)
        gap0 = ProxQuery(t("kernels"), t("systems"), distance=0, ordered=True)
        assert engine.evaluate_filter(gap1) == {0}
        assert engine.evaluate_filter(gap0) == set()


class TestDateComparisons:
    @pytest.mark.parametrize(
        "op,expected",
        [
            (">", {0}),
            (">=", {0}),
            ("<", {1, 2}),
            ("<=", {1, 2}),
            ("=", set()),
            ("!=", {0, 1, 2}),
        ],
    )
    def test_operators(self, engine, op, expected):
        q = t("1996-05-01", field=F.DATE_LAST_MODIFIED, modifiers=frozenset({op}))
        assert engine.evaluate_filter(q) == expected

    def test_exact_date_equality(self, engine):
        q = t("1996-08-15", field=F.DATE_LAST_MODIFIED, modifiers=frozenset({"="}))
        assert engine.evaluate_filter(q) == {0}

    def test_documents_without_dates_never_match(self):
        engine = SearchEngine()
        engine.add(Document("http://x/0", {F.BODY_OF_TEXT: "no date"}))
        q = t("1996-01-01", field=F.DATE_LAST_MODIFIED, modifiers=frozenset({">"}))
        assert engine.evaluate_filter(q) == set()


class TestAlgebraicProperties:
    @given(st.sampled_from(["distributed", "databases", "networks", "systems"]))
    def test_and_subset_of_or(self, word):
        engine = SearchEngine()
        engine.add(Document("http://x/0", {F.BODY_OF_TEXT: "distributed databases"}))
        engine.add(Document("http://x/1", {F.BODY_OF_TEXT: "networks systems"}))
        a, b = t(word), t("databases")
        and_set = engine.evaluate_filter(BooleanQuery("and", (a, b)))
        or_set = engine.evaluate_filter(BooleanQuery("or", (a, b)))
        assert and_set <= or_set

    def test_and_not_disjoint_from_negative(self, engine):
        q = BooleanQuery("and-not", (t("databases"), t("distributed")))
        result = engine.evaluate_filter(q)
        negative = engine.evaluate_filter(t("distributed"))
        assert result.isdisjoint(negative)

    def test_results_within_store(self, engine):
        q = BooleanQuery("or", (t("databases"), t("networks")))
        assert engine.evaluate_filter(q) <= set(engine.store.ids())
