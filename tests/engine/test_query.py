"""Engine query IR construction and validation."""

import pytest

from repro.engine.query import BooleanQuery, ListQuery, ProxQuery, TermQuery


def t(text, field="body-of-text", **kwargs):
    return TermQuery(field, text, **kwargs)


class TestTermQuery:
    def test_defaults(self):
        term = t("databases")
        assert term.language == "en"
        assert term.modifiers == frozenset()
        assert term.weight == 1.0

    def test_with_weight(self):
        assert t("x").with_weight(0.5).weight == 0.5

    def test_comparison_extraction(self):
        assert t("1996-01-01", modifiers=frozenset({">"})).comparison() == ">"
        assert t("x").comparison() is None

    def test_comparison_prefers_two_char_operators(self):
        term = t("d", modifiers=frozenset({">="}))
        assert term.comparison() == ">="

    def test_terms_returns_self(self):
        term = t("x")
        assert term.terms() == [term]


class TestBooleanQuery:
    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BooleanQuery("xor", (t("a"), t("b")))

    def test_and_not_is_binary(self):
        with pytest.raises(ValueError):
            BooleanQuery("and-not", (t("a"), t("b"), t("c")))

    def test_minimum_arity(self):
        with pytest.raises(ValueError):
            BooleanQuery("and", (t("a"),))

    def test_nary_and(self):
        query = BooleanQuery("and", (t("a"), t("b"), t("c")))
        assert [term.text for term in query.terms()] == ["a", "b", "c"]

    def test_nested_terms_traversal(self):
        inner = BooleanQuery("or", (t("b"), t("c")))
        outer = BooleanQuery("and", (t("a"), inner))
        assert [term.text for term in outer.terms()] == ["a", "b", "c"]


class TestProxQuery:
    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            ProxQuery(t("a"), t("b"), distance=-1)

    def test_terms_left_right(self):
        prox = ProxQuery(t("a"), t("b"), 3, True)
        assert [term.text for term in prox.terms()] == ["a", "b"]


class TestListQuery:
    def test_empty_list_allowed(self):
        assert ListQuery().terms() == []

    def test_mixed_children(self):
        query = ListQuery((t("a"), BooleanQuery("and", (t("b"), t("c")))))
        assert [term.text for term in query.terms()] == ["a", "b", "c"]
