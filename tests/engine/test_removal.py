"""Document removal and replacement (compacting rebuild)."""

import pytest

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.query import ListQuery, TermQuery
from repro.engine.search import SearchEngine


def doc(linkage, body, title="t"):
    return Document(linkage, {F.TITLE: title, F.BODY_OF_TEXT: body})


@pytest.fixture
def engine():
    e = SearchEngine()
    e.add(doc("http://x/a", "databases and systems"))
    e.add(doc("http://x/b", "databases everywhere"))
    e.add(doc("http://x/c", "networks only"))
    return e


def t(text):
    return TermQuery(F.BODY_OF_TEXT, text)


class TestRemove:
    def test_removed_document_unfindable(self, engine):
        assert engine.remove("http://x/b")
        linkages = {
            engine.store[hit.doc_id].linkage
            for hit in engine.search(filter_query=t("databases"))
        }
        assert linkages == {"http://x/a"}

    def test_document_count_shrinks(self, engine):
        engine.remove("http://x/b")
        assert engine.document_count == 2

    def test_statistics_exact_after_removal(self, engine):
        engine.remove("http://x/b")
        assert engine.document_frequency(t("databases")) == 1
        summary_df = 0
        for field, _, words in engine.index.summary_sections():
            if field == F.BODY_OF_TEXT and "databases" in words:
                summary_df += words["databases"].document_frequency
        assert summary_df == 1

    def test_missing_linkage_returns_false(self, engine):
        assert not engine.remove("http://nope")
        assert engine.document_count == 3

    def test_remove_equals_fresh_build(self, engine):
        engine.remove("http://x/b")
        fresh = SearchEngine()
        fresh.add(doc("http://x/a", "databases and systems"))
        fresh.add(doc("http://x/c", "networks only"))
        query = ListQuery((t("databases"), t("networks")))
        assert engine.search(ranking_query=query) == fresh.search(ranking_query=query)


class TestReplace:
    def test_replace_updates_content(self, engine):
        engine.replace(doc("http://x/c", "databases now"))
        assert engine.document_count == 3
        assert engine.document_frequency(t("databases")) == 3
        assert engine.document_frequency(t("networks")) == 0

    def test_replace_of_absent_document_adds(self, engine):
        engine.replace(doc("http://x/d", "brand new"))
        assert engine.document_count == 4

    def test_modifier_lookup_after_replace(self, engine):
        engine.replace(doc("http://x/c", "database singular"))
        stemmed = TermQuery(F.BODY_OF_TEXT, "databases", modifiers=frozenset({"stem"}))
        matched = engine.evaluate_filter(stemmed)
        assert len(matched) == 3  # both plural docs + the new singular
