"""Ranking algorithms: ranges, monotonicity, and vendor quirks."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.engine.ranking import (
    RANKING_ALGORITHMS,
    Bm25,
    CosineTfIdf,
    InqueryScorer,
    PivotedCosine,
    ScaledCosine,
)

ALGORITHMS = [CosineTfIdf(), Bm25(), InqueryScorer(), ScaledCosine(), PivotedCosine()]


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.algorithm_id)
class TestCommonProperties:
    def test_zero_tf_scores_zero(self, algorithm):
        assert algorithm.term_weight(0, 5, 100, 50, 50.0) == 0.0

    def test_weight_monotonic_in_tf(self, algorithm):
        low = algorithm.term_weight(1, 5, 100, 50, 50.0)
        high = algorithm.term_weight(10, 5, 100, 50, 50.0)
        assert high > low

    def test_rarer_terms_weigh_more(self, algorithm):
        rare = algorithm.term_weight(3, 2, 1000, 50, 50.0)
        common = algorithm.term_weight(3, 500, 1000, 50, 50.0)
        assert rare > common

    def test_weight_non_negative(self, algorithm):
        assert algorithm.term_weight(3, 999, 1000, 50, 50.0) >= 0.0

    def test_declared_in_registry(self, algorithm):
        assert RANKING_ALGORITHMS[algorithm.algorithm_id] is type(algorithm)


class TestCosine:
    def test_score_range_is_unit_interval(self):
        assert CosineTfIdf().score_range == (0.0, 1.0)

    def test_combined_score_below_one(self):
        algorithm = CosineTfIdf()
        weights = [(1.0, algorithm.term_weight(50, 1, 1000, 10, 50.0))] * 10
        assert algorithm.combine(weights) < 1.0

    def test_longer_documents_dampened(self):
        algorithm = CosineTfIdf()
        short = algorithm.term_weight(3, 5, 100, 10, 50.0)
        long_ = algorithm.term_weight(3, 5, 100, 1000, 50.0)
        assert short > long_


class TestBm25:
    def test_unbounded_range(self):
        assert Bm25().score_range == (0.0, math.inf)

    def test_tf_saturation(self):
        """BM25's hallmark: the marginal gain of extra occurrences shrinks."""
        algorithm = Bm25()
        gain_early = algorithm.term_weight(2, 5, 100, 50, 50.0) - algorithm.term_weight(
            1, 5, 100, 50, 50.0
        )
        gain_late = algorithm.term_weight(20, 5, 100, 50, 50.0) - algorithm.term_weight(
            19, 5, 100, 50, 50.0
        )
        assert gain_early > gain_late

    def test_very_common_terms_stay_positive(self):
        assert Bm25().term_weight(3, 99, 100, 50, 50.0) > 0.0


class TestInquery:
    def test_beliefs_live_in_belief_range(self):
        algorithm = InqueryScorer()
        weight = algorithm.term_weight(5, 3, 100, 50, 50.0)
        assert 0.4 <= weight <= 1.0

    def test_combine_is_weighted_mean(self):
        algorithm = InqueryScorer()
        assert algorithm.combine([(1.0, 0.6), (1.0, 0.8)]) == pytest.approx(0.7)

    def test_combine_respects_query_weights(self):
        algorithm = InqueryScorer()
        tilted = algorithm.combine([(0.9, 0.9), (0.1, 0.1)])
        assert tilted > algorithm.combine([(0.5, 0.9), (0.5, 0.1)])

    def test_combine_empty_is_zero(self):
        assert InqueryScorer().combine([]) == 0.0


class TestScaledCosine:
    def test_top_document_scores_1000(self):
        """The paper: "the top document for a query always has a score
        of, say, 1,000"."""
        scores = ScaledCosine().finalize({0: 0.2, 1: 0.5, 2: 0.1})
        assert max(scores.values()) == pytest.approx(1000.0)

    def test_rank_order_preserved(self):
        raw = {0: 0.2, 1: 0.5, 2: 0.1}
        scaled = ScaledCosine().finalize(dict(raw))
        assert sorted(raw, key=raw.get) == sorted(scaled, key=scaled.get)

    def test_empty_and_zero_results_untouched(self):
        assert ScaledCosine().finalize({}) == {}
        assert ScaledCosine().finalize({0: 0.0}) == {0: 0.0}


@given(
    tf=st.integers(1, 100),
    df=st.integers(1, 100),
    n=st.integers(100, 10000),
    doc_len=st.integers(1, 1000),
)
def test_all_algorithms_finite(tf, df, n, doc_len):
    for algorithm in ALGORITHMS:
        weight = algorithm.term_weight(tf, df, n, doc_len, 100.0)
        assert math.isfinite(weight)
        assert weight >= 0.0
