"""Property test: the engine's Boolean evaluator vs. a brute-force oracle.

Hypothesis generates small random collections and random filter
expressions; a naive evaluator (re-tokenize every document per query,
check the condition directly) defines the ground truth.  Any
disagreement is an index/evaluator bug.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.query import AND, AND_NOT, OR, BooleanQuery, ProxQuery, TermQuery
from repro.engine.search import SearchEngine
from repro.text.stopwords import ENGLISH_STOP_WORDS

_VOCAB = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]

_documents = st.lists(
    st.lists(st.sampled_from(_VOCAB), min_size=1, max_size=8),
    min_size=1,
    max_size=6,
)

_terms = st.sampled_from(_VOCAB)


@st.composite
def filter_queries(draw, depth=2):
    if depth == 0:
        return TermQuery(F.BODY_OF_TEXT, draw(_terms))
    kind = draw(st.sampled_from(["term", "and", "or", "and-not", "prox"]))
    if kind == "term":
        return TermQuery(F.BODY_OF_TEXT, draw(_terms))
    if kind == "prox":
        return ProxQuery(
            TermQuery(F.BODY_OF_TEXT, draw(_terms)),
            TermQuery(F.BODY_OF_TEXT, draw(_terms)),
            draw(st.integers(0, 3)),
            draw(st.booleans()),
        )
    left = draw(filter_queries(depth=depth - 1))
    right = draw(filter_queries(depth=depth - 1))
    if kind == "and":
        return BooleanQuery(AND, (left, right))
    if kind == "or":
        return BooleanQuery(OR, (left, right))
    return BooleanQuery(AND_NOT, (left, right))


def _oracle(query, words_by_doc):
    """Naive evaluation over the token lists."""
    if isinstance(query, TermQuery):
        return {
            doc_id
            for doc_id, words in words_by_doc.items()
            if query.text in words
        }
    if isinstance(query, BooleanQuery):
        left = _oracle(query.children[0], words_by_doc)
        right = _oracle(query.children[1], words_by_doc)
        if query.operator == AND:
            return left & right
        if query.operator == OR:
            return left | right
        return left - right
    if isinstance(query, ProxQuery):
        matched = set()
        for doc_id, words in words_by_doc.items():
            positions_left = [i for i, w in enumerate(words) if w == query.left.text]
            positions_right = [i for i, w in enumerate(words) if w == query.right.text]
            for i in positions_left:
                for j in positions_right:
                    if i == j:
                        continue
                    gap = abs(j - i) - 1
                    if gap > query.distance:
                        continue
                    if query.ordered and j < i:
                        continue
                    matched.add(doc_id)
        return matched
    raise TypeError(type(query))


@settings(max_examples=150, deadline=None)
@given(_documents, filter_queries())
def test_filter_evaluation_matches_bruteforce(doc_words, query):
    assert not any(
        ENGLISH_STOP_WORDS.is_stop_word(word) for word in _VOCAB
    ), "vocabulary must avoid stop words for the oracle to be exact"

    engine = SearchEngine()
    words_by_doc = {}
    for index, words in enumerate(doc_words):
        engine.add(
            Document(f"http://x/{index}", {F.BODY_OF_TEXT: " ".join(words)})
        )
        words_by_doc[index] = words

    assert engine.evaluate_filter(query) == _oracle(query, words_by_doc)


@settings(max_examples=60, deadline=None)
@given(_documents, st.lists(_terms, min_size=1, max_size=3, unique=True))
def test_ranking_candidates_match_term_containment(doc_words, terms):
    """A list-ranking query scores exactly the documents containing at
    least one query term (with positive scores)."""
    from repro.engine.query import ListQuery

    engine = SearchEngine()
    words_by_doc = {}
    for index, words in enumerate(doc_words):
        engine.add(Document(f"http://x/{index}", {F.BODY_OF_TEXT: " ".join(words)}))
        words_by_doc[index] = set(words)

    query = ListQuery(tuple(TermQuery(F.BODY_OF_TEXT, t) for t in terms))
    hits = engine.search(ranking_query=query)
    scored = {hit.doc_id for hit in hits}
    expected = {
        doc_id
        for doc_id, words in words_by_doc.items()
        if words & set(terms)
    }
    assert scored == expected
    assert all(hit.score > 0 for hit in hits)
