"""KWIC snippet generation."""

import pytest

from repro.engine.snippets import make_snippet
from repro.text.analysis import Analyzer

BODY = (
    "This survey opens with history and background material before the "
    "main discussion of distributed databases and distributed query "
    "processing, then closes with open problems in replication."
)


class TestHighlighting:
    def test_terms_highlighted(self):
        snippet = make_snippet(BODY, ["databases"], window=8)
        assert "**databases**" in snippet.text

    def test_custom_highlight_marker(self):
        snippet = make_snippet(BODY, ["databases"], window=8, highlight="__")
        assert "__databases__" in snippet.text

    def test_counts_reported(self):
        snippet = make_snippet(BODY, ["distributed", "databases"], window=12)
        assert snippet.distinct_terms == 2
        assert snippet.total_hits >= 3


class TestWindowSelection:
    def test_window_covers_term_cluster(self):
        snippet = make_snippet(BODY, ["distributed", "databases"], window=10)
        assert "distributed" in snippet.text
        assert "databases" in snippet.text
        # The history/background head is not the chosen window.
        assert "history" not in snippet.text

    def test_ellipses_mark_cuts(self):
        snippet = make_snippet(BODY, ["replication"], window=5)
        assert snippet.text.startswith("... ")

    def test_head_fallback_without_hits(self):
        snippet = make_snippet(BODY, ["xylophone"], window=5)
        assert snippet.distinct_terms == 0
        assert snippet.text.startswith("This survey")
        assert snippet.text.endswith("...")

    def test_short_document_no_trailing_ellipsis(self):
        snippet = make_snippet("just databases here", ["databases"], window=10)
        assert snippet.text == "just **databases** here"


class TestNormalizedMatching:
    def test_stemmed_matching_highlights_variants(self):
        analyzer = Analyzer(stem=True)
        snippet = make_snippet(
            "one database among many databases", ["databases"], window=10,
            analyzer=analyzer,
        )
        assert "**database**" in snippet.text
        assert "**databases**" in snippet.text
        assert snippet.total_hits == 2

    def test_case_insensitive_matching(self):
        snippet = make_snippet("Databases rule", ["databases"], window=5)
        assert "**Databases**" in snippet.text


class TestDegenerateInputs:
    def test_empty_body(self):
        snippet = make_snippet("", ["x"], window=5)
        assert snippet.text == ""

    def test_empty_terms(self):
        snippet = make_snippet(BODY, [], window=5)
        assert snippet.distinct_terms == 0
