"""Vector-space ranking: fuzzy operators, weights, term statistics."""

import pytest

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.query import BooleanQuery, ListQuery, ProxQuery, TermQuery
from repro.engine.search import SearchEngine


def t(text, weight=1.0):
    return TermQuery(F.BODY_OF_TEXT, text, weight=weight)


@pytest.fixture
def engine():
    e = SearchEngine()
    e.add(Document("http://x/0", {F.BODY_OF_TEXT: "databases databases databases"}))
    e.add(Document("http://x/1", {F.BODY_OF_TEXT: "databases and networks"}))
    e.add(Document("http://x/2", {F.BODY_OF_TEXT: "networks networks routing"}))
    return e


class TestListRanking:
    def test_higher_tf_ranks_higher(self, engine):
        hits = engine.search(ranking_query=ListQuery((t("databases"),)))
        assert hits[0].doc_id == 0
        assert hits[0].score > hits[1].score

    def test_only_matching_documents_returned(self, engine):
        hits = engine.search(ranking_query=ListQuery((t("routing"),)))
        assert [hit.doc_id for hit in hits] == [2]

    def test_term_weights_tilt_ranking(self, engine):
        """Example 5: per-term weights change which document wins."""
        net_tilted = ListQuery((t("databases", 0.1), t("networks", 0.9)))
        db_tilted = ListQuery((t("databases", 0.9), t("networks", 0.1)))
        net_hits = engine.search(ranking_query=net_tilted)
        db_hits = engine.search(ranking_query=db_tilted)
        net_ranks = {hit.doc_id: rank for rank, hit in enumerate(net_hits)}
        db_ranks = {hit.doc_id: rank for rank, hit in enumerate(db_hits)}
        # Doc 2 (networks-heavy) beats doc 0 (databases-heavy) only
        # under the networks-tilted weights.
        assert net_ranks[2] < net_ranks[0]
        assert db_ranks[0] < db_ranks[2]

    def test_deterministic_tiebreak_by_doc_id(self):
        engine = SearchEngine()
        engine.add(Document("http://x/0", {F.BODY_OF_TEXT: "identical words"}))
        engine.add(Document("http://x/1", {F.BODY_OF_TEXT: "identical words"}))
        hits = engine.search(ranking_query=ListQuery((t("identical"),)))
        assert [hit.doc_id for hit in hits] == [0, 1]


class TestFuzzyOperators:
    """Example 4: boolean-like operators in ranking expressions get
    fuzzy-logic readings — and=min, or=max."""

    def test_and_is_min(self, engine):
        both = BooleanQuery("and", (t("databases"), t("networks")))
        scores = engine.evaluate_ranking(both)
        # Doc 1 contains both; docs 0 and 2 miss one -> min is 0.
        assert scores.get(0, 0.0) == 0.0
        assert scores[1] > 0.0
        assert scores.get(2, 0.0) == 0.0

    def test_or_is_max(self, engine):
        either = BooleanQuery("or", (t("databases"), t("networks")))
        scores = engine.evaluate_ranking(either)
        assert all(score > 0.0 for score in scores.values())
        assert set(scores) == {0, 1, 2}

    def test_and_not_subtracts(self, engine):
        query = BooleanQuery("and-not", (t("databases"), t("networks")))
        scores = engine.evaluate_ranking(query)
        # Doc 0 has no "networks": full score.  Doc 1 has both: reduced.
        assert scores[0] > scores.get(1, 0.0)

    def test_and_not_never_negative(self, engine):
        query = BooleanQuery("and-not", (t("databases"), t("networks")))
        scores = engine.evaluate_ranking(query)
        assert all(score >= 0.0 for score in scores.values())

    def test_prox_scores_only_when_satisfied(self, engine):
        close = ProxQuery(t("databases"), t("networks"), distance=1, ordered=True)
        scores = engine.evaluate_ranking(close)
        assert scores.get(1, 0.0) > 0.0  # "databases and networks"
        assert scores.get(0, 0.0) == 0.0

    def test_list_and_and_differ(self, engine):
        """The same terms under list() vs and score differently
        (Example 4's R1 vs R2)."""
        list_scores = engine.evaluate_ranking(
            ListQuery((t("databases"), t("networks")))
        )
        and_scores = engine.evaluate_ranking(
            BooleanQuery("and", (t("databases"), t("networks")))
        )
        assert list_scores[0] > 0.0
        assert and_scores.get(0, 0.0) == 0.0


class TestFilterPlusRanking:
    def test_filter_restricts_ranked_set(self, engine):
        hits = engine.search(
            filter_query=t("networks"),
            ranking_query=ListQuery((t("databases"),)),
        )
        assert {hit.doc_id for hit in hits} == {1, 2}

    def test_filtered_nonmatching_rank_terms_score_zero(self, engine):
        hits = engine.search(
            filter_query=t("routing"),
            ranking_query=ListQuery((t("databases"),)),
        )
        assert len(hits) == 1
        assert hits[0].score == 0.0

    def test_filter_only_returns_zero_scores(self, engine):
        hits = engine.search(filter_query=t("databases"))
        assert [hit.score for hit in hits] == [0.0, 0.0]
        assert [hit.doc_id for hit in hits] == [0, 1]

    def test_no_queries_returns_empty(self, engine):
        assert engine.search() == []

    def test_boolean_only_engine_rejects_ranking(self):
        engine = SearchEngine(ranking=None)
        engine.add(Document("http://x/0", {F.BODY_OF_TEXT: "text"}))
        with pytest.raises(RuntimeError):
            engine.evaluate_ranking(ListQuery((t("text"),)))

    def test_boolean_only_engine_filter_still_works(self):
        engine = SearchEngine(ranking=None)
        engine.add(Document("http://x/0", {F.BODY_OF_TEXT: "text"}))
        hits = engine.search(filter_query=t("text"), ranking_query=ListQuery((t("text"),)))
        assert [hit.doc_id for hit in hits] == [0]


class TestTermStatistics:
    def test_term_stats_report_tf_weight_df(self, engine):
        hits = engine.search(ranking_query=ListQuery((t("databases"),)))
        stats = hits[0].term_stats[0]
        assert stats.text == "databases"
        assert stats.term_frequency == 3
        assert stats.document_frequency == 2
        assert stats.term_weight > 0.0

    def test_stats_for_absent_terms_zero(self, engine):
        hits = engine.search(
            ranking_query=ListQuery((t("databases"), t("missing")))
        )
        absent = hits[0].term_stats[1]
        assert absent.term_frequency == 0
        assert absent.term_weight == 0.0

    def test_document_frequency_helper(self, engine):
        assert engine.document_frequency(t("databases")) == 2
        assert engine.document_frequency(t("routing")) == 1
        assert engine.document_frequency(t("missing")) == 0
