"""Modifier-aware term matching (stem, phonetic, truncation, thesaurus)."""

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.query import TermQuery
from repro.engine.search import SearchEngine


def engine_with(*bodies: str) -> SearchEngine:
    engine = SearchEngine()
    for index, body in enumerate(bodies):
        engine.add(
            Document(f"http://x/{index}", {F.TITLE: "t", F.BODY_OF_TEXT: body})
        )
    return engine


def expand(engine: SearchEngine, text: str, *modifiers: str, field=F.BODY_OF_TEXT):
    term = TermQuery(field, text, modifiers=frozenset(modifiers))
    return engine.matcher.expand(term)


class TestExactMatching:
    def test_present_term(self):
        engine = engine_with("distributed databases")
        assert expand(engine, "databases") == {F.BODY_OF_TEXT: {"databases"}}

    def test_absent_term_empty(self):
        engine = engine_with("distributed databases")
        assert expand(engine, "missing") == {}

    def test_any_field_fans_out(self):
        engine = SearchEngine()
        engine.add(
            Document("http://x/0", {F.TITLE: "databases", F.BODY_OF_TEXT: "systems"})
        )
        matches = expand(engine, "databases", field=F.ANY)
        assert F.TITLE in matches
        assert F.BODY_OF_TEXT not in matches


class TestStem:
    def test_stem_matches_morphological_variants(self):
        """Example 2: (title stem "databases") matches "database"."""
        engine = engine_with("the database survey", "databases everywhere")
        matches = expand(engine, "databases", "stem")
        assert matches[F.BODY_OF_TEXT] == {"database", "databases"}

    def test_stem_map_rebuilds_after_new_documents(self):
        engine = engine_with("databases")
        assert expand(engine, "databases", "stem")[F.BODY_OF_TEXT] == {"databases"}
        engine.add(Document("http://x/9", {F.BODY_OF_TEXT: "database"}))
        assert expand(engine, "databases", "stem")[F.BODY_OF_TEXT] == {
            "database",
            "databases",
        }

    def test_stem_hits_stemmed_index_directly(self):
        from repro.engine.ranking import CosineTfIdf
        from repro.text.analysis import Analyzer

        engine = SearchEngine(analyzer=Analyzer(stem=True), ranking=CosineTfIdf())
        engine.add(Document("http://x/0", {F.BODY_OF_TEXT: "databases"}))
        matches = expand(engine, "database", "stem")
        assert matches[F.BODY_OF_TEXT] == {"databas"}


class TestPhonetic:
    def test_soundex_equivalents_match(self):
        engine = engine_with("robert writes", "rupert reads")
        matches = expand(engine, "robert", "phonetic")
        assert matches[F.BODY_OF_TEXT] == {"robert", "rupert"}


class TestTruncation:
    def test_right_truncation_is_prefix(self):
        engine = engine_with("data database databases datum")
        matches = expand(engine, "data", "right-truncation")
        # "datum" shares only "dat", not the full "data" prefix.
        assert matches[F.BODY_OF_TEXT] == {"data", "database", "databases"}

    def test_left_truncation_is_suffix(self):
        engine = engine_with("bases databases cases")
        matches = expand(engine, "bases", "left-truncation")
        assert matches[F.BODY_OF_TEXT] == {"bases", "databases"}


class TestThesaurus:
    def test_synonyms_expand_when_present(self):
        engine = engine_with("the datastore holds data")
        matches = expand(engine, "database", "thesaurus")
        assert "datastore" in matches[F.BODY_OF_TEXT]

    def test_absent_synonyms_not_invented(self):
        engine = engine_with("nothing relevant here")
        assert expand(engine, "database", "thesaurus") == {}


class TestCombinedModifiers:
    def test_stem_and_phonetic_union(self):
        engine = engine_with("databases robert")
        matches = expand(engine, "database", "stem", "phonetic")
        assert "databases" in matches[F.BODY_OF_TEXT]
