"""Document model and store."""

from repro.engine import fields as F
from repro.engine.documents import Document, DocumentStore


def make_doc(linkage="http://x/1", title="T", body="some body text"):
    return Document(linkage, {F.TITLE: title, F.BODY_OF_TEXT: body})


class TestDocument:
    def test_field_accessors(self):
        doc = Document(
            "http://x/1",
            {F.TITLE: "A Title", F.AUTHOR: "An Author", F.BODY_OF_TEXT: "body"},
        )
        assert doc.title == "A Title"
        assert doc.author == "An Author"
        assert doc.body == "body"

    def test_missing_field_defaults_empty(self):
        assert make_doc().get(F.ABSTRACT) == ""
        assert make_doc().get(F.ABSTRACT, "n/a") == "n/a"

    def test_text_fields_skips_empty(self):
        doc = Document("http://x/1", {F.TITLE: "T", F.AUTHOR: ""})
        assert dict(doc.text_fields()) == {F.TITLE: "T"}

    def test_full_text_concatenates(self):
        doc = make_doc(title="Alpha", body="beta gamma")
        assert "Alpha" in doc.full_text()
        assert "beta gamma" in doc.full_text()

    def test_size_kbytes_minimum_one(self):
        assert make_doc(title="x", body="").size_kbytes() == 1

    def test_size_kbytes_grows_with_content(self):
        big = make_doc(body="word " * 5000)
        assert big.size_kbytes() > 10

    def test_documents_are_immutable(self):
        doc = make_doc()
        try:
            doc.linkage = "other"  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestDocumentStore:
    def test_dense_ids(self):
        store = DocumentStore()
        ids = [store.add(make_doc(f"http://x/{i}")) for i in range(3)]
        assert ids == [0, 1, 2]
        assert len(store) == 3

    def test_lookup_by_id_and_linkage(self):
        store = DocumentStore()
        store.add(make_doc("http://x/a"))
        store.add(make_doc("http://x/b"))
        assert store[1].linkage == "http://x/b"
        assert store.by_linkage("http://x/a") == 0
        assert store.by_linkage("http://nope") is None

    def test_first_linkage_wins_on_duplicates(self):
        store = DocumentStore()
        store.add(make_doc("http://x/a", title="first"))
        store.add(make_doc("http://x/a", title="second"))
        assert store.by_linkage("http://x/a") == 0

    def test_token_counts(self):
        store = DocumentStore()
        doc_id = store.add(make_doc(), token_count=7)
        assert store.token_count(doc_id) == 7
        store.set_token_count(doc_id, 9)
        assert store.token_count(doc_id) == 9

    def test_average_token_count(self):
        store = DocumentStore()
        store.add(make_doc("http://x/a"), token_count=10)
        store.add(make_doc("http://x/b"), token_count=20)
        assert store.average_token_count() == 15.0

    def test_average_of_empty_store(self):
        assert DocumentStore().average_token_count() == 0.0

    def test_running_average_stays_exact(self):
        """The O(1) running-sum average must equal a fresh recompute
        across adds and (repeated) set_token_count updates."""
        import random

        rng = random.Random(42)
        store = DocumentStore()
        for i in range(50):
            doc_id = store.add(make_doc(f"http://x/{i}"), token_count=rng.randint(0, 40))
            if rng.random() < 0.6:
                store.set_token_count(doc_id, rng.randint(0, 40))
            if rng.random() < 0.2 and len(store) > 1:
                store.set_token_count(rng.randrange(len(store)), rng.randint(0, 40))
            expected = sum(store.token_count(d) for d in store.ids()) / len(store)
            assert store.average_token_count() == expected

    def test_running_average_survives_engine_rebuild(self):
        from repro.engine import fields as F
        from repro.engine.search import SearchEngine

        engine = SearchEngine()
        for i in range(6):
            engine.add(
                Document(f"http://x/{i}", {F.BODY_OF_TEXT: "alpha beta " * (i + 1)})
            )
        engine.remove("http://x/3")
        store = engine.store
        assert store.average_token_count() == (
            sum(store.token_count(d) for d in store.ids()) / len(store)
        )

    def test_iteration_in_id_order(self):
        store = DocumentStore()
        for i in range(4):
            store.add(make_doc(f"http://x/{i}", title=str(i)))
        assert [doc.title for doc in store] == ["0", "1", "2", "3"]
