"""The positional inverted index."""

from repro.engine.index import InvertedIndex, Posting


def build_index():
    index = InvertedIndex()
    index.add_field_tokens(
        0, "body", [("alpha", "Alpha", 0), ("beta", "beta", 1), ("alpha", "alpha", 2)]
    )
    index.add_field_tokens(1, "body", [("beta", "beta", 0), ("gamma", "gamma", 1)])
    index.add_field_tokens(1, "title", [("alpha", "alpha", 0)])
    return index


class TestPostings:
    def test_positions_and_tf(self):
        index = build_index()
        postings = index.postings("body", "alpha")
        assert len(postings) == 1
        assert postings[0] == Posting(0, (0, 2))
        assert postings[0].term_frequency == 2

    def test_per_field_isolation(self):
        index = build_index()
        assert index.document_frequency("body", "alpha") == 1
        assert index.document_frequency("title", "alpha") == 1

    def test_absent_term_is_empty(self):
        assert build_index().postings("body", "zeta") == []

    def test_document_and_collection_frequency(self):
        index = build_index()
        assert index.document_frequency("body", "beta") == 2
        assert index.collection_frequency("body", "alpha") == 2

    def test_document_count_tracks_max_id(self):
        assert build_index().document_count == 2


class TestVocabularyLookups:
    def test_vocabulary_is_sorted(self):
        assert build_index().vocabulary("body") == ["alpha", "beta", "gamma"]

    def test_vocabulary_refreshes_after_adds(self):
        index = build_index()
        assert "delta" not in index.vocabulary("body")
        index.add_field_tokens(2, "body", [("delta", "delta", 0)])
        assert "delta" in index.vocabulary("body")

    def test_prefix_lookup(self):
        index = build_index()
        assert index.terms_with_prefix("body", "al") == ["alpha"]
        assert index.terms_with_prefix("body", "x") == []

    def test_suffix_lookup(self):
        index = build_index()
        assert index.terms_with_suffix("body", "ta") == ["beta"]

    def test_suffix_lookup_refreshes_after_adds(self):
        index = build_index()
        assert index.terms_with_suffix("body", "ta") == ["beta"]
        index.add_field_tokens(2, "body", [("theta", "theta", 0)])
        assert index.terms_with_suffix("body", "ta") == ["beta", "theta"]

    def test_suffix_lookup_matches_linear_scan(self):
        import random

        rng = random.Random(7)
        index = InvertedIndex()
        words = [
            "".join(rng.choices("abc", k=rng.randint(1, 6))) for _ in range(120)
        ]
        for doc_id, word in enumerate(words):
            index.add_field_tokens(doc_id, "body", [(word, word, 0)])
        for suffix in ("", "a", "b", "ab", "ba", "abc", "ccc", "zzz"):
            expected = [t for t in index.vocabulary("body") if t.endswith(suffix)]
            assert index.terms_with_suffix("body", suffix) == expected

    def test_generation_advances_on_mutation(self):
        index = InvertedIndex()
        before = index.generation
        index.add_field_tokens(0, "body", [("alpha", "alpha", 0)])
        assert index.generation > before

    def test_soundex_lookup(self):
        index = InvertedIndex()
        index.add_field_tokens(
            0, "author", [("robert", "Robert", 0), ("rupert", "Rupert", 1)]
        )
        assert index.terms_with_soundex("author", "Robert") == ["robert", "rupert"]

    def test_soundex_refreshes_after_adds(self):
        index = InvertedIndex()
        index.add_field_tokens(0, "author", [("robert", "Robert", 0)])
        assert index.terms_with_soundex("author", "rupert") == ["robert"]
        index.add_field_tokens(1, "author", [("rupert", "Rupert", 0)])
        assert index.terms_with_soundex("author", "rupert") == ["robert", "rupert"]


class TestSummaryStatistics:
    def test_sections_grouped_by_field_and_language(self):
        index = InvertedIndex()
        index.add_field_tokens(0, "title", [("algorithm", "algorithm", 0)], "en-US")
        index.add_field_tokens(1, "title", [("algoritmo", "algoritmo", 0)], "es")
        sections = index.summary_sections()
        assert [(field, lang) for field, lang, _ in sections] == [
            ("title", "en-US"),
            ("title", "es"),
        ]

    def test_postings_and_df_counted(self):
        index = build_index()
        sections = dict(
            ((field, lang), words) for field, lang, words in index.summary_sections()
        )
        body = sections[("body", "en")]
        assert body["beta"].postings == 2
        assert body["beta"].document_frequency == 2
        # "alpha"/"Alpha" differ as surfaces: counted separately.
        assert body["Alpha"].postings == 1
        assert body["alpha"].postings == 1

    def test_df_counts_documents_not_occurrences(self):
        index = InvertedIndex()
        index.add_field_tokens(
            0, "body", [("x", "x", 0), ("x", "x", 1), ("x", "x", 2)]
        )
        sections = index.summary_sections()
        entry = sections[0][2]["x"]
        assert entry.postings == 3
        assert entry.document_frequency == 1

    def test_summary_vocabulary_size(self):
        # body: Alpha, alpha, beta, gamma (surfaces) + title: alpha.
        assert build_index().summary_vocabulary_size() == 5
