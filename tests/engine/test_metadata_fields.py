"""Metadata-valued Basic-1 fields: linkage, linkage-type,
cross-reference-linkage, languages."""

import pytest

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.query import BooleanQuery, TermQuery
from repro.engine.search import SearchEngine


@pytest.fixture
def engine():
    e = SearchEngine()
    e.add(Document(
        "http://a.org/paper.ps",
        {
            F.TITLE: "First",
            F.BODY_OF_TEXT: "databases",
            F.LINKAGE_TYPE: "application/postscript",
            F.CROSS_REFERENCE_LINKAGE: "http://b.org/other.html http://c.org/third.pdf",
            F.LANGUAGES: "en-US es",
        },
    ))
    e.add(Document(
        "http://b.org/other.html",
        {
            F.TITLE: "Second",
            F.BODY_OF_TEXT: "networks",
            F.LINKAGE_TYPE: "text/html",
            F.LANGUAGES: "en-US",
        },
    ))
    return e


def t(text, field):
    return TermQuery(field, text)


class TestLinkage:
    def test_exact_url_match(self, engine):
        assert engine.evaluate_filter(t("http://a.org/paper.ps", F.LINKAGE)) == {0}

    def test_no_partial_url_match(self, engine):
        assert engine.evaluate_filter(t("paper.ps", F.LINKAGE)) == set()


class TestLinkageType:
    def test_mime_type_match(self, engine):
        assert engine.evaluate_filter(t("text/html", F.LINKAGE_TYPE)) == {1}
        assert engine.evaluate_filter(
            t("application/postscript", F.LINKAGE_TYPE)
        ) == {0}

    def test_case_insensitive(self, engine):
        assert engine.evaluate_filter(t("TEXT/HTML", F.LINKAGE_TYPE)) == {1}


class TestCrossReferenceLinkage:
    def test_matches_any_listed_url(self, engine):
        field = F.CROSS_REFERENCE_LINKAGE
        assert engine.evaluate_filter(t("http://b.org/other.html", field)) == {0}
        assert engine.evaluate_filter(t("http://c.org/third.pdf", field)) == {0}

    def test_documents_without_the_field_excluded(self, engine):
        assert engine.evaluate_filter(
            t("http://a.org/paper.ps", F.CROSS_REFERENCE_LINKAGE)
        ) == set()


class TestLanguages:
    def test_language_tag_match(self, engine):
        assert engine.evaluate_filter(t("es", F.LANGUAGES)) == {0}
        assert engine.evaluate_filter(t("en-US", F.LANGUAGES)) == {0, 1}

    def test_falls_back_to_document_language(self):
        engine = SearchEngine()
        engine.add(
            Document("http://x", {F.BODY_OF_TEXT: "datos"}, language="es")
        )
        assert engine.evaluate_filter(t("es", F.LANGUAGES)) == {0}


class TestComposition:
    def test_metadata_field_in_boolean_query(self, engine):
        query = BooleanQuery(
            "and",
            (t("en-US", F.LANGUAGES), t("databases", F.BODY_OF_TEXT)),
        )
        assert engine.evaluate_filter(query) == {0}

    def test_via_starts_source(self, engine):
        """The whole path: a STARTS query on the languages field."""
        from repro.source import StartsSource
        from repro.starts import SQuery, parse_expression

        source = StartsSource("Meta", [])
        source.engine = engine
        query = SQuery(filter_expression=parse_expression('(languages "es")'))
        results = source.search(query)
        assert [d.linkage for d in results.documents] == ["http://a.org/paper.ps"]
