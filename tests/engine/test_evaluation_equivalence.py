"""Property-style equivalence: term-at-a-time vs the document-at-a-time oracle.

The term-at-a-time rewrite (``repro.engine.evaluation``) must be
observationally identical to the original per-candidate recursion,
which stays available behind ``evaluation="document_at_a_time"``.  The
contract is exact equality — same hits, same float scores, same
TermStats — across every ranking algorithm, every node type (``list``,
fuzzy ``and``/``or``/``and-not``, ``prox``), per-term weights, every
modifier expansion, filter candidates, top-k truncation and minimum
scores.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import fields as F
from repro.engine.documents import Document
from repro.engine.evaluation import DOCUMENT_AT_A_TIME, TERM_AT_A_TIME
from repro.engine.query import AND, AND_NOT, OR, BooleanQuery, ListQuery, ProxQuery, TermQuery
from repro.engine.ranking import RANKING_ALGORITHMS
from repro.engine.search import SearchEngine

ALGORITHMS = sorted(RANKING_ALGORITHMS)

#: Vocabulary chosen to exercise every modifier expansion: a stem
#: family, a Soundex-equal pair, a thesaurus group, shared prefixes for
#: right-truncation and shared suffixes for left-truncation.
VOCAB = [
    "connect",
    "connected",
    "connection",
    "retention",
    "smith",
    "smyth",
    "database",
    "databank",
    "datastore",
    "gamma",
    "delta",
    "epsilon",
    "zeta",
]


def build_engine(algorithm_id: str, seed: int, n_docs: int = 30) -> SearchEngine:
    rng = random.Random(seed)
    engine = SearchEngine(ranking=RANKING_ALGORITHMS[algorithm_id]())
    for index in range(n_docs):
        body = " ".join(rng.choices(VOCAB, k=rng.randint(3, 25)))
        fields = {F.BODY_OF_TEXT: body}
        if rng.random() < 0.5:
            fields[F.TITLE] = " ".join(rng.choices(VOCAB, k=rng.randint(1, 4)))
        if rng.random() < 0.3:
            fields[F.AUTHOR] = rng.choice(("smith", "smyth"))
        engine.add(Document(f"http://x/{index}", fields))
    return engine


def both_ways(engine, **kwargs):
    """The same search on both evaluation paths (restoring the default)."""
    engine.evaluation = TERM_AT_A_TIME
    fast = engine.search(**kwargs)
    engine.evaluation = DOCUMENT_AT_A_TIME
    oracle = engine.search(**kwargs)
    engine.evaluation = TERM_AT_A_TIME
    return fast, oracle


def assert_search_equivalent(engine, **kwargs):
    fast, oracle = both_ways(engine, **kwargs)
    assert fast == oracle  # doc ids, exact scores, exact TermStats


def t(text, weight=1.0, field=F.BODY_OF_TEXT, modifiers=()):
    return TermQuery(field, text, modifiers=frozenset(modifiers), weight=weight)


@pytest.mark.parametrize("algorithm_id", ALGORITHMS)
class TestAllAlgorithms:
    def test_weighted_list(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=1)
        query = ListQuery((t("connect", 0.9), t("database", 0.4), t("zeta", 0.1)))
        assert_search_equivalent(engine, ranking_query=query)

    def test_duplicate_term_different_weights(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=2)
        query = ListQuery((t("gamma", 0.3), t("gamma", 0.8), t("delta")))
        assert_search_equivalent(engine, ranking_query=query)

    def test_fuzzy_boolean_nesting(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=3)
        query = BooleanQuery(
            AND,
            (
                BooleanQuery(OR, (t("connect"), t("database"))),
                BooleanQuery(AND_NOT, (t("gamma"), t("smith"))),
            ),
        )
        assert_search_equivalent(engine, ranking_query=query)

    def test_prox_ranking(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=4)
        for ordered in (True, False):
            query = ListQuery(
                (ProxQuery(t("gamma"), t("delta"), distance=2, ordered=ordered),)
            )
            assert_search_equivalent(engine, ranking_query=query)

    def test_modifier_expansions(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=5)
        for modifiers, text in (
            (("stem",), "connected"),
            (("phonetic",), "smith"),
            (("thesaurus",), "database"),
            (("right-truncation",), "data"),
            (("left-truncation",), "tion"),
        ):
            query = ListQuery((t(text, modifiers=modifiers), t("gamma", 0.5)))
            assert_search_equivalent(engine, ranking_query=query)

    def test_filter_restricts_candidates(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=6)
        # The filter admits documents the ranking terms miss entirely —
        # those must appear with score 0.0 on both paths.
        assert_search_equivalent(
            engine,
            filter_query=BooleanQuery(OR, (t("gamma"), t("smith"))),
            ranking_query=ListQuery((t("database"), t("connect", 0.2))),
        )

    def test_any_field_fanout(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=7)
        query = ListQuery((t("smith", field=F.ANY), t("database", field=F.ANY, weight=0.6)))
        assert_search_equivalent(engine, ranking_query=query)

    def test_absent_term_keeps_zero_stats(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=8)
        query = ListQuery((t("gamma"), t("nosuchword")))
        assert_search_equivalent(engine, ranking_query=query)

    def test_top_k_and_min_score(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=9, n_docs=40)
        query = ListQuery((t("connect"), t("gamma", 0.7), t("database", 0.3)))
        engine.evaluation = TERM_AT_A_TIME
        full = engine.search(ranking_query=query)
        min_score = full[len(full) // 2].score if full else 0.0
        for top_k in (None, 1, 3, 10_000):
            assert_search_equivalent(engine, ranking_query=query, top_k=top_k)
            assert_search_equivalent(
                engine, ranking_query=query, top_k=top_k, min_score=min_score
            )

    def test_evaluate_ranking_dicts_match(self, algorithm_id):
        engine = build_engine(algorithm_id, seed=10)
        query = BooleanQuery(OR, (t("connect"), t("delta", 0.4)))
        engine.evaluation = TERM_AT_A_TIME
        fast = engine.evaluate_ranking(query)
        engine.evaluation = DOCUMENT_AT_A_TIME
        oracle = engine.evaluate_ranking(query)
        engine.evaluation = TERM_AT_A_TIME
        assert fast == oracle
        candidates = set(range(0, engine.document_count, 2))
        fast = engine.evaluate_ranking(query, candidates)
        engine.evaluation = DOCUMENT_AT_A_TIME
        oracle = engine.evaluate_ranking(query, candidates)
        engine.evaluation = TERM_AT_A_TIME
        assert fast == oracle


def test_top_k_truncation_is_prefix_of_full_result():
    engine = build_engine("Okapi-1", seed=11, n_docs=40)
    query = ListQuery((t("connect"), t("database", 0.5)))
    full = engine.search(ranking_query=query)
    for top_k in (0, 1, 5, len(full), len(full) + 10):
        truncated = engine.search(ranking_query=query, top_k=top_k)
        assert truncated == full[:top_k]


# -- randomized query trees (hypothesis) --------------------------------

_terms = st.sampled_from(VOCAB)
_weights = st.sampled_from([1.0, 0.9, 0.5, 0.25])
_modifiers = st.sampled_from(
    [(), ("stem",), ("phonetic",), ("thesaurus",), ("right-truncation",), ("left-truncation",)]
)


@st.composite
def ranking_queries(draw, depth=2):
    if depth == 0:
        return TermQuery(
            F.BODY_OF_TEXT,
            draw(_terms),
            modifiers=frozenset(draw(_modifiers)),
            weight=draw(_weights),
        )
    kind = draw(st.sampled_from(["term", "list", "and", "or", "and-not", "prox"]))
    if kind == "term":
        return draw(ranking_queries(depth=0))
    if kind == "prox":
        return ProxQuery(
            TermQuery(F.BODY_OF_TEXT, draw(_terms)),
            TermQuery(F.BODY_OF_TEXT, draw(_terms)),
            draw(st.integers(0, 3)),
            draw(st.booleans()),
        )
    children = tuple(
        draw(ranking_queries(depth=depth - 1))
        for _ in range(2 if kind == "and-not" else draw(st.integers(2, 3)))
    )
    if kind == "list":
        return ListQuery(children)
    return BooleanQuery(kind, children[:2] if kind == "and-not" else children)


@settings(max_examples=120, deadline=None)
@given(
    algorithm_id=st.sampled_from(ALGORITHMS),
    seed=st.integers(0, 7),
    query=ranking_queries(),
    with_filter=st.booleans(),
    top_k=st.sampled_from([None, 1, 4]),
)
def test_random_query_trees_equivalent(algorithm_id, seed, query, with_filter, top_k):
    engine = build_engine(algorithm_id, seed=seed, n_docs=15)
    filter_query = (
        BooleanQuery(OR, (t("gamma"), t("connect"), t("smith"))) if with_filter else None
    )
    assert_search_equivalent(
        engine, filter_query=filter_query, ranking_query=query, top_k=top_k
    )


# -- the two-pointer prox merge vs. the quadratic scan -------------------


def _prox_bruteforce(left, right, distance, ordered):
    for p_left in left:
        for p_right in right:
            if p_left == p_right:
                continue
            gap = p_right - p_left - 1 if p_right > p_left else p_left - p_right - 1
            if gap > distance:
                continue
            if ordered and p_right < p_left:
                continue
            return True
    return False


@settings(max_examples=300, deadline=None)
@given(
    left=st.lists(st.integers(0, 30), min_size=1, max_size=8),
    right=st.lists(st.integers(0, 30), min_size=1, max_size=8),
    distance=st.integers(0, 6),
    ordered=st.booleans(),
)
def test_prox_two_pointer_matches_bruteforce(left, right, distance, ordered):
    left, right = sorted(left), sorted(right)
    assert SearchEngine._prox_satisfied(left, right, distance, ordered) == (
        _prox_bruteforce(left, right, distance, ordered)
    )
