"""Shared fixtures: the paper's canned sources and a small federation."""

from __future__ import annotations

import pytest

from repro.corpus import (
    CollectionSpec,
    generate_collection,
    source1_documents,
    source2_documents,
)
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.transport import SimulatedInternet, publish_resource
from repro.vendors import build_vendor_source


@pytest.fixture
def fresh_registry():
    """A private metrics registry swapped in for the test's duration."""
    from repro.observability import MetricsRegistry, get_registry, set_registry

    previous = get_registry()
    registry = set_registry(MetricsRegistry())
    yield registry
    set_registry(previous)


@pytest.fixture
def source1() -> StartsSource:
    """Source-1 from the paper's examples (Ullman document et al.)."""
    return StartsSource("Source-1", source1_documents())


@pytest.fixture
def source2() -> StartsSource:
    """Source-2 from the paper's examples (Lagunita report et al.)."""
    return StartsSource("Source-2", source2_documents())


@pytest.fixture
def paper_resource(source1: StartsSource, source2: StartsSource) -> Resource:
    """The two-source resource of Figure 1."""
    return Resource("Stanford", [source1, source2])


@pytest.fixture
def example6_query() -> SQuery:
    """The query of the paper's Example 6."""
    return SQuery(
        filter_expression=parse_expression(
            '((author "Ullman") and (title stem "databases"))'
        ),
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
        drop_stop_words=True,
        min_document_score=0.5,
        max_number_documents=10,
        answer_fields=("title", "author"),
    )


@pytest.fixture(scope="session")
def small_federation():
    """A published three-vendor federation over topical collections."""
    internet = SimulatedInternet(seed=11)
    resource = Resource("TestFederation")
    plans = [
        ("Fed-DB", "AcmeSearch", {"databases": 1.0}),
        ("Fed-Net", "OkapiWorks", {"networking": 1.0}),
        ("Fed-Med", "InferNet", {"medicine": 1.0}),
    ]
    for index, (source_id, vendor, topics) in enumerate(plans):
        documents = generate_collection(
            CollectionSpec(name=source_id, topics=topics, size=40, seed=100 + index)
        )
        resource.add_source(build_vendor_source(vendor, source_id, documents))
    url = "http://fed.example.org"
    publish_resource(internet, resource, url)
    return internet, f"{url}/resource", resource
