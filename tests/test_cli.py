"""The ``python -m repro`` command-line interface."""

from repro.__main__ import main


class TestParseCommand:
    def test_canonical_and_pqf(self, capsys):
        code = main(["parse", '(author "Ullman")'])
        assert code == 0
        out = capsys.readouterr().out
        assert '(author "Ullman")' in out
        assert "@attr 1=1003" in out

    def test_empty_expression_fails(self, capsys):
        assert main(["parse", "   "]) == 2


class TestDemoCommand:
    def test_demo_prints_results(self, capsys):
        assert main(["--seed", "3", "demo"]) == 0
        out = capsys.readouterr().out
        assert "selected sources:" in out
        assert "http://" in out


class TestQueryCommand:
    def test_ranking_query(self, capsys):
        code = main(
            ["--seed", "3", "query", '(body-of-text "databases")', "--sources", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "selected sources:" in out

    def test_filter_query(self, capsys):
        code = main(
            [
                "--seed",
                "3",
                "query",
                '(date-last-modified > "1994-01-01")',
                "--filter",
                "--limit",
                "3",
            ]
        )
        assert code == 0


class TestSearchCommand:
    def test_batch_search_prints_rank(self, capsys):
        code = main(["--seed", "3", "search", '(body-of-text "databases")'])
        assert code == 0
        out = capsys.readouterr().out
        assert "selected sources:" in out
        assert "http://" in out

    def test_stream_prints_emissions_then_final_rank(self, capsys, fresh_registry):
        code = main(
            ["--seed", "3", "search", '(body-of-text "databases")', "--stream"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # One progress line per source, with its per-emission latency.
        assert out.count(" ms] #") >= 2
        assert "pending=" in out
        assert "final after" in out
        assert "http://" in out

    def test_stream_final_rank_matches_batch(self, capsys, fresh_registry):
        assert main(["--seed", "3", "search", '(body-of-text "databases")']) == 0
        batch_out = capsys.readouterr().out
        batch_rank = [
            line for line in batch_out.splitlines() if line.lstrip().startswith("0.")
        ]
        assert (
            main(["--seed", "3", "search", '(body-of-text "databases")', "--stream"])
            == 0
        )
        stream_out = capsys.readouterr().out
        stream_rank = [
            line for line in stream_out.splitlines() if line.lstrip().startswith("0.")
        ]
        assert batch_rank == stream_rank

    def test_empty_expression_fails(self, capsys):
        assert main(["search", "   "]) == 2


class TestSelectCommand:
    def test_ranks_and_marks_selected(self, capsys):
        code = main(["--seed", "3", "select", "distributed databases", "-k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "selector: cori" in out
        assert "4 harvested" in out
        # The goodness table lists every source, selected ones starred.
        assert out.count("*") == 2
        assert "Source-DB" in out

    def test_selector_choice(self, capsys):
        code = main(["--seed", "3", "select", "databases", "--selector", "bgloss"])
        assert code == 0
        assert "selector: bgloss" in capsys.readouterr().out

    def test_empty_query_fails(self, capsys):
        assert main(["select", "   "]) == 2


class TestExperimentCommand:
    def test_e4_runs_quickly(self, capsys):
        assert main(["experiment", "E4"]) == 0
        assert "corpus=" in capsys.readouterr().out

    def test_unknown_id(self, capsys):
        assert main(["experiment", "E99"]) == 2


class TestServeCommand:
    def test_serve_once(self, capsys):
        assert main(["serve", "--port", "0", "--once"]) == 0
        out = capsys.readouterr().out
        assert "resource:" in out
        assert "http://127.0.0.1:" in out


class TestMetricsCommand:
    def test_metrics_prints_prometheus_text(self, capsys, fresh_registry):
        assert main(["--seed", "3", "metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE source_requests_total counter" in out
        assert "# TYPE metasearch_phase_ms histogram" in out
        assert 'metasearch_searches_total{result="wire"}' in out

    def test_metrics_restores_the_process_registry(self, capsys, fresh_registry):
        from repro.observability import get_registry

        main(["--seed", "3", "metrics"])
        assert get_registry() is fresh_registry
        # The command ran on its own registry; ours stayed clean.
        assert fresh_registry.families() == []


class TestTraceCommand:
    def test_trace_renders_timeline(self, capsys, fresh_registry):
        assert main(["--seed", "3", "trace"]) == 0
        out = capsys.readouterr().out
        assert "discover" in out
        assert "search" in out
        assert "per-source counters" in out

    def test_trace_writes_chrome_and_ndjson(self, tmp_path, capsys, fresh_registry):
        import json

        chrome = tmp_path / "trace.json"
        ndjson = tmp_path / "events.ndjson"
        code = main(
            [
                "--seed",
                "3",
                "trace",
                '(body-of-text "databases")',
                "--chrome",
                str(chrome),
                "--ndjson",
                str(ndjson),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert str(chrome) in out
        assert str(ndjson) in out
        payload = json.loads(chrome.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert "discover" in names
        assert "search" in names
        assert any(name.startswith("query") for name in names)
        lines = ndjson.read_text().splitlines()
        assert lines
        for line in lines:
            assert json.loads(line)["trace_id"]


class TestPlanCommand:
    def test_plan_renders(self, capsys):
        assert main(["--seed", "3", "plan", '(body-of-text "patient")']) == 0
        out = capsys.readouterr().out
        assert "plan for terms" in out
        assert "->" in out

    def test_plan_empty_expression(self, capsys):
        assert main(["plan", "  "]) == 2


class TestBrokerCommand:
    def test_prints_routing_table_and_shard_stats(self, capsys, fresh_registry):
        code = main(["--seed", "3", "broker", "--sources", "60", "--leaves", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "root over 3 leaves" in out
        assert "leaf-00" in out and "leaf-02" in out
        assert "sources" in out

    def test_demo_selection_with_terms(self, capsys, fresh_registry):
        code = main(
            ["--seed", "3", "broker", "--sources", "40", "--leaves", "2",
             "--terms", "databases", "-k", "3", "--selector", "cori"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "selection: cori over databases" in out
        assert "parallel" in out


class TestCheckpointCommand:
    def test_save_inspect_load_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["--seed", "3", "checkpoint", "save", store, "--size", "30"]) == 0
        out = capsys.readouterr().out
        assert "checkpointed 30 documents" in out
        assert "MANIFEST.json" in out

        assert main(["checkpoint", "inspect", store]) == 0
        out = capsys.readouterr().out
        assert "generation:  1" in out
        assert "seg-000000" in out

        assert main(["checkpoint", "load", store]) == 0
        out = capsys.readouterr().out
        assert "warm start" in out
        assert "documents:  30" in out

    def test_save_with_merge_compacts(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(
            ["--seed", "3", "checkpoint", "save", store, "--size", "20", "--merge"]
        )
        assert code == 0
        assert main(["checkpoint", "inspect", store]) == 0

    def test_inspect_missing_manifest_fails(self, tmp_path, capsys):
        assert main(["checkpoint", "inspect", str(tmp_path)]) == 2
        assert "no manifest" in capsys.readouterr().err

    def test_load_missing_store_fails(self, tmp_path, capsys):
        assert main(["checkpoint", "load", str(tmp_path / "absent")]) == 2
        assert "cannot open" in capsys.readouterr().err
