"""The conformance checker: every vendor passes; broken sources fail."""

import pytest

from repro.conformance import ConformanceReport, check_source
from repro.corpus import source1_documents
from repro.source import StartsSource
from repro.starts.results import SQResults
from repro.vendors import build_vendor_source, vendor_names


class TestBuiltinsConform:
    @pytest.mark.parametrize("vendor", vendor_names())
    def test_every_vendor_passes(self, vendor):
        source = build_vendor_source(vendor, f"{vendor}-c", source1_documents())
        report = check_source(source)
        assert report.passed, report.render()

    def test_plain_source_passes(self, source1):
        assert check_source(source1).passed

    def test_empty_source_passes(self):
        assert check_source(StartsSource("Empty", [])).passed


class TestBrokenSourcesFail:
    def test_stateful_source_detected(self, source1):
        """A source that numbers its responses is not sessionless."""
        original_search = source1.search
        counter = {"n": 0}

        def stateful_search(query):
            counter["n"] += 1
            results = original_search(query)
            return SQResults(
                sources=results.sources + (f"call-{counter['n']}",),
                actual_filter_expression=results.actual_filter_expression,
                actual_ranking_expression=results.actual_ranking_expression,
                documents=results.documents,
            )

        source1.search = stateful_search
        try:
            report = check_source(source1)
        finally:
            source1.search = original_search
        assert not report.passed
        assert any("sessionless" in f.check for f in report.failures())

    def test_score_range_liar_detected(self, source1):
        """A source whose scores escape its declared range fails."""
        original_metadata = source1.metadata

        def lying_metadata():
            from dataclasses import replace

            return replace(original_metadata(), score_range=(0.0, 0.0001))

        source1.metadata = lying_metadata
        try:
            report = check_source(source1)
        finally:
            source1.metadata = original_metadata
        assert not report.passed
        assert any("ScoreRange" in f.check for f in report.failures())

    def test_summary_size_liar_detected(self, source1):
        original_summary = source1.content_summary

        def lying_summary(max_words_per_section=None):
            from dataclasses import replace

            return replace(original_summary(max_words_per_section), num_docs=9999)

        source1.content_summary = lying_summary
        try:
            report = check_source(source1)
        finally:
            source1.content_summary = original_summary
        assert not report.passed


class TestReportRendering:
    def test_render_contains_verdict(self, source1):
        rendered = check_source(source1).render()
        assert "CONFORMANT" in rendered
        assert "[PASS]" in rendered

    def test_failures_listed(self):
        report = ConformanceReport("X")
        report.add("a", True)
        report.add("b", False, "broken")
        assert len(report.failures()) == 1
        assert "FAIL" in report.failures()[0].row()
        assert not report.passed
