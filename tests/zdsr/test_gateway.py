"""The ZDSR gateway: Explain records and PQF search."""

import pytest

from repro.corpus import source1_documents
from repro.source import SourceCapabilities, StartsSource
from repro.zdsr import ZdsrGateway


@pytest.fixture
def gateway(source1):
    return ZdsrGateway(source1)


class TestExplain:
    def test_use_attributes_cover_basic1(self, gateway):
        record = gateway.explain()
        assert 4 in record.use_attributes      # title
        assert 1003 in record.use_attributes   # author
        assert 1016 in record.use_attributes   # any

    def test_relation_attributes_include_stem_and_phonetic(self, gateway):
        record = gateway.explain()
        assert 101 in record.relation_attributes
        assert 100 in record.relation_attributes

    def test_ranked_retrieval_extensions(self, gateway):
        record = gateway.explain()
        assert record.supports_ranked_retrieval
        assert record.score_range == (0.0, 1.0)
        assert record.ranking_algorithm_id == "Acme-1"

    def test_restricted_source_shrinks_explain(self):
        source = StartsSource(
            "Limited",
            source1_documents(),
            capabilities=SourceCapabilities.full_basic1()
            .without_fields("author")
            .without_modifiers("phonetic"),
        )
        record = ZdsrGateway(source).explain()
        assert 1003 not in record.use_attributes
        assert 100 not in record.relation_attributes

    def test_boolean_only_source(self):
        source = StartsSource(
            "Grep",
            source1_documents(),
            capabilities=SourceCapabilities(query_parts="F"),
        )
        record = ZdsrGateway(source).explain()
        assert not record.supports_ranked_retrieval


class TestSearch:
    def test_boolean_pqf_search(self, gateway):
        results = gateway.search_pqf(
            '@and @attr 1=1003 "Ullman" @attr 1=4 @attr 2=101 "databases"'
        )
        assert len(results.documents) == 1
        assert results.documents[0].linkage.endswith("dood.ps")

    def test_ranked_pqf_search(self, gateway):
        results = gateway.search_pqf(
            '@or @attr 1=1010 "distributed" @attr 1=1010 "databases"', ranked=True
        )
        assert results.documents
        scores = [doc.raw_score for doc in results.documents]
        assert scores == sorted(scores, reverse=True)

    def test_max_documents(self, gateway):
        results = gateway.search_pqf('@attr 1=1016 "databases"', max_documents=1)
        assert len(results.documents) <= 1

    def test_actual_pqf_reporting(self, gateway):
        pqf = '@and @attr 1=1003 "Ullman" @attr 1=4 @attr 2=101 "databases"'
        results = gateway.search_pqf(pqf)
        assert gateway.actual_pqf(results) == pqf

    def test_actual_pqf_none_when_nothing_processed(self):
        source = StartsSource(
            "RankOnly",
            source1_documents(),
            capabilities=SourceCapabilities(query_parts="R"),
        )
        gateway = ZdsrGateway(source)
        results = gateway.search_pqf('@attr 1=4 "databases"')  # filter query
        assert gateway.actual_pqf(results) is None
