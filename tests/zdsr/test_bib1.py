"""The ZDSR attribute-number mappings."""

import pytest

from repro.starts.attributes import BASIC1
from repro.zdsr import bib1


class TestUseAttributes:
    def test_every_basic1_field_mapped(self):
        for name in BASIC1.fields:
            assert name in bib1.USE, f"field {name} needs a use attribute"

    def test_registered_bib1_numbers(self):
        assert bib1.use_number("title") == 4
        assert bib1.use_number("author") == 1003
        assert bib1.use_number("any") == 1016

    def test_new_fields_in_private_range(self):
        for name in ("document-text", "free-form-text", "linkage-type"):
            assert bib1.use_number(name) >= 5000

    def test_numbers_unique(self):
        numbers = list(bib1.USE.values())
        assert len(numbers) == len(set(numbers))

    def test_inverse(self):
        for name, number in bib1.USE.items():
            assert bib1.field_for_use(number) == name

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            bib1.use_number("no-such-field")


class TestRelationAttributes:
    def test_comparisons_are_bib1_one_through_six(self):
        assert [bib1.relation_number(op) for op in ("<", "<=", "=", ">=", ">", "!=")] == [
            1, 2, 3, 4, 5, 6,
        ]

    def test_phonetic_and_stem(self):
        assert bib1.relation_number("phonetic") == 100
        assert bib1.relation_number("stem") == 101

    def test_truncation_goes_to_type5(self):
        assert bib1.relation_number("right-truncation") is None
        assert bib1.truncation_number("right-truncation") == 1
        assert bib1.truncation_number("left-truncation") == 2

    def test_inverse(self):
        for name, number in bib1.RELATION.items():
            assert bib1.modifier_for_relation(number) == name

    def test_every_basic1_modifier_mapped_somewhere(self):
        for name in BASIC1.modifiers:
            mapped = (
                bib1.relation_number(name) is not None
                or bib1.truncation_number(name) is not None
            )
            assert mapped, f"modifier {name} needs a ZDSR mapping"
