"""PQF encoding of STARTS expressions (the type-101 subset relation)."""

import pytest
from hypothesis import given, strategies as st

from repro.starts.ast import SAnd, SProx, STerm
from repro.starts.attributes import FieldRef, ModifierRef
from repro.starts.errors import QuerySyntaxError
from repro.starts.lstring import LString
from repro.starts.parser import parse_expression
from repro.zdsr.pqf import pqf_to_starts, starts_to_pqf


class TestEncoding:
    def test_fielded_term(self):
        node = parse_expression('(author "Ullman")')
        assert starts_to_pqf(node) == '@attr 1=1003 "Ullman"'

    def test_stem_modifier_is_relation_101(self):
        node = parse_expression('(title stem "databases")')
        assert starts_to_pqf(node) == '@attr 1=4 @attr 2=101 "databases"'

    def test_and_is_prefix_binary(self):
        node = parse_expression('((author "Ullman") and (title "databases"))')
        assert starts_to_pqf(node) == (
            '@and @attr 1=1003 "Ullman" @attr 1=4 "databases"'
        )

    def test_nary_and_folds_left(self):
        node = parse_expression('((a "x") and (a "y") and (a "z"))')
        # Unknown field "a"? -- use real fields instead.
        node = parse_expression(
            '((title "x") and (title "y") and (title "z"))'
        )
        pqf = starts_to_pqf(node)
        assert pqf.startswith("@and @and ")

    def test_and_not_is_z3950_not(self):
        node = parse_expression('((title "x") and-not (title "y"))')
        assert starts_to_pqf(node).startswith("@not ")

    def test_prox_parameters(self):
        node = parse_expression(
            '((body-of-text "a1") prox[3,T] (body-of-text "b1"))'
        )
        assert starts_to_pqf(node).startswith("@prox 0 3 1 2 k 2 ")

    def test_truncation_is_type5(self):
        node = parse_expression('(title right-truncation "data")')
        assert "@attr 5=1" in starts_to_pqf(node)

    def test_comparison_relations(self):
        node = parse_expression('(date-last-modified > "1996-01-01")')
        assert "@attr 2=5" in starts_to_pqf(node)

    def test_ranking_list_folds_to_or(self):
        node = parse_expression('list((title "x") (title "y"))')
        assert starts_to_pqf(node).startswith("@or ")


class TestDecoding:
    def test_simple_round_trip(self):
        node = parse_expression('((author "Ullman") and (title stem "databases"))')
        assert pqf_to_starts(starts_to_pqf(node)) == node

    def test_prox_round_trip(self):
        node = SProx(
            STerm(LString("alpha"), FieldRef("body-of-text")),
            STerm(LString("beta"), FieldRef("body-of-text")),
            2,
            False,
        )
        assert pqf_to_starts(starts_to_pqf(node)) == node

    def test_quoted_strings_with_spaces(self):
        node = STerm(LString("jeffrey ullman"), FieldRef("author"))
        assert pqf_to_starts(starts_to_pqf(node)) == node

    def test_bare_word_term(self):
        node = pqf_to_starts("databases")
        assert node == STerm(LString("databases"))

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "@and @attr 1=4 \"x\"",          # missing second operand
            "@attr 1=notanumber \"x\"",
            "@attr 9=4 \"x\"",                # unsupported attr type
            "@attr 1=4",                       # attrs without a term
            "@prox 0 3 1 2 k 2 @and \"a\" \"b\" \"c\"",  # non-term operand
            '@attr 1=4 "x" trailing',
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(QuerySyntaxError):
            pqf_to_starts(bad)


_fields = st.sampled_from(["title", "author", "body-of-text", "any"])
_mods = st.lists(
    st.sampled_from(["stem", "phonetic", "right-truncation"]), max_size=2, unique=True
)
_words = st.text(alphabet="abcdefghij", min_size=1, max_size=8)


@st.composite
def pqf_terms(draw):
    return STerm(
        LString(draw(_words)),
        FieldRef(draw(_fields)),
        tuple(ModifierRef(m) for m in draw(_mods)),
    )


@st.composite
def pqf_expressions(draw, depth=2):
    if depth == 0:
        return draw(pqf_terms())
    kind = draw(st.sampled_from(["term", "and", "prox"]))
    if kind == "term":
        return draw(pqf_terms())
    if kind == "and":
        return SAnd(
            (
                draw(pqf_expressions(depth=depth - 1)),
                draw(pqf_expressions(depth=depth - 1)),
            )
        )
    return SProx(
        draw(pqf_terms()), draw(pqf_terms()), draw(st.integers(0, 5)), draw(st.booleans())
    )


@given(pqf_expressions())
def test_pqf_round_trip_property(node):
    assert pqf_to_starts(starts_to_pqf(node)) == node
