"""The public API surface: every exported name resolves.

Guards against broken ``__all__`` lists and accidental removals — the
kind of drift that only bites downstream users.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.text",
    "repro.engine",
    "repro.corpus",
    "repro.starts",
    "repro.source",
    "repro.resource",
    "repro.vendors",
    "repro.transport",
    "repro.federation",
    "repro.observability",
    "repro.cache",
    "repro.metasearch",
    "repro.experiments",
    "repro.zdsr",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} needs __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_has_no_duplicates(package_name):
    package = importlib.import_module(package_name)
    names = list(package.__all__)
    assert len(names) == len(set(names))


def test_top_level_has_docstring_quickstart():
    import repro

    assert "Quickstart" in repro.__doc__


def test_version_is_pep440ish():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts)


def test_conformance_and_snippets_at_top_level():
    import repro

    assert callable(repro.check_source)
    assert callable(repro.make_snippet)
