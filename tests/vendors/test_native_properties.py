"""Property tests over the native syntaxes.

Each syntax's generate/parse pair reaches a fixed point after one
round — the coherence a metasearcher relies on when learning native
behaviour through Free-form-text probing.
"""

from hypothesis import given, settings, strategies as st

from repro.starts.ast import SAnd, SAndNot, SOr, STerm
from repro.starts.lstring import LString
from repro.vendors.native import InfixSyntax, PlusMinusSyntax, SemicolonSyntax

_words = st.text(alphabet="abcdefghij", min_size=1, max_size=8)


def term(word):
    return STerm(LString(word))


@st.composite
def flat_boolean(draw, operators=("and", "or")):
    """A flat boolean tree over bare terms (what natives can express)."""
    kind = draw(st.sampled_from(("term",) + operators))
    if kind == "term":
        return term(draw(_words))
    children = tuple(term(w) for w in draw(st.lists(_words, min_size=2, max_size=4)))
    if kind == "and":
        return SAnd(children)
    if kind == "or":
        return SOr(children)
    positive = SAnd(children) if len(children) > 1 else children[0]
    return SAndNot(positive, term(draw(_words)))


@settings(max_examples=100, deadline=None)
@given(flat_boolean())
def test_infix_fixed_point(node):
    syntax = InfixSyntax()
    once = syntax.parse(syntax.generate(node))
    twice = syntax.parse(syntax.generate(once))
    assert once == twice


@settings(max_examples=100, deadline=None)
@given(flat_boolean(operators=("and", "or", "and-not")))
def test_plusminus_fixed_point(node):
    syntax = PlusMinusSyntax()
    once = syntax.parse(syntax.generate(node))
    twice = syntax.parse(syntax.generate(once))
    assert once == twice


@settings(max_examples=100, deadline=None)
@given(flat_boolean())
def test_semicolon_fixed_point(node):
    syntax = SemicolonSyntax()
    once = syntax.parse(syntax.generate(node))
    twice = syntax.parse(syntax.generate(once))
    assert once == twice


@settings(max_examples=100, deadline=None)
@given(st.lists(_words, min_size=1, max_size=5, unique=True))
def test_plusminus_required_terms_preserved(words):
    """Every +word survives a generate/parse round trip."""
    syntax = PlusMinusSyntax()
    native = " ".join(f"+{word}" for word in words)
    node = syntax.parse(native)
    regenerated = syntax.generate(node)
    assert set(regenerated.split()) == {f"+{word}" for word in words}
