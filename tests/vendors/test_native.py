"""Native vendor syntaxes: the §3.1 query-language problem."""

import pytest

from repro.starts.ast import SAnd, SAndNot, SOr, STerm
from repro.starts.errors import QuerySyntaxError
from repro.starts.parser import parse_expression
from repro.vendors.native import (
    NATIVE_SYNTAXES,
    InfixSyntax,
    PlusMinusSyntax,
    SemicolonSyntax,
)


class TestPaperScenario:
    """The paper: "distributed and systems" at one source is
    "+distributed +systems" at another."""

    def test_same_query_two_syntaxes(self):
        infix = InfixSyntax().parse("distributed AND systems")
        plus = PlusMinusSyntax().parse("+distributed +systems")
        assert infix == plus  # both are (distributed and systems)

    def test_starts_to_both_native_forms(self):
        node = parse_expression('("distributed" and "systems")')
        assert InfixSyntax().generate(node) == "(distributed AND systems)"
        assert PlusMinusSyntax().generate(node) == "+distributed +systems"
        assert SemicolonSyntax().generate(node) == "distributed;systems"


class TestInfixSyntax:
    def test_or_and_precedence_left_assoc(self):
        node = InfixSyntax().parse("a AND b OR c")
        assert isinstance(node, SOr)
        assert isinstance(node.children[0], SAnd)

    def test_parentheses(self):
        node = InfixSyntax().parse("a AND (b OR c)")
        assert isinstance(node, SAnd)
        assert isinstance(node.children[1], SOr)

    def test_field_prefix(self):
        node = InfixSyntax().parse("title:databases")
        assert isinstance(node, STerm)
        assert node.field_name == "title"

    def test_not_becomes_and_not(self):
        node = InfixSyntax().parse("databases NOT legacy")
        assert isinstance(node, SAndNot)

    def test_implicit_and(self):
        node = InfixSyntax().parse("distributed systems")
        assert isinstance(node, SAnd)

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(QuerySyntaxError):
            InfixSyntax().parse("(a AND b")
        with pytest.raises(QuerySyntaxError):
            InfixSyntax().parse("a)")

    def test_empty_rejected(self):
        with pytest.raises(QuerySyntaxError):
            InfixSyntax().parse("   ")

    def test_generate_round_trip(self):
        node = parse_expression('((title "a") and ((b "x") or (c "y")))')
        regenerated = InfixSyntax().parse(InfixSyntax().generate(node))
        # Fields survive; attribute-set info does not (native is lossy).
        assert [t.lstring.text for t in regenerated.terms()] == ["a", "x", "y"]


class TestPlusMinusSyntax:
    def test_required_terms_are_and(self):
        node = PlusMinusSyntax().parse("+distributed +databases")
        assert isinstance(node, SAnd)

    def test_bare_terms_are_or(self):
        node = PlusMinusSyntax().parse("distributed databases")
        assert isinstance(node, SOr)

    def test_excluded_terms_are_and_not(self):
        node = PlusMinusSyntax().parse("+databases -legacy")
        assert isinstance(node, SAndNot)
        assert node.negative.lstring.text == "legacy"

    def test_mixed_required_and_optional(self):
        node = PlusMinusSyntax().parse("+databases distributed")
        assert isinstance(node, SOr)  # required OR optional broadening

    def test_pure_negative_rejected(self):
        """No positive component — the same rule STARTS enforces."""
        with pytest.raises(QuerySyntaxError):
            PlusMinusSyntax().parse("-legacy")

    def test_generate_flattens_nested_query(self):
        node = parse_expression('(("a" and "b") and-not "c")')
        assert PlusMinusSyntax().generate(node) == "+a +b -c"


class TestSemicolonSyntax:
    def test_and_groups(self):
        node = SemicolonSyntax().parse("distributed;databases")
        assert isinstance(node, SAnd)

    def test_or_within_group(self):
        node = SemicolonSyntax().parse("distributed,databases")
        assert isinstance(node, SOr)

    def test_comma_binds_tighter(self):
        node = SemicolonSyntax().parse("a,b;c")
        assert isinstance(node, SAnd)
        assert isinstance(node.children[0], SOr)

    def test_single_word(self):
        node = SemicolonSyntax().parse("databases")
        assert isinstance(node, STerm)

    def test_empty_rejected(self):
        with pytest.raises(QuerySyntaxError):
            SemicolonSyntax().parse("")

    def test_generate_drops_negation(self):
        """Glimpse has no NOT: only the positive side survives."""
        node = parse_expression('("a" and-not "b")')
        assert SemicolonSyntax().generate(node) == "a"


class TestRegistry:
    def test_all_syntaxes_registered(self):
        assert set(NATIVE_SYNTAXES) == {"infix", "plusminus", "semicolon"}

    @pytest.mark.parametrize("syntax_id", ["infix", "plusminus", "semicolon"])
    def test_parse_generate_stability(self, syntax_id):
        """generate(parse(x)) re-parses to the same AST (fixed point)."""
        syntax = NATIVE_SYNTAXES[syntax_id]
        samples = {
            "infix": "distributed AND databases",
            "plusminus": "+distributed +databases",
            "semicolon": "distributed;databases",
        }
        node = syntax.parse(samples[syntax_id])
        assert syntax.parse(syntax.generate(node)) == node
