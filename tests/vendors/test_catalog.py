"""The vendor catalog: heterogeneity along every §3 axis."""

import math

import pytest

from repro.corpus import source1_documents
from repro.starts import SQuery, parse_expression
from repro.vendors import VENDORS, build_vendor_source, vendor_names


@pytest.fixture(scope="module")
def sources():
    return {
        name: build_vendor_source(name, f"{name}-src", source1_documents())
        for name in vendor_names()
    }


class TestCatalog:
    def test_seven_vendors(self):
        assert len(VENDORS) == 7

    def test_unknown_vendor_raises(self):
        with pytest.raises(KeyError):
            build_vendor_source("NoSuchVendor", "x", [])

    def test_ranking_algorithms_all_differ(self, sources):
        ids = {
            source.metadata().ranking_algorithm_id for source in sources.values()
        }
        # Seven vendors, six algorithm ids (GrepMaster has none -> "none").
        assert len(ids) == 6
        assert "none" in ids

    def test_score_ranges_differ(self, sources):
        ranges = {source.metadata().score_range for source in sources.values()}
        assert (0.0, 1.0) in ranges
        assert (0.0, 1000.0) in ranges
        assert any(math.isinf(high) for _, high in ranges)

    def test_tokenizers_differ(self, sources):
        ids = set()
        for source in sources.values():
            for tokenizer_id, _ in source.metadata().tokenizer_id_list:
                ids.add(tokenizer_id)
        assert {"Acme-1", "Acme-2", "Uni-1"} <= ids


class TestBehaviouralHeterogeneity:
    def test_grepmaster_is_boolean_only(self, sources):
        metadata = sources["GrepMaster"].metadata()
        assert metadata.query_parts_supported == "F"
        query = SQuery(
            ranking_expression=parse_expression('list((body-of-text "databases"))')
        )
        results = sources["GrepMaster"].search(query)
        assert results.actual_ranking_expression is None
        assert results.documents == ()

    def test_zeusfind_tops_at_1000(self, sources):
        query = SQuery(
            ranking_expression=parse_expression('list((body-of-text "databases"))')
        )
        results = sources["ZeusFind"].search(query)
        assert results.documents[0].raw_score == pytest.approx(1000.0)

    def test_okapi_scores_exceed_one(self, sources):
        """BM25 scores are unbounded: a rare, repeated term breaks 1.0,
        which no [0,1]-range engine can do."""
        query = SQuery(
            ranking_expression=parse_expression('list((body-of-text "deductive"))')
        )
        results = sources["OkapiWorks"].search(query)
        assert results.documents[0].raw_score > 1.0

    def test_same_query_different_raw_scores(self, sources):
        """§3.2's premise: identical query, incomparable scores."""
        query = SQuery(
            ranking_expression=parse_expression('list((body-of-text "databases"))')
        )
        tops = {}
        for name in ("AcmeSearch", "OkapiWorks", "ZeusFind"):
            results = sources[name].search(query)
            tops[name] = results.documents[0].raw_score
        assert len(set(round(score, 6) for score in tops.values())) == 3

    def test_infernet_cannot_disable_stop_words(self, sources):
        assert not sources["InferNet"].metadata().turn_off_stop_words

    def test_acme_can_disable_stop_words(self, sources):
        assert sources["AcmeSearch"].metadata().turn_off_stop_words

    def test_the_who_succeeds_only_where_stop_words_disable(self, sources):
        """The paper's "The Who" scenario end to end."""
        from repro.engine import fields as F
        from repro.engine.documents import Document

        rock_doc = Document(
            "http://rock.example.org/who.html",
            {F.TITLE: "The Who", F.BODY_OF_TEXT: "The Who rocked the stadium"},
        )
        acme = build_vendor_source("AcmeSearch", "Rock-A", [rock_doc])
        zeus = build_vendor_source("ZeusFind", "Rock-Z", [rock_doc])
        query = SQuery(
            filter_expression=parse_expression(
                '((body-of-text "The") and (body-of-text "Who"))'
            ),
            drop_stop_words=False,
        )
        assert len(acme.search(query).documents) == 1
        # ZeusFind cannot disable stop words: both terms eliminated and
        # with them the whole filter.
        zeus_results = zeus.search(query)
        assert zeus_results.documents == ()

    def test_zeus_missing_author_field(self, sources):
        assert not sources["ZeusFind"].metadata().supports_field("author")

    def test_descriptions_nonempty(self):
        for profile in VENDORS.values():
            assert profile.description
