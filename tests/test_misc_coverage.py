"""Remaining corners: small behaviours the focused suites skip."""

import pytest

from repro.corpus import source1_documents
from repro.source import StartsSource


class TestZdsrRankedActualQuery:
    def test_actual_pqf_for_ranked_search(self, source1):
        from repro.zdsr import ZdsrGateway

        gateway = ZdsrGateway(source1)
        results = gateway.search_pqf(
            '@or @attr 1=1010 "distributed" @attr 1=1010 "databases"', ranked=True
        )
        actual = gateway.actual_pqf(results)
        assert actual is not None
        assert actual.startswith("@or ")


class TestFederationHostProfiles:
    def test_slow_and_charging_sources_configured(self):
        from repro.experiments import FederationSpec, build_federation

        federation = build_federation(
            FederationSpec(n_sources=5, docs_per_source=10, n_queries=2, seed=2)
        )
        # Index 3 charges by default; its cost is recorded for the
        # cost-aware selector.
        assert federation.costs == {"Exp-03": 5.0}
        # Index 2 is the slow host: fetching from it is visibly slower.
        federation.internet.reset_log()
        slow_source = federation.sources["Exp-02"]
        fast_source = federation.sources["Exp-00"]
        federation.internet.fetch(f"{slow_source.base_url}/meta")
        slow = federation.internet.total_latency_ms()
        federation.internet.reset_log()
        federation.internet.fetch(f"{fast_source.base_url}/meta")
        fast = federation.internet.total_latency_ms()
        assert slow > fast * 5


class TestEngineFieldConstants:
    def test_text_fields_disjoint_from_metadata_fields(self):
        from repro.engine import fields as F

        assert not set(F.TEXT_FIELDS) & set(F.METADATA_FIELDS)
        assert not set(F.TEXT_FIELDS) & set(F.DATE_FIELDS)

    def test_any_is_not_a_concrete_field(self):
        from repro.engine import fields as F

        assert F.ANY not in F.TEXT_FIELDS


class TestSourceRepr:
    def test_repr_carries_identity(self, source1):
        text = repr(source1)
        assert "Source-1" in text
        assert "3 docs" in text


class TestQuickFederationSurface:
    def test_returns_usable_handles(self):
        from repro import Metasearcher, quick_federation

        internet, resource_url = quick_federation(seed=3, docs_per_source=10)
        assert resource_url.endswith("/resource")
        searcher = Metasearcher(internet, [resource_url])
        assert len(searcher.refresh()) == 4


class TestExplainRecordForSaltonSoft:
    def test_pivoted_vendor_explains(self):
        from repro.vendors import build_vendor_source
        from repro.zdsr import ZdsrGateway

        source = build_vendor_source("SaltonSoft", "Salton-1", source1_documents())
        record = ZdsrGateway(source).explain()
        assert record.ranking_algorithm_id == "Salton-2"
        assert record.supports_ranked_retrieval
