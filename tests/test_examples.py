"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them from
rotting as the library evolves.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda path: path.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {script.stem for script in SCRIPTS}
    assert "quickstart" in names
    assert len(names) >= 7
