"""Thesaurus groups and expansion."""

from repro.text.thesaurus import DEFAULT_THESAURUS, Thesaurus


def test_expansion_includes_self():
    assert "database" in DEFAULT_THESAURUS.expand("database")


def test_expansion_is_symmetric():
    assert "databank" in DEFAULT_THESAURUS.expand("database")
    assert "database" in DEFAULT_THESAURUS.expand("databank")


def test_unknown_word_expands_to_itself():
    assert DEFAULT_THESAURUS.expand("xylophone") == frozenset({"xylophone"})


def test_case_insensitive_lookup():
    assert DEFAULT_THESAURUS.expand("Database") == DEFAULT_THESAURUS.expand("database")


def test_overlapping_groups_merge():
    thesaurus = Thesaurus([("a", "b"), ("b", "c")])
    assert thesaurus.expand("a") == frozenset({"a", "b", "c"})


def test_contains():
    assert "search" in DEFAULT_THESAURUS
    assert "xylophone" not in DEFAULT_THESAURUS


def test_group_count():
    thesaurus = Thesaurus([("a", "b"), ("c", "d")])
    assert len(thesaurus) == 2


def test_as_mapping_is_readonly_copy():
    mapping = DEFAULT_THESAURUS.as_mapping()
    assert mapping["database"] == DEFAULT_THESAURUS.expand("database")
