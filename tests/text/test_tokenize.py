"""Named tokenizers: the Z39.50 question and positional output."""

import pytest
from hypothesis import given, strategies as st

from repro.text.tokenize import (
    SimpleTokenizer,
    TokenizerRegistry,
    UnicodeTokenizer,
    WhitespaceTokenizer,
    default_registry,
    get_tokenizer,
)


class TestZ3950Question:
    """The paper: is a query on "Z39.50" one term or two?  It depends
    on the tokenizer — which is why STARTS names tokenizers."""

    def test_simple_tokenizer_splits_on_punctuation(self):
        assert SimpleTokenizer().words("Z39.50") == ["z39", "50"]

    def test_whitespace_tokenizer_keeps_interior_punctuation(self):
        assert WhitespaceTokenizer().words("Z39.50") == ["z39.50"]

    def test_unicode_tokenizer_splits_like_word_chars(self):
        assert UnicodeTokenizer().words("Z39.50") == ["z39", "50"]


class TestSimpleTokenizer:
    def test_positions_and_spans(self):
        tokens = SimpleTokenizer().tokenize("alpha beta gamma")
        assert [t.text for t in tokens] == ["alpha", "beta", "gamma"]
        assert [t.position for t in tokens] == [0, 1, 2]
        assert tokens[1].start == 6 and tokens[1].end == 10

    def test_lowercases(self):
        assert SimpleTokenizer().words("Hello WORLD") == ["hello", "world"]

    def test_empty_text(self):
        assert SimpleTokenizer().tokenize("") == []


class TestWhitespaceTokenizer:
    def test_strips_trailing_sentence_punctuation(self):
        assert WhitespaceTokenizer().words("systems.") == ["systems"]
        assert WhitespaceTokenizer().words('"quoted"') == ["quoted"]

    def test_positions_renumbered_after_drops(self):
        tokens = WhitespaceTokenizer().tokenize("a ... b")
        assert [t.text for t in tokens] == ["a", "b"]
        assert [t.position for t in tokens] == [0, 1]


class TestUnicodeTokenizer:
    def test_accented_words_preserved(self):
        assert UnicodeTokenizer().words("algoritmo análisis") == [
            "algoritmo",
            "análisis",
        ]

    def test_nfkc_normalization(self):
        # The ﬁ ligature normalizes to "fi".
        assert UnicodeTokenizer().words("ﬁle") == ["file"]


class TestRegistry:
    def test_default_registry_has_builtin_ids(self):
        assert set(default_registry().known_ids()) >= {"Acme-1", "Acme-2", "Uni-1"}

    def test_get_tokenizer_by_id(self):
        assert isinstance(get_tokenizer("Acme-1"), SimpleTokenizer)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_tokenizer("NoSuch-99")

    def test_custom_registration(self):
        registry = TokenizerRegistry()
        registry.register(SimpleTokenizer())
        assert registry.known_ids() == ["Acme-1"]


@given(st.text(max_size=200))
def test_positions_strictly_increasing(text):
    for tokenizer in (SimpleTokenizer(), WhitespaceTokenizer(), UnicodeTokenizer()):
        tokens = tokenizer.tokenize(text)
        positions = [t.position for t in tokens]
        assert positions == sorted(set(positions))


@given(st.text(alphabet="abc XYZ.,", max_size=100))
def test_spans_cover_token_text(text):
    for token in SimpleTokenizer().tokenize(text):
        assert text[token.start : token.end].lower() == token.text
