"""Porter stemmer against the algorithm's published behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.text.porter import PorterStemmer, porter_stem

# Classic input → stem pairs from Porter's paper and the reference
# implementation's vocabulary.
KNOWN_STEMS = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
    # Domain words from the paper.
    ("databases", "databas"),
    ("database", "databas"),
    ("systems", "system"),
    ("distributed", "distribut"),
    ("retrieval", "retriev"),
]


@pytest.mark.parametrize("word,expected", KNOWN_STEMS)
def test_known_stems(word, expected):
    assert porter_stem(word) == expected


def test_short_words_unchanged():
    assert porter_stem("a") == "a"
    assert porter_stem("is") == "is"
    assert porter_stem("be") == "be"


def test_input_is_lowercased():
    assert porter_stem("Databases") == "databas"
    assert porter_stem("SYSTEMS") == "system"


def test_database_and_databases_share_stem():
    """The paper's Example 2: a stem query on "databases" matches
    documents containing "database"."""
    assert porter_stem("database") == porter_stem("databases")


def test_stemmer_instance_is_reusable():
    stemmer = PorterStemmer()
    assert stemmer.stem("running") == "run"
    assert stemmer.stem("runner") == "runner"  # m(runn)=1, not > 1


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
def test_stem_never_longer_than_word(word):
    assert len(porter_stem(word)) <= len(word)


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
def test_stem_is_deterministic(word):
    assert porter_stem(word) == porter_stem(word)


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=20))
def test_stem_is_nonempty_lowercase(word):
    stem = porter_stem(word)
    assert stem
    assert stem == stem.lower()
