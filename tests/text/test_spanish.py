"""The light Spanish stemmer."""

from hypothesis import given, strategies as st

from repro.text.spanish import spanish_stem


def test_plural_es_removed():
    assert spanish_stem("redes") == spanish_stem("red")


def test_plural_s_removed():
    assert spanish_stem("datos") == spanish_stem("dato")


def test_ces_plural():
    # luces -> luz
    assert spanish_stem("luces") == "luz"


def test_derivational_suffix():
    assert spanish_stem("rapidamente").startswith("rapid")


def test_verb_conjugations_share_stem():
    assert spanish_stem("distribuido") == spanish_stem("distribuida")


def test_accents_folded():
    assert "í" not in spanish_stem("índices")
    assert spanish_stem("análisis") == spanish_stem("analisis")


def test_short_words_kept():
    assert spanish_stem("el") == "el"
    assert spanish_stem("los") == "los"  # <= 3 chars, unchanged


def test_consulta_consultas_collide():
    """Example 11 vocabulary: singular and plural share a stem."""
    assert spanish_stem("consultas") == spanish_stem("consulta")


@given(st.text(alphabet="abcdefghijklmnñopqrstuvwxyzáéíóú", min_size=1, max_size=20))
def test_stem_never_longer(word):
    assert len(spanish_stem(word)) <= len(word)


@given(st.text(alphabet="abcdefghijklmnñopqrstuvwxyzáéíóú", min_size=1, max_size=20))
def test_stem_nonempty_for_nonempty(word):
    assert spanish_stem(word)
