"""RFC-1766 language tag parsing and matching."""

import pytest
from hypothesis import given, strategies as st

from repro.text.langtags import (
    DEFAULT_LANGUAGE,
    EN_US,
    InvalidLanguageTag,
    LanguageTag,
    parse_language_tag,
)


class TestParsing:
    def test_bare_language(self):
        tag = parse_language_tag("en")
        assert tag.language == "en"
        assert tag.subtags == ()
        assert tag.country is None

    def test_language_with_country(self):
        tag = parse_language_tag("en-US")
        assert tag.language == "en"
        assert tag.country == "US"

    def test_case_is_normalized(self):
        assert parse_language_tag("EN-us") == LanguageTag("en", ("US",))

    def test_multiple_subtags(self):
        tag = parse_language_tag("en-US-boont")
        assert tag.subtags == ("US", "boont")

    def test_long_subtag_is_not_a_country(self):
        tag = parse_language_tag("en-cockney")
        assert tag.country is None

    @pytest.mark.parametrize("bad", ["", "e!", "en--US", "-en", "en-", "a b"])
    def test_malformed_tags_rejected(self, bad):
        with pytest.raises(InvalidLanguageTag):
            parse_language_tag(bad)

    def test_str_round_trip(self):
        assert str(parse_language_tag("en-US")) == "en-US"
        assert str(parse_language_tag("es")) == "es"


class TestMatching:
    def test_bare_tag_covers_country_variants(self):
        assert parse_language_tag("en").matches(parse_language_tag("en-US"))
        assert parse_language_tag("en").matches(parse_language_tag("en-GB"))

    def test_country_tag_only_matches_itself(self):
        assert parse_language_tag("en-US").matches(parse_language_tag("en-US"))
        assert not parse_language_tag("en-US").matches(parse_language_tag("en-GB"))
        assert not parse_language_tag("en-US").matches(parse_language_tag("en"))

    def test_different_languages_never_match(self):
        assert not parse_language_tag("en").matches(parse_language_tag("es"))

    def test_module_constants(self):
        assert DEFAULT_LANGUAGE.language == "en"
        assert EN_US.country == "US"


@given(
    st.text(alphabet="abcdefgh", min_size=1, max_size=8),
    st.text(alphabet="ABCDEFGH", min_size=2, max_size=2),
)
def test_round_trip_property(language, country):
    tag = parse_language_tag(f"{language}-{country}")
    assert parse_language_tag(str(tag)) == tag


@given(st.text(alphabet="abcdefgh", min_size=1, max_size=8))
def test_bare_round_trip_property(language):
    tag = parse_language_tag(language)
    assert str(tag) == language.lower()
