"""Stop-word lists and the "The Who" scenario."""

from repro.text.langtags import parse_language_tag
from repro.text.stopwords import ENGLISH_STOP_WORDS, SPANISH_STOP_WORDS, StopWordList


def test_membership_is_case_insensitive():
    assert "The" in ENGLISH_STOP_WORDS
    assert "THE" in ENGLISH_STOP_WORDS


def test_the_who_scenario():
    """Both words of "The Who" are English stop words — the paper's
    motivating case for TurnOffStopWords."""
    assert ENGLISH_STOP_WORDS.is_stop_word("the")
    assert ENGLISH_STOP_WORDS.is_stop_word("who")


def test_content_words_are_not_stopped():
    for word in ("database", "distributed", "ullman"):
        assert word not in ENGLISH_STOP_WORDS


def test_spanish_list_is_distinct():
    assert "el" in SPANISH_STOP_WORDS
    assert "el" not in ENGLISH_STOP_WORDS
    assert SPANISH_STOP_WORDS.language == parse_language_tag("es")


def test_custom_list_construction():
    custom = StopWordList(["Foo", "BAR"], language="en", name="custom")
    assert "foo" in custom
    assert "bar" in custom
    assert len(custom) == 2
    assert list(custom) == ["bar", "foo"]


def test_union_merges_names_and_words():
    merged = ENGLISH_STOP_WORDS.union(SPANISH_STOP_WORDS)
    assert "the" in merged
    assert "el" in merged
    assert "english" in merged.name and "spanish" in merged.name


def test_iteration_is_sorted():
    words = list(ENGLISH_STOP_WORDS)
    assert words == sorted(words)


def test_repr_mentions_size():
    assert str(len(ENGLISH_STOP_WORDS)) in repr(ENGLISH_STOP_WORDS)
