"""Analyzer pipelines: stop words, stemming, position preservation."""

from repro.text.analysis import Analyzer
from repro.text.langtags import parse_language_tag
from repro.text.stopwords import ENGLISH_STOP_WORDS, SPANISH_STOP_WORDS
from repro.text.tokenize import SimpleTokenizer


def test_stop_words_removed_but_positions_preserved():
    analyzer = Analyzer()
    tokens = analyzer.analyze("the distributed and the databases")
    assert [t.term for t in tokens] == ["distributed", "databases"]
    # Positions reflect the original word offsets so prox still works.
    assert [t.position for t in tokens] == [1, 4]


def test_stop_word_dropping_can_be_disabled():
    analyzer = Analyzer()
    tokens = analyzer.analyze("the who", drop_stop_words=False)
    assert [t.term for t in tokens] == ["the", "who"]


def test_forced_stop_words_when_cannot_disable():
    analyzer = Analyzer(can_disable_stop_words=False)
    tokens = analyzer.analyze("the who", drop_stop_words=False)
    assert tokens == []


def test_index_time_stemming():
    analyzer = Analyzer(stem=True)
    tokens = analyzer.analyze("distributed databases")
    assert [t.term for t in tokens] == ["distribut", "databas"]
    # Surface forms survive for content summaries.
    assert [t.surface for t in tokens] == ["distributed", "databases"]


def test_per_language_stemming():
    analyzer = Analyzer(stem=True)
    spanish = analyzer.analyze("consultas distribuidas", language="es")
    english = analyzer.analyze("consultas distribuidas", language="en")
    assert [t.term for t in spanish] != [t.term for t in english]


def test_spanish_stop_words_apply_to_spanish_text():
    analyzer = Analyzer()
    tokens = analyzer.analyze("el algoritmo y los datos", language="es")
    assert [t.term for t in tokens] == ["algoritmo", "datos"]


def test_normalize_stem_override():
    """The query-side stem modifier works even on a non-stemming index."""
    analyzer = Analyzer(stem=False)
    assert analyzer.normalize("databases") == "databases"
    assert analyzer.normalize("databases", stem=True) == "databas"


def test_case_sensitive_pipeline():
    analyzer = Analyzer(case_sensitive=True, tokenizer=CaseKeepingTokenizer())
    tokens = analyzer.analyze("Ullman databases")
    assert tokens[0].term == "Ullman"


class CaseKeepingTokenizer(SimpleTokenizer):
    tokenizer_id = "Case-1"
    lowercase = False


def test_vocabulary_helper():
    analyzer = Analyzer()
    assert analyzer.vocabulary("databases and databases") == {"databases"}


def test_stemmer_for_unknown_language_is_identity():
    analyzer = Analyzer()
    stemmer = analyzer.stemmer_for(parse_language_tag("fr"))
    assert stemmer("mangent") == "mangent"


def test_stop_list_lookup_by_language():
    analyzer = Analyzer()
    assert analyzer.stop_list_for(parse_language_tag("en-US")) is ENGLISH_STOP_WORDS
    assert analyzer.stop_list_for(parse_language_tag("es")) is SPANISH_STOP_WORDS
    assert analyzer.stop_list_for(parse_language_tag("fr")) is None
