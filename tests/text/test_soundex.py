"""Soundex against the classic published test vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.text.soundex import soundex

# The canonical examples from the US National Archives specification.
CLASSIC_VECTORS = [
    ("Robert", "R163"),
    ("Rupert", "R163"),
    ("Ashcraft", "A261"),
    ("Ashcroft", "A261"),
    ("Tymczak", "T522"),
    ("Pfister", "P236"),
    ("Honeyman", "H555"),
    ("Washington", "W252"),
    ("Lee", "L000"),
    ("Gutierrez", "G362"),
    ("Jackson", "J250"),
    ("Euler", "E460"),
    ("Gauss", "G200"),
    ("Hilbert", "H416"),
    ("Knuth", "K530"),
    ("Lloyd", "L300"),
    ("Lukasiewicz", "L222"),
]


@pytest.mark.parametrize("name,code", CLASSIC_VECTORS)
def test_classic_vectors(name, code):
    assert soundex(name) == code


def test_phonetically_similar_names_collide():
    """The protocol's phonetic modifier: Robert matches Rupert."""
    assert soundex("Robert") == soundex("Rupert")


def test_case_insensitive():
    assert soundex("ULLMAN") == soundex("ullman")


def test_non_alpha_ignored():
    assert soundex("O'Brien") == soundex("OBrien")


def test_empty_and_non_alpha_inputs():
    assert soundex("") == "0000"
    assert soundex("123") == "0000"


def test_hw_transparency():
    """h/w do not break a run of same-coded consonants (Ashcraft)."""
    assert soundex("Ashcraft") == "A261"  # s+c collapse across the h


@given(st.text(min_size=0, max_size=30))
def test_output_shape(text):
    code = soundex(text)
    assert len(code) == 4
    assert code[0].isupper() or code[0] == "0"
    assert all(ch.isdigit() for ch in code[1:])


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
def test_deterministic(word):
    assert soundex(word) == soundex(word)
