"""Spans, counters and rendering for the observability layer."""

import threading

import pytest

from repro.observability import (
    SourceCounters,
    Tracer,
    render_counters,
    render_trace,
)


class TestSpans:
    def test_spans_nest_within_one_thread(self):
        tracer = Tracer()
        with tracer.span("outer", kind="root"):
            with tracer.span("inner"):
                tracer.event("tick", n=1)
        trace = tracer.trace()
        assert [span.name for span in trace.walk()] == ["outer", "inner", "tick"]
        outer = trace.find("outer")
        assert outer.attributes == {"kind": "root"}
        assert outer.children[0].name == "inner"
        assert trace.find("tick").duration_ms == 0.0
        assert trace.find("missing") is None

    def test_sibling_spans_stay_siblings(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in tracer.trace().spans] == ["first", "second"]

    def test_duration_measured_after_close(self):
        clock_value = [0.0]
        tracer = Tracer(clock=lambda: clock_value[0])
        with tracer.span("timed") as span:
            clock_value[0] = 0.25
        assert not span.is_open
        assert span.duration_ms == pytest.approx(250.0)

    def test_open_span_reports_elapsed_so_far(self):
        """A crashed round's open spans show accrued time, not 0.0."""
        clock_value = [0.0]
        tracer = Tracer(clock=lambda: clock_value[0])
        with tracer.span("timed") as span:
            assert span.is_open
            assert span.duration_ms == 0.0  # nothing accrued yet
            clock_value[0] = 0.1
            assert span.duration_ms == pytest.approx(100.0)
            clock_value[0] = 0.2
            assert span.duration_ms == pytest.approx(200.0)
        # Closing freezes the duration against further clock movement.
        clock_value[0] = 9.9
        assert span.duration_ms == pytest.approx(200.0)

    def test_hand_built_span_without_clock_reads_zero_while_open(self):
        from repro.observability import Span

        span = Span(name="manual", start_ms=10.0)
        assert span.is_open
        assert span.duration_ms == 0.0
        span.end_ms = 35.0
        assert span.duration_ms == pytest.approx(25.0)

    def test_annotate_merges_attributes(self):
        tracer = Tracer()
        with tracer.span("phase", a=1) as span:
            span.annotate(b=2, a=3)
        assert span.attributes == {"a": 3, "b": 2}

    def test_explicit_parent_crosses_threads(self):
        """Worker threads attach to the dispatcher's span via parent=."""
        tracer = Tracer()
        with tracer.span("query") as query_span:
            def worker(index: int) -> None:
                with tracer.span(f"query:src{index}", parent=query_span):
                    pass

            threads = [
                threading.Thread(target=worker, args=(index,)) for index in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        names = {child.name for child in query_span.children}
        assert names == {f"query:src{index}" for index in range(4)}
        # Without parent=, a worker thread's span would become a root.
        assert [span.name for span in tracer.trace().spans] == ["query"]


class TestCounters:
    def test_count_accumulates_per_source(self):
        tracer = Tracer()
        tracer.count("S1", requests=1, latency_ms=20.0)
        tracer.count("S1", requests=2, retries=1, latency_ms=40.0, cost=5.0)
        tracer.count("S2", requests=1)
        s1 = tracer.counters["S1"]
        assert (s1.requests, s1.retries) == (3, 1)
        assert s1.latency_ms == pytest.approx(60.0)
        assert s1.cost == pytest.approx(5.0)
        assert tracer.counters["S2"].requests == 1

    def test_counting_is_thread_safe(self):
        tracer = Tracer()

        def hammer() -> None:
            for _ in range(200):
                tracer.count("S", requests=1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tracer.counters["S"].requests == 1600

    def test_cache_counters_reject_fractional_integral_deltas(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="integral"):
            tracer.count_cache(hits=1.5)
        with pytest.raises(ValueError, match="integral"):
            tracer.count_cache(misses=0.25)
        # cost_saved is the one genuinely fractional tally.
        tracer.count_cache(hits=1, cost_saved=2.75)
        tracer.count_cache(cost_saved=0.25)
        assert tracer.cache.hits == 1
        assert tracer.cache.cost_saved == pytest.approx(3.0)

    def test_whole_valued_floats_still_count(self):
        tracer = Tracer()
        tracer.count_cache(hits=2.0, stores=1)
        assert tracer.cache.hits == 2
        assert tracer.cache.stores == 1


class TestThreadFanOut:
    """One tracer under a real pool: the query round's concurrency shape."""

    def test_pool_fan_out_with_barrier_keeps_the_trace_consistent(self):
        from concurrent.futures import ThreadPoolExecutor

        tracer = Tracer()
        workers = 8
        rounds = 25
        barrier = threading.Barrier(workers)

        def worker(index: int, query_span) -> None:
            barrier.wait()  # maximize overlap on the span/counter locks
            for round_number in range(rounds):
                name = f"query:src{index}"
                with tracer.span(name, parent=query_span, round=round_number):
                    with tracer.span(f"{name}:parse"):
                        pass
                tracer.count(f"src{index}", requests=1, latency_ms=1.0)
                tracer.count("shared", requests=1)

        with tracer.span("query") as query_span:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for future in [
                    pool.submit(worker, index, query_span)
                    for index in range(workers)
                ]:
                    future.result()

        trace = tracer.trace()
        assert [span.name for span in trace.spans] == ["query"]
        assert len(query_span.children) == workers * rounds
        # Every child kept its own nested parse span: no cross-thread
        # interleaving corrupted the per-thread span stacks.
        for child in query_span.children:
            assert [grandchild.name for grandchild in child.children] == [
                f"{child.name}:parse"
            ]
            assert not child.is_open
        assert tracer.counters["shared"].requests == workers * rounds
        for index in range(workers):
            assert tracer.counters[f"src{index}"].requests == rounds

    def test_sibling_threads_without_parent_become_roots(self):
        tracer = Tracer()

        def worker() -> None:
            with tracer.span("orphan"):
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert [span.name for span in tracer.trace().spans] == ["orphan"]


class TestRendering:
    def test_render_trace_shows_tree_and_counters(self):
        tracer = Tracer()
        with tracer.span("search", terms="databases"):
            with tracer.span("query:S1", url="http://s1.org"):
                pass
        tracer.count("S1", requests=2, retries=1, latency_ms=40.0, cost=1.5)
        rendered = render_trace(tracer.trace())
        assert "search" in rendered
        assert "  query:S1" in rendered  # indented child
        assert "terms=databases" in rendered
        assert "per-source counters" in rendered
        assert "S1" in rendered

    def test_render_marks_open_spans(self):
        clock_value = [0.0]
        tracer = Tracer(clock=lambda: clock_value[0])
        with tracer.span("search"):
            with tracer.span("query"):
                clock_value[0] = 0.05
                rendered = render_trace(tracer.trace())
        assert rendered.count("[open]") == 2  # both spans still running
        for line in rendered.splitlines():
            if line.strip().startswith(("search", "query")):
                assert "ms+ [open]" in line
        # A finished trace carries no markers.
        assert "[open]" not in render_trace(tracer.trace())

    def test_render_empty_trace(self):
        assert render_trace(Tracer().trace()) == "(empty trace)"
        assert render_counters({}) == []

    def test_render_counters_table_has_header_and_rows(self):
        lines = render_counters({"S1": SourceCounters(requests=3, cost=2.0)})
        assert len(lines) == 2
        assert "reqs" in lines[0] and "cost" in lines[0]
        assert lines[1].startswith("S1")
