"""Property-based histogram audit: buckets, edges, sums, exemplars.

Requires ``hypothesis``; the whole module skips cleanly where the
package is absent so the suite stays dependency-light.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.observability import (  # noqa: E402
    Histogram,
    MetricsRegistry,
    render_prometheus,
)

#: Finite floats plus +inf — everything a histogram legally observes.
observable = st.one_of(
    st.floats(
        min_value=-1e12,
        max_value=1e12,
        allow_nan=False,
        allow_infinity=False,
    ),
    st.just(math.inf),
)

bounds_strategy = st.lists(
    st.floats(min_value=0.001, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
    unique=True,
).map(lambda bounds: tuple(sorted(bounds)))


class TestConservationLaws:
    @settings(max_examples=200, deadline=None)
    @given(bounds=bounds_strategy, values=st.lists(observable, max_size=50))
    def test_count_and_buckets_conserve_observations(self, bounds, values):
        histogram = Histogram(bounds)
        for value in values:
            histogram.observe(value)
        assert histogram.count == len(values)
        assert sum(histogram.bucket_counts) == len(values)

    @settings(max_examples=200, deadline=None)
    @given(
        bounds=bounds_strategy,
        values=st.lists(
            st.floats(
                min_value=-1e12,
                max_value=1e12,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=50,
        ),
    )
    def test_sum_matches_the_observations(self, bounds, values):
        histogram = Histogram(bounds)
        for value in values:
            histogram.observe(value)
        # Sequential accumulation reorders rounding vs fsum; allow the
        # difference float addition itself can introduce.
        assert histogram.sum == pytest.approx(
            math.fsum(values), abs=1e-6, rel=1e-9
        )

    @settings(max_examples=200, deadline=None)
    @given(bounds=bounds_strategy, values=st.lists(observable, max_size=50))
    def test_each_value_lands_in_its_first_covering_bucket(self, bounds, values):
        histogram = Histogram(bounds)
        for value in values:
            histogram.observe(value)
        expected = [0] * (len(bounds) + 1)
        for value in values:
            for index, bound in enumerate(bounds):
                if value <= bound:
                    expected[index] += 1
                    break
            else:
                expected[-1] += 1
        assert list(histogram.bucket_counts) == expected


class TestEdges:
    def test_zero_lands_in_the_first_bucket(self):
        histogram = Histogram((1.0, 10.0))
        histogram.observe(0.0)
        assert histogram.bucket_counts[0] == 1

    def test_negative_values_land_in_the_first_bucket(self):
        # Prometheus buckets are cumulative from -inf: a negative
        # observation belongs to every le bucket, i.e. the first.
        histogram = Histogram((1.0, 10.0))
        histogram.observe(-5.0)
        assert histogram.bucket_counts[0] == 1
        assert histogram.sum == -5.0

    def test_exact_bound_is_inclusive(self):
        histogram = Histogram((1.0, 10.0))
        histogram.observe(1.0)
        histogram.observe(10.0)
        assert list(histogram.bucket_counts) == [1, 1, 0]

    def test_inf_lands_in_the_overflow_bucket(self):
        histogram = Histogram((1.0,))
        histogram.observe(math.inf)
        assert histogram.bucket_counts[-1] == 1
        assert histogram.sum == math.inf

    def test_nan_is_rejected(self):
        histogram = Histogram((1.0,))
        with pytest.raises(ValueError, match="NaN"):
            histogram.observe(math.nan)
        assert histogram.count == 0


class TestRenderedInvariants:
    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(observable, min_size=1, max_size=30))
    def test_bucket_lines_are_monotone_and_end_at_count(self, values):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_ms", buckets=(1.0, 10.0, 100.0))
        for value in values:
            histogram.observe(value)
        lines = [
            line
            for line in render_prometheus(registry).split("\n")
            if line.startswith("h_ms_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == len(values)
        count_line = next(
            line
            for line in render_prometheus(registry).split("\n")
            if line.startswith("h_ms_count")
        )
        assert count_line.endswith(f" {len(values)}")

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.tuples(observable, st.text(alphabet="0123456789abcdef", min_size=1)),
            min_size=1,
            max_size=30,
        )
    )
    def test_exemplar_always_reflects_the_last_hit(self, values):
        histogram = Histogram((1.0, 100.0))
        last_for_bucket = {}
        for value, trace_id in values:
            histogram.observe(value, exemplar=trace_id)
            for index, bound in enumerate(histogram.bounds):
                if value <= bound:
                    last_for_bucket[index] = (trace_id, value)
                    break
            else:
                last_for_bucket[len(histogram.bounds)] = (trace_id, value)
        assert histogram.exemplars == last_for_bucket

    def test_observation_without_exemplar_keeps_the_old_one(self):
        histogram = Histogram((10.0,))
        histogram.observe(1.0, exemplar="keep")
        histogram.observe(2.0)
        assert histogram.exemplars[0] == ("keep", 1.0)
