"""Source health scoring and the behavior it drives."""

import pytest

from repro.federation import QueryPolicy
from repro.observability import HealthPolicy, MetricsRegistry, SourceHealth


def _sick(health: SourceHealth, source_id: str, n: int = 5) -> None:
    for _ in range(n):
        health.record_attempt(source_id, "error", latency_ms=20.0, cost=0.1)


def _fit(health: SourceHealth, source_id: str, n: int = 5) -> None:
    for _ in range(n):
        health.record_attempt(source_id, "ok", latency_ms=20.0, cost=0.1)


class TestScoring:
    def test_unknown_source_is_perfectly_healthy(self):
        health = SourceHealth(registry=MetricsRegistry())
        assert health.score("S1") == 1.0
        assert not health.is_unhealthy("S1")

    def test_errors_drag_the_score_down(self):
        health = SourceHealth(registry=MetricsRegistry())
        _fit(health, "good")
        _sick(health, "bad")
        assert health.score("good") > 0.9
        assert health.score("bad") < 0.5
        assert health.is_unhealthy("bad")
        assert not health.is_unhealthy("good")

    def test_timeouts_weigh_separately_from_errors(self):
        policy = HealthPolicy(error_weight=0.0, timeout_weight=0.5)
        health = SourceHealth(policy, registry=MetricsRegistry())
        for _ in range(4):
            health.record_attempt("S", "timeout", latency_ms=500.0)
        assert health.score("S") < 0.5

    def test_latency_ewma_penalizes_slow_sources(self):
        policy = HealthPolicy(latency_budget_ms=100.0, latency_weight=0.6)
        health = SourceHealth(policy, registry=MetricsRegistry())
        for _ in range(10):
            health.record_attempt("slow", "ok", latency_ms=500.0)
        assert health.score("slow") <= 1.0 - 0.6 + 1e-9

    def test_one_flake_is_not_a_track_record(self):
        policy = HealthPolicy(min_samples=2)
        health = SourceHealth(policy, registry=MetricsRegistry())
        health.record_attempt("S", "error", latency_ms=20.0)
        assert not health.is_unhealthy("S")  # score low, but evidence thin
        health.record_attempt("S", "error", latency_ms=20.0)
        assert health.is_unhealthy("S")

    def test_window_forgets_ancient_failures(self):
        policy = HealthPolicy(window=4)
        health = SourceHealth(policy, registry=MetricsRegistry())
        _sick(health, "S", n=4)
        assert health.is_unhealthy("S")
        _fit(health, "S", n=4)  # pushes every error out of the window
        assert not health.is_unhealthy("S")
        assert health.score("S") > 0.9

    def test_scores_export_to_the_gauge(self):
        registry = MetricsRegistry()
        health = SourceHealth(registry=registry)
        _sick(health, "bad", n=3)
        family = registry.family("source_health_score")
        ((labels, gauge),) = family.children()
        assert labels == ("bad",)
        assert gauge.value == pytest.approx(health.score("bad"))

    def test_snapshot_reports_folded_rates(self):
        health = SourceHealth(registry=MetricsRegistry())
        _sick(health, "bad", n=2)
        _fit(health, "bad", n=2)
        snap = health.snapshot()["bad"]
        assert snap.samples == 4
        assert snap.error_rate == pytest.approx(0.5)
        assert snap.timeout_rate == 0.0
        assert 0.0 < snap.score < 1.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(window=0)
        with pytest.raises(ValueError):
            HealthPolicy(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(unhealthy_below=1.5)
        with pytest.raises(ValueError):
            HealthPolicy(negative_ttl_max_scale=0.5)


class TestRecordOutcome:
    def test_outcome_attempts_feed_the_windows(self, fresh_registry):
        from repro.federation.outcomes import Attempt, OutcomeStatus, SourceOutcome

        health = SourceHealth()
        outcome = SourceOutcome(
            "S1",
            OutcomeStatus.ERROR,
            attempts=(
                Attempt(1, OutcomeStatus.ERROR, 20.0, 0.1, 0.0, False, "boom"),
                Attempt(2, OutcomeStatus.ERROR, 20.0, 0.1, 0.0, False, "boom"),
            ),
        )
        health.record_outcome(outcome)
        assert health.snapshot()["S1"].samples == 2

    def test_skipped_outcomes_carry_no_evidence(self, fresh_registry):
        from repro.federation.outcomes import SourceOutcome

        health = SourceHealth()
        health.record_outcome(SourceOutcome.skip("S1", "negative-cached"))
        assert health.score("S1") == 1.0
        assert "S1" not in health.snapshot()


class TestBehavior:
    def test_unhealthy_sources_hedge_first(self):
        health = SourceHealth(registry=MetricsRegistry())
        _sick(health, "bad")
        base = QueryPolicy(hedge_after_ms=200.0)
        adapted = health.adapt("bad", base)
        assert adapted is not base
        assert adapted.hedge_after_ms == 0.0
        # Everything else survives the replace.
        assert adapted.timeout_ms == base.timeout_ms
        assert adapted.max_attempts == base.max_attempts

    def test_healthy_sources_keep_their_policy_object(self):
        health = SourceHealth(registry=MetricsRegistry())
        _fit(health, "good")
        base = QueryPolicy(hedge_after_ms=200.0)
        assert health.adapt("good", base) is base

    def test_hedge_never_raised_by_adaptation(self):
        policy = HealthPolicy(hedge_unhealthy_after_ms=50.0)
        health = SourceHealth(policy, registry=MetricsRegistry())
        _sick(health, "bad")
        base = QueryPolicy(hedge_after_ms=10.0)  # already more aggressive
        assert health.adapt("bad", base) is base

    def test_order_by_health_is_stable_within_tiers(self):
        health = SourceHealth(registry=MetricsRegistry())
        _sick(health, "B")
        assert health.order_by_health(["A", "B", "C"]) == ["A", "C", "B"]
        assert health.order_by_health(["B"]) == ["B"]

    def test_negative_ttl_scales_with_badness(self):
        policy = HealthPolicy(negative_ttl_max_scale=4.0, unhealthy_below=0.5)
        health = SourceHealth(policy, registry=MetricsRegistry())
        assert health.negative_ttl_ms("unknown", 1000.0) == 1000.0
        _sick(health, "bad", n=20)  # score bottoms out near 1 - weights
        scaled = health.negative_ttl_ms("bad", 1000.0)
        assert scaled > 1000.0
        assert scaled <= 4000.0
