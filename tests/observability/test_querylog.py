"""The wide-event query log: ring buffer, NDJSON, metasearcher wiring."""

import json

import pytest

from repro import Metasearcher, SQuery, parse_expression, quick_federation
from repro.observability import (
    QueryLog,
    QueryLogRecord,
    get_query_log,
    set_query_log,
)


def _record(outcome="wire", total_ms=1.0, **overrides):
    return QueryLogRecord(
        terms="databases", outcome=outcome, total_ms=total_ms, **overrides
    )


@pytest.fixture
def fresh_query_log():
    previous = get_query_log()
    log = set_query_log(QueryLog(slow_ms=10_000.0))
    yield log
    set_query_log(previous)


class TestRingBuffer:
    def test_capacity_drops_oldest(self):
        log = QueryLog(capacity=2)
        for index in range(3):
            log.record(_record(total_ms=float(index)))
        kept = [record.total_ms for record in log.records()]
        assert kept == [1.0, 2.0]
        assert log.total_recorded == 3
        assert len(log) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryLog(capacity=0)

    def test_outcome_filter(self):
        log = QueryLog()
        log.record(_record("wire"))
        log.record(_record("hit"))
        log.record(_record("wire"))
        assert len(log.records("wire")) == 2
        assert len(log.records("hit")) == 1
        assert log.records("shed") == []

    def test_disabled_log_drops_records(self):
        log = QueryLog.disabled()
        log.record(_record())
        assert len(log) == 0
        assert log.total_recorded == 0

    def test_record_stamps_wall_clock(self):
        log = QueryLog()
        log.record(_record())
        assert log.records()[0].unix_ms > 0

    def test_explicit_timestamp_is_kept(self):
        log = QueryLog()
        log.record(_record(unix_ms=123.0))
        assert log.records()[0].unix_ms == 123.0


class TestSlowQueries:
    def test_slowest_first_at_threshold(self):
        log = QueryLog(slow_ms=5.0)
        log.record(_record(total_ms=2.0))
        log.record(_record(total_ms=9.0))
        log.record(_record(total_ms=5.0))
        assert [r.total_ms for r in log.slow_queries()] == [9.0, 5.0]
        assert log.total_slow == 2

    def test_no_threshold_means_no_slow_queries(self):
        log = QueryLog()
        log.record(_record(total_ms=1e9))
        assert log.slow_queries() == []


class TestNdjson:
    def test_one_sorted_json_object_per_line(self):
        log = QueryLog()
        log.record(_record("wire", 1.25, trace_id="abc"))
        log.record(_record("hit", 0.5))
        lines = log.to_ndjson().strip().split("\n")
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "query"
        assert first["outcome"] == "wire"
        assert first["trace_id"] == "abc"
        assert first["total_ms"] == 1.25

    def test_empty_log_renders_empty(self):
        assert QueryLog().to_ndjson() == ""

    def test_write_ndjson_round_trips(self, tmp_path):
        log = QueryLog()
        log.record(_record())
        path = tmp_path / "queries.ndjson"
        assert log.write_ndjson(str(path)) == 1
        row = json.loads(path.read_text().strip())
        assert row["terms"] == "databases"


class TestMetasearcherWiring:
    def _searcher(self):
        internet, resource_url = quick_federation(seed=5, docs_per_source=15)
        searcher = Metasearcher(internet, [resource_url])
        searcher.refresh()
        return searcher

    def _query(self, text="databases"):
        return SQuery(
            ranking_expression=parse_expression(f'(body-of-text "{text}")'),
            max_number_documents=5,
        )

    def test_search_logs_one_wire_record(self, fresh_query_log):
        searcher = self._searcher()
        result = searcher.search(self._query(), k_sources=2)
        records = fresh_query_log.records()
        assert [record.outcome for record in records] == ["wire"]
        record = records[0]
        assert record.trace_id == result.trace.trace_id
        assert record.selected_sources
        assert record.total_ms > 0
        assert record.requests >= len(record.selected_sources)
        assert "query" in record.phase_ms

    def test_cache_hit_logs_hit_outcome(self, fresh_query_log):
        searcher = self._searcher()
        searcher.search(self._query(), k_sources=2)
        searcher.search(self._query(), k_sources=2)
        outcomes = [record.outcome for record in fresh_query_log.records()]
        assert outcomes == ["wire", "hit"]
        hit = fresh_query_log.records("hit")[0]
        assert hit.cache_hits >= 1

    def test_stream_logs_stream_outcome(self, fresh_query_log):
        searcher = self._searcher()
        list(searcher.search_stream(self._query("medicine"), k_sources=2))
        outcomes = [record.outcome for record in fresh_query_log.records()]
        assert outcomes[-1] == "stream"

    def test_disabled_log_keeps_search_silent(self, fresh_query_log):
        set_query_log(QueryLog.disabled())
        searcher = self._searcher()
        searcher.search(self._query(), k_sources=2)
        assert len(get_query_log()) == 0
