"""Streaming telemetry reaches the registry and the Prometheus text."""

from repro.cache import CachePolicy
from repro.experiments import FederationSpec, build_federation
from repro.federation import AsyncExecutor, QueryPolicy
from repro.metasearch import Metasearcher
from repro.observability import render_prometheus
from repro.starts import SQuery, parse_expression


def _run_streamed_search(executor):
    federation = build_federation(
        FederationSpec(n_sources=4, docs_per_source=10, n_queries=2, seed=17)
    )
    searcher = Metasearcher(
        federation.internet,
        ["http://experiments.example.org/resource"],
        cache_policy=CachePolicy.disabled(),
        query_policy=QueryPolicy(timeout_ms=500.0),
    )
    searcher.refresh()
    query = SQuery(
        ranking_expression=parse_expression('(body-of-text "database")'),
        max_number_documents=10,
    )
    return list(searcher.search_stream(query, k_sources=3, executor=executor))


class TestStreamingMetrics:
    def test_first_result_histogram_observed(self, fresh_registry):
        emissions = _run_streamed_search(AsyncExecutor(max_concurrency=4))
        assert emissions[-1].is_final
        histogram = fresh_registry.histogram(
            "stream_first_result_ms",
            "Wall-clock time until a streamed search first "
            "emitted merged documents.",
        )
        child = histogram.labels()
        assert child.count == 1
        assert child.sum >= 0.0

    def test_inflight_gauge_settles_to_zero(self, fresh_registry):
        _run_streamed_search(AsyncExecutor(max_concurrency=4))
        gauge = fresh_registry.gauge(
            "executor_inflight_tasks",
            "Source-query tasks currently in flight per executor.",
            labels=("executor",),
        )
        assert gauge.labels(executor="async").value == 0.0

    def test_both_families_render_in_prometheus_text(self, fresh_registry):
        _run_streamed_search(AsyncExecutor(max_concurrency=4))
        text = render_prometheus(fresh_registry)
        assert "# TYPE executor_inflight_tasks gauge" in text
        assert 'executor_inflight_tasks{executor="async"}' in text
        assert "# TYPE stream_first_result_ms histogram" in text
        assert "stream_first_result_ms_count 1" in text
