"""SLOs: objectives, error budgets, multi-window burn alerts."""

import pytest

from repro.observability import (
    BurnWindow,
    MetricsRegistry,
    SloMonitor,
    SloObjective,
    SloPolicy,
)


def _availability(target=0.99, family="ops_total"):
    return SloObjective(
        name="ops-availability",
        kind="availability",
        target=target,
        family=family,
        label="result",
        bad_values=("error",),
    )


def _latency(target=0.9, threshold_ms=100.0):
    return SloObjective(
        name="ops-latency",
        kind="latency",
        target=target,
        family="ops_ms",
        threshold_ms=threshold_ms,
    )


def _count(registry, result, n):
    counter = registry.counter("ops_total", labels=("result",))
    for _ in range(n):
        counter.labels(result=result).inc()


class TestObjectiveValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SloObjective(name="x", kind="throughput", target=0.9, family="f")

    def test_target_must_be_a_fraction(self):
        for target in (0.0, 1.0, 1.5):
            with pytest.raises(ValueError, match="target"):
                _availability(target=target)

    def test_availability_needs_a_label(self):
        with pytest.raises(ValueError, match="label"):
            SloObjective(
                name="x", kind="availability", target=0.9, family="f"
            )

    def test_latency_needs_a_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            SloObjective(name="x", kind="latency", target=0.9, family="f")

    def test_burn_window_ordering_enforced(self):
        with pytest.raises(ValueError):
            BurnWindow(long_ms=100.0, short_ms=100.0, factor=2.0)
        with pytest.raises(ValueError):
            BurnWindow(long_ms=200.0, short_ms=100.0, factor=1.0)


class TestTotals:
    def test_missing_family_is_vacuously_met(self):
        registry = MetricsRegistry()
        assert _availability().totals(registry) == (0.0, 0.0)

    def test_availability_splits_good_from_bad(self):
        registry = MetricsRegistry()
        _count(registry, "ok", 97)
        _count(registry, "error", 3)
        assert _availability().totals(registry) == (97.0, 100.0)

    def test_latency_counts_buckets_under_threshold(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "ops_ms", buckets=(50.0, 100.0, 200.0)
        )
        for value in (10.0, 60.0, 100.0, 150.0, 500.0):
            histogram.observe(value)
        # Threshold 100 is a bucket bound: 10, 60, 100 are provably good.
        good, total = _latency(threshold_ms=100.0).totals(registry)
        assert (good, total) == (3.0, 5.0)

    def test_off_bound_threshold_is_conservative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("ops_ms", buckets=(50.0, 100.0))
        histogram.observe(60.0)  # actually under 75, but not provably
        good, _ = _latency(threshold_ms=75.0).totals(registry)
        assert good == 0.0


class TestBudget:
    def _monitor(self, registry, clock=None):
        policy = SloPolicy(objectives=(_availability(),))
        return SloMonitor(policy=policy, registry=registry, clock=clock)

    def test_untouched_budget_before_any_event(self):
        registry = MetricsRegistry()
        monitor = self._monitor(registry)
        (report,) = monitor.evaluate()
        assert report.compliance == 1.0
        assert report.budget_remaining == 1.0
        assert monitor.min_budget_remaining() == 1.0

    def test_budget_halves_at_half_the_allowed_failures(self):
        registry = MetricsRegistry()
        _count(registry, "ok", 995)
        _count(registry, "error", 5)  # 0.5% bad of the allowed 1%
        (report,) = self._monitor(registry).evaluate()
        assert report.budget_remaining == pytest.approx(0.5)

    def test_budget_clamps_at_zero_when_overspent(self):
        registry = MetricsRegistry()
        _count(registry, "ok", 50)
        _count(registry, "error", 50)
        (report,) = self._monitor(registry).evaluate()
        assert report.budget_remaining == 0.0
        assert "EXHAUSTED" in report.describe()

    def test_min_budget_takes_the_tightest_objective(self):
        registry = MetricsRegistry()
        _count(registry, "ok", 995)
        _count(registry, "error", 5)
        registry.histogram("ops_ms", buckets=(100.0,)).observe(10.0)
        policy = SloPolicy(objectives=(_availability(), _latency()))
        monitor = SloMonitor(policy=policy, registry=registry)
        assert monitor.min_budget_remaining() == pytest.approx(0.5)


class TestBurnAlerts:
    def _fixture(self):
        registry = MetricsRegistry()
        clock = {"now": 0.0}
        policy = SloPolicy(
            objectives=(_availability(),),
            windows=(BurnWindow(long_ms=60_000.0, short_ms=5_000.0, factor=10.0),),
        )
        monitor = SloMonitor(
            policy=policy, registry=registry, clock=lambda: clock["now"]
        )
        return registry, clock, monitor

    def _advance(self, clock, seconds):
        clock["now"] += seconds

    def test_fast_burn_fires_when_both_windows_exceed(self):
        registry, clock, monitor = self._fixture()
        monitor.snapshot()
        self._advance(clock, 70.0)
        monitor.snapshot()
        self._advance(clock, 10.0)
        # 50% failures against a 1% budget = 50x burn in both windows.
        _count(registry, "ok", 10)
        _count(registry, "error", 10)
        (report,) = monitor.evaluate()
        assert len(report.alerts) == 1
        alert = report.alerts[0]
        assert alert.long_burn >= 10.0
        assert alert.short_burn >= 10.0
        assert "burn" in alert.describe()

    def test_old_burn_alone_does_not_fire(self):
        registry, clock, monitor = self._fixture()
        monitor.snapshot()
        self._advance(clock, 70.0)
        monitor.snapshot()
        _count(registry, "ok", 10)
        _count(registry, "error", 10)
        self._advance(clock, 10.0)
        monitor.snapshot()  # the bad burst is now older than the short window
        self._advance(clock, 6.0)
        _count(registry, "ok", 100)  # short window sees only clean traffic
        (report,) = monitor.evaluate()
        assert report.alerts == []

    def test_no_baseline_means_silence(self):
        registry, _, monitor = self._fixture()
        _count(registry, "error", 100)
        (report,) = monitor.evaluate()
        assert report.alerts == []
        assert report.budget_remaining == 0.0


class TestGaugesAndDescribe:
    def test_export_gauges_publishes_per_objective(self):
        registry = MetricsRegistry()
        _count(registry, "ok", 100)
        policy = SloPolicy(objectives=(_availability(),))
        monitor = SloMonitor(policy=policy, registry=registry)
        monitor.export_gauges()
        family = registry.family("slo_error_budget_remaining")
        assert family is not None
        assert family.labels(objective="ops-availability").value == 1.0
        compliance = registry.family("slo_compliance")
        assert compliance.labels(objective="ops-availability").value == 1.0

    def test_default_policy_covers_search_promises(self):
        names = {o.name for o in SloPolicy.default().objectives}
        assert names == {
            "search-availability",
            "search-latency-p99",
            "stream-first-result",
        }

    def test_describe_is_one_line_per_objective(self):
        registry = MetricsRegistry()
        monitor = SloMonitor(registry=registry)
        lines = monitor.describe().split("\n")
        assert len(lines) == len(SloPolicy.default().objectives)
