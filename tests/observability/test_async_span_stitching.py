"""Stress: concurrent async rounds never tangle spans or leak them open.

Several :class:`QueryDispatcher`\\ s — each with its own tracer and a
disjoint slice of the federation — dispatch simultaneously over one
shared simulated internet in realtime mode, so their event loops and
worker threads genuinely interleave.  Afterward every tracer must hold
a clean, fully-closed span forest that references only its own sources:
a span filed under the wrong tracer, the wrong parent, or left open
would betray ambient-context leakage across tasks or threads.

Property-based via ``hypothesis`` where available; the module skips
cleanly otherwise.
"""

import threading

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.experiments import FederationSpec, build_federation  # noqa: E402
from repro.federation import (  # noqa: E402
    AsyncExecutor,
    QueryDispatcher,
    QueryPolicy,
    SourceRequest,
)
from repro.observability import Tracer  # noqa: E402
from repro.starts import SQuery, parse_expression  # noqa: E402
from repro.transport import StartsClient  # noqa: E402


def _query() -> SQuery:
    return SQuery(
        ranking_expression=parse_expression('list((body-of-text "database"))')
    )


def _federation(n_sources, seed):
    fed = build_federation(
        FederationSpec(
            n_sources=n_sources,
            docs_per_source=2,
            seed=seed,
            slow_source_index=None,
            charging_source_index=None,
        )
    )
    fed.internet.realtime = True
    fed.internet.time_scale = 0.05
    return fed


def _requests(fed, source_ids):
    return [
        SourceRequest(sid, f"{fed.sources[sid].base_url}/query", _query())
        for sid in source_ids
    ]


def _run_concurrent_rounds(n_dispatchers, sources_per_dispatcher, seed):
    fed = _federation(n_dispatchers * sources_per_dispatcher, seed)
    source_ids = fed.source_ids()
    slices = [
        source_ids[index::n_dispatchers] for index in range(n_dispatchers)
    ]
    dispatchers = [
        QueryDispatcher(
            StartsClient(fed.internet),
            executor=AsyncExecutor(max_concurrency=8),
            policy=QueryPolicy(timeout_ms=500.0),
            tracer=Tracer(),
        )
        for _ in range(n_dispatchers)
    ]
    errors = []

    def round_for(dispatcher, owned):
        requests = _requests(fed, owned)
        try:
            outcomes = dispatcher.dispatch(requests)
            assert all(outcome.ok for outcome in outcomes)
        except BaseException as error:  # surfaced on the main thread
            errors.append(error)

    threads = [
        threading.Thread(target=round_for, args=(dispatcher, owned))
        for dispatcher, owned in zip(dispatchers, slices)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return fed, dispatchers, slices


def _check_span_hygiene(dispatcher, owned):
    trace = dispatcher.tracer.trace()
    spans = list(trace.walk())
    # 1. Nothing leaks open once the round returns.
    assert all(not span.is_open for span in spans)
    # 2. Exactly one root span per owned source, and none for anyone
    #    else's sources — ambient context never crossed dispatchers.
    roots = trace.spans
    assert sorted(span.name for span in roots) == sorted(
        f"query:{sid}" for sid in owned
    )
    # 3. Parentage never interleaves: a query span's children (attempt
    #    events, backoffs) were filed under exactly that span.
    for root in roots:
        for child in root.children:
            assert child.name.startswith(("attempt:", "backoff"))
    # 4. Stable span ids stay unique within the tracer.
    ids = [span.span_id for span in spans]
    assert len(set(ids)) == len(ids)


class TestConcurrentRounds:
    @settings(max_examples=5, deadline=None)
    @given(
        n_dispatchers=st.integers(min_value=2, max_value=4),
        sources_per_dispatcher=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_span_forests_stay_disjoint_and_closed(
        self, n_dispatchers, sources_per_dispatcher, seed
    ):
        _, dispatchers, slices = _run_concurrent_rounds(
            n_dispatchers, sources_per_dispatcher, seed
        )
        for dispatcher, owned in zip(dispatchers, slices):
            _check_span_hygiene(dispatcher, owned)

    def test_trace_ids_differ_across_dispatchers(self):
        _, dispatchers, _ = _run_concurrent_rounds(3, 3, seed=7)
        trace_ids = {dispatcher.tracer.trace_id for dispatcher in dispatchers}
        assert len(trace_ids) == 3

    def test_repeated_rounds_on_one_tracer_accumulate_cleanly(self):
        fed, dispatchers, slices = _run_concurrent_rounds(2, 3, seed=11)
        dispatcher, owned = dispatchers[0], slices[0]
        first_round = len(dispatcher.tracer.trace().spans)
        dispatcher.dispatch(_requests(fed, owned))
        trace = dispatcher.tracer.trace()
        assert len(trace.spans) == 2 * first_round
        assert all(not span.is_open for span in trace.walk())
