"""The metrics registry: instruments, families, the disabled switch."""

import threading

import pytest

from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    log_scale_buckets,
    set_registry,
)


class TestLogScaleBuckets:
    def test_classic_mantissa_ladder(self):
        assert log_scale_buckets(1.0, 100.0) == (
            1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
        )

    def test_stop_is_always_included(self):
        assert log_scale_buckets(1.0, 30.0)[-1] == 30.0

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_scale_buckets(0.0, 10.0)
        with pytest.raises(ValueError):
            log_scale_buckets(10.0, 10.0)
        with pytest.raises(ValueError):
            log_scale_buckets(1.0, 10.0, per_decade=4)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == pytest.approx(13.0)

    def test_counter_is_thread_safe(self):
        counter = Counter()

        def hammer() -> None:
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            histogram.observe(value)
        # bucket_counts has one extra overflow bucket.
        assert histogram.bucket_counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(556.5)
        assert histogram.mean() == pytest.approx(556.5 / 5)

    def test_percentiles_interpolate_and_saturate(self):
        histogram = Histogram(bounds=(10.0, 100.0))
        for _ in range(99):
            histogram.observe(5.0)
        histogram.observe(1000.0)  # overflow bucket
        assert 0.0 < histogram.p50 <= 10.0
        assert histogram.p95 <= 10.0
        # The overflow value reports the last finite bound, not infinity.
        assert histogram.percentile(1.0) == 100.0

    def test_empty_histogram_reads_zero(self):
        histogram = Histogram()
        assert histogram.p50 == 0.0
        assert histogram.mean() == 0.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(10.0, 1.0))


class TestMetricFamilies:
    def test_labeled_children_are_distinct_and_sorted(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "source_requests_total", "requests", labels=("source_id", "outcome")
        )
        family.labels(source_id="S2", outcome="ok").inc()
        family.labels(source_id="S1", outcome="ok").inc(2)
        family.labels(source_id="S1", outcome="error").inc()
        values = {key: child.value for key, child in family.children()}
        assert values == {
            ("S1", "error"): 1,
            ("S1", "ok"): 2,
            ("S2", "ok"): 1,
        }
        assert [key for key, _ in family.children()] == sorted(values)

    def test_zero_label_family_acts_as_its_own_child(self):
        registry = MetricsRegistry()
        registry.counter("walks_total", "walks").inc(3)
        ((key, child),) = registry.family("walks_total").children()
        assert key == ()
        assert child.value == 3

    def test_labeled_family_rejects_bare_use_and_wrong_labels(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "x", labels=("a",))
        with pytest.raises(ValueError):
            family.inc()
        with pytest.raises(ValueError):
            family.labels(b="1")
        with pytest.raises(ValueError):
            family.labels(a="1", b="2")

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("t_total", "help", labels=("s",))
        second = registry.counter("t_total", "ignored", labels=("s",))
        assert first is second

    def test_kind_and_label_mismatches_raise(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "help", labels=("s",))
        with pytest.raises(ValueError):
            registry.gauge("t_total", labels=("s",))
        with pytest.raises(ValueError):
            registry.counter("t_total", labels=("other",))

    def test_histogram_family_uses_declared_buckets(self):
        registry = MetricsRegistry()
        family = registry.histogram("h_ms", "h", buckets=(1.0, 2.0))
        family.observe(1.5)
        ((_, histogram),) = family.children()
        assert histogram.bounds == (1.0, 2.0)
        assert histogram.bucket_counts == [0, 1, 0]

    def test_families_sorted_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.gauge("a_value")
        assert [family.name for family in registry.families()] == [
            "a_value", "b_total",
        ]
        registry.reset()
        assert registry.families() == []


class TestDisabledRegistry:
    def test_disabled_registry_hands_out_noops(self):
        registry = MetricsRegistry.disabled()
        family = registry.counter("x_total", labels=("s",))
        family.labels(s="S1").inc()
        family.inc()  # even bare use is silently absorbed
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.families() == []

    def test_process_registry_swap_and_restore(self):
        previous = get_registry()
        mine = MetricsRegistry()
        try:
            assert set_registry(mine) is mine
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestLinearBuckets:
    def test_even_spacing_through_stop(self):
        from repro.observability import linear_buckets

        assert linear_buckets(0.0, 4.0) == (0.0, 1.0, 2.0, 3.0, 4.0)
        assert linear_buckets(0.0, 10.0, step=2.5) == (0.0, 2.5, 5.0, 7.5, 10.0)

    def test_final_bound_is_exactly_stop(self):
        from repro.observability import linear_buckets

        # A step that does not divide the span still lands on stop.
        bounds = linear_buckets(0.0, 1.0, step=0.3)
        assert bounds[-1] == 1.0
        assert list(bounds) == sorted(bounds)

    def test_degenerate_and_invalid_ranges(self):
        from repro.observability import linear_buckets

        assert linear_buckets(5.0, 5.0) == (5.0,)
        with pytest.raises(ValueError):
            linear_buckets(0.0, 1.0, step=0.0)
        with pytest.raises(ValueError):
            linear_buckets(2.0, 1.0)

    def test_feeds_a_histogram(self):
        from repro.observability import linear_buckets

        histogram = Histogram(linear_buckets(0.0, 16.0))
        histogram.observe(3.0)
        assert histogram.count == 1
