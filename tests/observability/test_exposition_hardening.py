"""Exposition hardening: escaping, non-finite values, exemplars."""

import math

import pytest

from repro.observability import (
    MetricsRegistry,
    Tracer,
    render_prometheus,
    trace_events,
)


class TestEscaping:
    def test_help_text_escapes_backslash_and_newline(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", help_text='back \\ slash\nnext "line"')
        registry.counter("odd_total").inc()
        text = render_prometheus(registry)
        assert "# HELP odd_total back \\\\ slash\\nnext \"line\"" in text
        assert "\nnext" not in text  # no raw newline splits the comment

    def test_label_escaping_survives_every_special(self):
        registry = MetricsRegistry()
        registry.gauge("g", labels=("v",)).labels(v='a\\b"c\nd').set(1.0)
        line = render_prometheus(registry).strip().split("\n")[-1]
        assert line == 'g{v="a\\\\b\\"c\\nd"} 1'

    def test_exemplar_trace_id_is_escaped(self):
        registry = MetricsRegistry()
        registry.histogram("h_ms", buckets=(10.0,)).observe(
            5.0, exemplar='bad"id\\'
        )
        text = render_prometheus(registry, exemplars=True)
        assert '# {trace_id="bad\\"id\\\\"} 5' in text


class TestNonFiniteValues:
    def test_infinite_gauge_renders_inf_spellings(self):
        registry = MetricsRegistry()
        registry.gauge("up").set(math.inf)
        registry.gauge("down").set(-math.inf)
        text = render_prometheus(registry)
        assert "down -Inf" in text
        assert "up +Inf" in text

    def test_nan_gauge_renders_nan(self):
        registry = MetricsRegistry()
        registry.gauge("weird").set(math.nan)
        assert "weird NaN" in render_prometheus(registry)

    def test_histogram_observing_inf_still_renders(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_ms", buckets=(10.0,))
        histogram.observe(math.inf)
        histogram.observe(5.0)
        text = render_prometheus(registry)
        assert 'h_ms_bucket{le="10"} 1' in text
        assert 'h_ms_bucket{le="+Inf"} 2' in text
        assert "h_ms_sum +Inf" in text
        assert "h_ms_count 2" in text


class TestExemplars:
    def test_default_rendering_has_no_exemplars(self):
        registry = MetricsRegistry()
        registry.histogram("h_ms", buckets=(10.0,)).observe(5.0, exemplar="t1")
        assert "#" not in render_prometheus(registry).replace("# HELP", "").replace(
            "# TYPE", ""
        )

    def test_exemplar_lands_on_its_bucket_line(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_ms", buckets=(10.0, 100.0))
        histogram.observe(5.0, exemplar="fast")
        histogram.observe(50.0, exemplar="slow")
        lines = render_prometheus(registry, exemplars=True).strip().split("\n")
        bucket_10 = next(line for line in lines if 'le="10"' in line)
        bucket_100 = next(line for line in lines if 'le="100"' in line)
        assert '# {trace_id="fast"} 5' in bucket_10
        assert '# {trace_id="slow"} 50' in bucket_100

    def test_last_exemplar_wins_within_a_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_ms", buckets=(10.0,))
        histogram.observe(3.0, exemplar="first")
        histogram.observe(7.0, exemplar="second")
        text = render_prometheus(registry, exemplars=True)
        assert "second" in text
        assert "first" not in text

    def test_overflow_bucket_carries_exemplars_too(self):
        registry = MetricsRegistry()
        registry.histogram("h_ms", buckets=(10.0,)).observe(
            1000.0, exemplar="huge"
        )
        lines = render_prometheus(registry, exemplars=True).strip().split("\n")
        overflow = next(line for line in lines if 'le="+Inf"' in line)
        assert '# {trace_id="huge"} 1000' in overflow

    def test_disabled_registry_swallows_exemplars(self):
        registry = MetricsRegistry.disabled()
        registry.histogram("h_ms", buckets=(10.0,)).observe(5.0, exemplar="t")
        assert render_prometheus(registry, exemplars=True) == ""


class TestStableIdExport:
    def test_default_ndjson_ids_unchanged(self):
        tracer = Tracer(trace_id="tt")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        rows = trace_events(tracer.trace())
        assert [row["span_id"] for row in rows] == [1, 2]
        assert rows[1]["parent_id"] == 1

    def test_stable_ids_are_the_tracer_assigned_hex(self):
        tracer = Tracer(trace_id="tt")
        with tracer.span("a") as span_a:
            with tracer.span("b") as span_b:
                pass
        rows = trace_events(tracer.trace(), stable_ids=True)
        assert rows[0]["span_id"] == span_a.span_id
        assert rows[1]["span_id"] == span_b.span_id
        assert rows[1]["parent_id"] == span_a.span_id

    def test_hand_built_spans_get_local_ids(self):
        from repro.observability import Span, Trace

        trace = Trace(spans=[Span(name="manual", start_ms=10.0)], trace_id="m")
        rows = trace_events(trace, stable_ids=True)
        assert rows[0]["span_id"] == "local-1"
