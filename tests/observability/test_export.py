"""The exporters: Prometheus text, Chrome trace JSON, NDJSON events."""

import json

import pytest

from repro.observability import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    render_chrome_trace,
    render_ndjson,
    render_prometheus,
    trace_events,
)


def _registry_with_traffic() -> MetricsRegistry:
    registry = MetricsRegistry()
    requests = registry.counter(
        "source_requests_total", "Wire requests.", labels=("source_id", "outcome")
    )
    requests.labels(source_id="S1", outcome="ok").inc(3)
    requests.labels(source_id="S1", outcome="error").inc()
    registry.gauge("source_health_score", "Health.", labels=("source_id",)).labels(
        source_id="S1"
    ).set(0.75)
    histogram = registry.histogram(
        "latency_ms", "Latency.", labels=("source_id",), buckets=(1.0, 10.0)
    )
    child = histogram.labels(source_id="S1")
    for value in (0.5, 5.0, 50.0):
        child.observe(value)
    return registry


class TestPrometheus:
    def test_full_exposition_shape(self):
        text = render_prometheus(_registry_with_traffic())
        lines = text.splitlines()
        assert "# HELP source_requests_total Wire requests." in lines
        assert "# TYPE source_requests_total counter" in lines
        assert 'source_requests_total{source_id="S1",outcome="ok"} 3' in lines
        assert 'source_requests_total{source_id="S1",outcome="error"} 1' in lines
        assert "# TYPE source_health_score gauge" in lines
        assert 'source_health_score{source_id="S1"} 0.75' in lines
        assert "# TYPE latency_ms histogram" in lines
        # Cumulative buckets plus +Inf, sum and count.
        assert 'latency_ms_bucket{source_id="S1",le="1"} 1' in lines
        assert 'latency_ms_bucket{source_id="S1",le="10"} 2' in lines
        assert 'latency_ms_bucket{source_id="S1",le="+Inf"} 3' in lines
        assert 'latency_ms_sum{source_id="S1"} 55.5' in lines
        assert 'latency_ms_count{source_id="S1"} 3' in lines
        assert text.endswith("\n")

    def test_rendering_is_deterministic(self):
        registry = _registry_with_traffic()
        assert render_prometheus(registry) == render_prometheus(registry)

    def test_golden_parse_round_trip(self):
        """Every sample line parses as the exposition format requires."""
        text = render_prometheus(_registry_with_traffic())
        seen_types: dict[str, str] = {}
        for line in text.splitlines():
            assert line == line.strip()
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split(" ", 3)
                assert kind in ("counter", "gauge", "histogram")
                seen_types[name] = kind
                continue
            if line.startswith("#"):
                continue
            name_and_labels, value = line.rsplit(" ", 1)
            float(value)  # every sample value is a number
            name = name_and_labels.split("{", 1)[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in seen_types:
                    base = name[: -len(suffix)]
            assert base in seen_types
        assert set(seen_types) == {
            "source_requests_total", "source_health_score", "latency_ms",
        }

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", labels=("why",)).labels(
            why='quote " slash \\ newline \n'
        ).inc()
        text = render_prometheus(registry)
        assert r'why="quote \" slash \\ newline \n"' in text

    def test_empty_and_disabled_registries_render_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert render_prometheus(MetricsRegistry.disabled()) == ""


def _traced_round() -> Tracer:
    tracer = Tracer(trace_id="t-42")
    with tracer.span("search", terms="databases"):
        with tracer.span("select", k=2):
            pass
        with tracer.span("query") as query_span:
            with tracer.span("query:S1", parent=query_span, url="http://s1"):
                pass
            with tracer.span("query:S2", parent=query_span):
                pass
        with tracer.span("merge"):
            pass
    tracer.count("S1", requests=2, latency_ms=40.0, cost=1.0)
    return tracer


class TestChromeTrace:
    def test_events_mirror_the_span_tree(self):
        payload = chrome_trace(_traced_round().trace())
        events = payload["traceEvents"]
        names = [event["name"] for event in events]
        assert names == ["search", "select", "query", "query:S1", "query:S2", "merge"]
        by_name = {event["name"]: event for event in events}
        assert by_name["query:S1"]["args"]["parent"] == "query"
        assert by_name["select"]["args"]["parent"] == "search"
        assert "parent" not in by_name["search"]["args"]
        assert all(event["ph"] == "X" for event in events)
        # Timestamps are microseconds; children start inside the parent.
        search, query = by_name["search"], by_name["query"]
        assert query["ts"] >= search["ts"]
        assert query["ts"] + query["dur"] <= search["ts"] + search["dur"] + 1
        assert payload["otherData"]["trace_id"] == "t-42"

    def test_open_spans_are_flagged(self):
        tracer = Tracer()
        with tracer.span("outer"):
            payload = chrome_trace(tracer.trace())
        assert payload["traceEvents"][0]["args"]["open"] is True

    def test_render_is_valid_json(self):
        text = render_chrome_trace(_traced_round().trace(), indent=2)
        assert json.loads(text)["displayTimeUnit"] == "ms"


class TestNdjson:
    def test_span_ids_are_depth_first_with_parent_links(self):
        rows = trace_events(_traced_round().trace())
        spans = [row for row in rows if row["kind"] == "span"]
        assert [row["span_id"] for row in spans] == [1, 2, 3, 4, 5, 6]
        by_name = {row["name"]: row for row in spans}
        assert by_name["search"]["parent_id"] is None
        assert by_name["select"]["parent_id"] == by_name["search"]["span_id"]
        assert by_name["query:S1"]["parent_id"] == by_name["query"]["span_id"]
        assert all(row["trace_id"] == "t-42" for row in rows)

    def test_counters_follow_the_spans(self):
        rows = trace_events(_traced_round().trace())
        counters = [row for row in rows if row["kind"] == "source_counters"]
        assert counters == [
            {
                "kind": "source_counters",
                "trace_id": "t-42",
                "source_id": "S1",
                "requests": 2,
                "retries": 0,
                "failures": 0,
                "timeouts": 0,
                "hedges": 0,
                "latency_ms": 40.0,
                "backoff_ms": 0.0,
                "cost": 1.0,
            }
        ]

    def test_every_line_is_one_json_object(self):
        text = render_ndjson(_traced_round().trace())
        lines = text.splitlines()
        assert len(lines) == 7  # 6 spans + 1 counter row
        for line in lines:
            assert isinstance(json.loads(line), dict)

    def test_empty_trace_renders_empty(self):
        assert render_ndjson(Tracer().trace()) == ""


class TestTraceIds:
    def test_tracer_ids_are_unique_by_default(self):
        assert Tracer().trace_id != Tracer().trace_id

    def test_explicit_id_flows_to_trace(self):
        assert Tracer(trace_id="abc").trace().trace_id == "abc"

    def test_chrome_dur_uses_elapsed_for_open_spans(self):
        clock = [0.0]
        tracer = Tracer(clock=lambda: clock[0])
        with tracer.span("work"):
            clock[0] = 0.1
            event = chrome_trace(tracer.trace())["traceEvents"][0]
            assert event["dur"] == pytest.approx(100_000.0)  # 100ms in us
