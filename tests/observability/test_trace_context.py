"""Trace context: the traceparent codec and ambient propagation."""

import threading

from repro.observability import (
    TraceCollector,
    TraceContext,
    Tracer,
    ambient_span,
    current_ambient_span,
    current_trace_context,
    trace_context,
)


class TestTraceparentCodec:
    def test_round_trip_preserves_equality(self):
        context = TraceContext("deadbeefcafef00d", "0123456789abcdef")
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed == context

    def test_header_shape_is_w3c(self):
        header = TraceContext("ab" * 8, "cd" * 8).to_traceparent()
        version, trace_id, span_id, flags = header.split("-")
        assert version == "00"
        assert len(trace_id) == 32
        assert len(span_id) == 16
        assert flags == "01"

    def test_sixteen_hex_trace_id_is_zero_padded(self):
        header = TraceContext("deadbeefcafef00d", "cd" * 8).to_traceparent()
        assert header.split("-")[1] == "0" * 16 + "deadbeefcafef00d"

    def test_span_id_leading_zeros_survive_the_round_trip(self):
        # Generated span ids may legitimately start with '0'; stripping
        # them would break the stitching equality with the server side.
        context = TraceContext("ab" * 8, "00abcdef01234567")
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed.span_id == "00abcdef01234567"

    def test_unsampled_flag_round_trips(self):
        context = TraceContext("ab" * 8, "cd" * 8, sampled=False)
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed is not None
        assert not parsed.sampled

    def test_absent_and_malformed_headers_parse_to_none(self):
        bad = [
            None,
            "",
            "not-a-header",
            "00-short-cdcdcdcdcdcdcdcd-01",
            "00-" + "g" * 32 + "-" + "cd" * 8 + "-01",  # non-hex
            "00-" + "ab" * 16 + "-" + "cd" * 8,  # missing flags
            "00-" + "ab" * 16 + "-" + "cd" * 4 + "-01",  # short span id
        ]
        for header in bad:
            assert TraceContext.from_traceparent(header) is None

    def test_child_keeps_trace_and_swaps_span(self):
        context = TraceContext("ab" * 8, "cd" * 8, sampled=False)
        child = context.child("ef" * 8)
        assert child.trace_id == context.trace_id
        assert child.span_id == "ef" * 8
        assert child.sampled is False


class TestAmbientContext:
    def test_no_context_by_default(self):
        assert current_trace_context() is None

    def test_activation_is_scoped(self):
        context = TraceContext("ab" * 8, "cd" * 8)
        with trace_context(context):
            assert current_trace_context() == context
        assert current_trace_context() is None

    def test_none_context_is_a_noop(self):
        outer = TraceContext("ab" * 8, "cd" * 8)
        with trace_context(outer):
            with trace_context(None):
                assert current_trace_context() == outer

    def test_threads_do_not_inherit_ambient_context(self):
        seen = []
        with trace_context(TraceContext("ab" * 8, "cd" * 8)):
            worker = threading.Thread(
                target=lambda: seen.append(current_trace_context())
            )
            worker.start()
            worker.join()
        assert seen == [None]

    def test_ambient_span_is_scoped(self):
        tracer = Tracer()
        with tracer.span("outer") as span:
            with ambient_span(tracer, span):
                assert current_ambient_span() == (tracer, span)
            assert current_ambient_span() is None


class TestTracerContinuation:
    def test_tracer_adopts_wire_trace_id(self):
        context = TraceContext("deadbeefcafef00d", "cd" * 8)
        tracer = Tracer(context=context)
        assert tracer.trace_id == "deadbeefcafef00d"

    def test_root_span_records_remote_parent(self):
        context = TraceContext("deadbeefcafef00d", "cd" * 8)
        tracer = Tracer(context=context)
        with tracer.span("serve"):
            pass
        assert tracer.spans[0].remote_parent_id == "cd" * 8

    def test_local_root_span_has_no_remote_parent(self):
        tracer = Tracer()
        with tracer.span("local"):
            pass
        assert tracer.spans[0].remote_parent_id == ""

    def test_span_ids_are_stable_unique_hex(self):
        tracer = Tracer()
        with tracer.span("a"), tracer.span("b"):
            pass
        ids = [span.span_id for span in tracer.trace().walk()]
        assert all(len(span_id) == 16 for span_id in ids)
        assert all(int(span_id, 16) >= 0 for span_id in ids)
        assert len(set(ids)) == len(ids)

    def test_context_for_names_the_span(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            context = tracer.context_for(span)
        assert context.trace_id == tracer.trace_id
        assert context.span_id == span.span_id


class TestTraceCollector:
    def test_ring_buffer_drops_oldest(self):
        collector = TraceCollector(capacity=2)
        for name in ("a", "b", "c"):
            tracer = Tracer(trace_id=name)
            collector.add(tracer.trace())
        assert [trace.trace_id for trace in collector.traces()] == ["b", "c"]

    def test_filter_by_trace_id(self):
        collector = TraceCollector()
        collector.add(Tracer(trace_id="x").trace())
        collector.add(Tracer(trace_id="y").trace())
        assert len(collector.traces("x")) == 1
        assert collector.traces("z") == []

    def test_clear_and_len(self):
        collector = TraceCollector()
        collector.add(Tracer().trace())
        assert len(collector) == 1
        collector.clear()
        assert len(collector) == 0
