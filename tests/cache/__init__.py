"""Tests for the repro.cache subsystem."""
