"""The bounded LRU+TTL core: eviction order, three-state reads, stats."""

import pytest

from repro.cache import FRESH, MISS, STALE, LruTtlCache


class FakeClock:
    def __init__(self, now_ms: float = 0.0) -> None:
        self.now_ms = now_ms

    def __call__(self) -> float:
        return self.now_ms

    def advance(self, delta_ms: float) -> None:
        self.now_ms += delta_ms


@pytest.fixture
def clock():
    return FakeClock()


class TestLru:
    def test_miss_then_hit(self, clock):
        cache = LruTtlCache(clock=clock)
        assert cache.get("k") == (None, MISS)
        cache.put("k", 42)
        assert cache.get("k") == (42, FRESH)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_evicts_least_recently_used(self, clock):
        cache = LruTtlCache(capacity=2, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # promote a; b is now the LRU victim
        evicted = cache.put("c", 3)
        assert evicted == 1
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_overwrite_does_not_evict(self, clock):
        cache = LruTtlCache(capacity=2, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 10) == 0
        assert cache.get("a") == (10, FRESH)
        assert len(cache) == 2

    def test_max_size_bound(self, clock):
        cache = LruTtlCache(capacity=100, max_size=10, clock=clock)
        cache.put("a", "x", size=4)
        cache.put("b", "y", size=4)
        evicted = cache.put("c", "z", size=4)  # 12 units > 10: drop LRU
        assert evicted == 1
        assert cache.size == 8
        assert "a" not in cache

    def test_oversized_entry_survives_alone(self, clock):
        cache = LruTtlCache(capacity=4, max_size=10, clock=clock)
        cache.put("huge", "x", size=50)
        assert "huge" in cache  # never evict the just-stored sole entry

    def test_validation(self):
        with pytest.raises(ValueError):
            LruTtlCache(capacity=0)
        with pytest.raises(ValueError):
            LruTtlCache(max_size=0)
        with pytest.raises(ValueError):
            LruTtlCache().put("k", 1, size=-1)


class TestTtl:
    def test_fresh_until_expiry(self, clock):
        cache = LruTtlCache(default_ttl_ms=100.0, clock=clock)
        cache.put("k", 1)
        clock.advance(100.0)
        assert cache.get("k") == (1, FRESH)

    def test_expired_is_a_miss_and_drops_the_entry(self, clock):
        cache = LruTtlCache(default_ttl_ms=100.0, clock=clock)
        cache.put("k", 1)
        clock.advance(101.0)
        assert cache.get("k") == (None, MISS)
        assert cache.stats.expirations == 1
        assert "k" not in cache

    def test_stale_within_grace_window(self, clock):
        cache = LruTtlCache(default_ttl_ms=100.0, clock=clock)
        cache.put("k", 1)
        clock.advance(150.0)
        assert cache.get("k", stale_grace_ms=100.0) == (1, STALE)
        assert "k" in cache  # the stale entry is kept for revalidation
        assert cache.stats.stale_hits == 1

    def test_beyond_grace_is_a_miss(self, clock):
        cache = LruTtlCache(default_ttl_ms=100.0, clock=clock)
        cache.put("k", 1)
        clock.advance(250.0)
        assert cache.get("k", stale_grace_ms=100.0) == (None, MISS)

    def test_per_entry_ttl_overrides_default(self, clock):
        cache = LruTtlCache(default_ttl_ms=100.0, clock=clock)
        cache.put("short", 1, ttl_ms=10.0)
        cache.put("forever", 2, ttl_ms=None)
        clock.advance(50.0)
        assert cache.get("short") == (None, MISS)
        clock.advance(1e9)
        assert cache.get("forever") == (2, FRESH)

    def test_no_default_ttl_never_expires(self, clock):
        cache = LruTtlCache(clock=clock)
        cache.put("k", 1)
        clock.advance(1e12)
        assert cache.get("k") == (1, FRESH)


class TestInvalidation:
    def test_invalidate_key(self, clock):
        cache = LruTtlCache(clock=clock)
        cache.put("k", 1)
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert cache.stats.invalidations == 1

    def test_invalidate_tagged(self, clock):
        cache = LruTtlCache(clock=clock)
        cache.put("a", 1, tags=("s1", "s2"))
        cache.put("b", 2, tags=("s2",))
        cache.put("c", 3, tags=("s3",))
        assert cache.invalidate_tagged("s2") == 2
        assert cache.keys() == ["c"]

    def test_clear(self, clock):
        cache = LruTtlCache(clock=clock)
        cache.put("a", 1, size=3)
        cache.clear()
        assert len(cache) == 0
        assert cache.size == 0


class TestStats:
    def test_cost_saved_accumulates_on_fresh_hits(self, clock):
        cache = LruTtlCache(clock=clock)
        cache.put("k", 1, cost=2.5)
        cache.get("k")
        cache.get("k")
        assert cache.stats.cost_saved == pytest.approx(5.0)

    def test_hit_rate(self, clock):
        cache = LruTtlCache(default_ttl_ms=10.0, clock=clock)
        cache.put("k", 1)
        cache.get("k")  # hit
        clock.advance(15.0)
        cache.get("k", stale_grace_ms=100.0)  # stale hit counts as served
        cache.get("absent")  # miss
        assert cache.stats.hit_rate() == pytest.approx(2 / 3)
        assert cache.stats.snapshot()["hit_rate"] == pytest.approx(2 / 3, abs=1e-3)

    def test_empty_cache_hit_rate_is_zero(self):
        assert LruTtlCache().stats.hit_rate() == 0.0
