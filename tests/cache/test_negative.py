"""Negative caching: thresholds, expiry-driven re-probes, success resets."""

import pytest

from repro.cache import NegativeSourceCache


class FakeClock:
    def __init__(self) -> None:
        self.now_ms = 0.0

    def __call__(self) -> float:
        return self.now_ms


@pytest.fixture
def clock():
    return FakeClock()


class TestThreshold:
    def test_single_failure_trips_default_threshold(self, clock):
        cache = NegativeSourceCache(ttl_ms=100.0, clock=clock)
        cache.record_failure("s1", "timeout", "deadline exceeded")
        reason = cache.skip_reason("s1")
        assert reason is not None
        assert "timeout" in reason and "deadline exceeded" in reason
        assert cache.skips == 1

    def test_threshold_above_one_tolerates_a_flake(self, clock):
        cache = NegativeSourceCache(ttl_ms=100.0, failure_threshold=2, clock=clock)
        cache.record_failure("s1", "error")
        assert cache.skip_reason("s1") is None  # one flake forgiven
        cache.record_failure("s1", "error")
        assert cache.skip_reason("s1") is not None
        assert cache.down_sources() == ["s1"]

    def test_validation(self):
        with pytest.raises(ValueError):
            NegativeSourceCache(ttl_ms=0)
        with pytest.raises(ValueError):
            NegativeSourceCache(failure_threshold=0)


class TestExpiry:
    def test_expired_entry_earns_a_fresh_probe(self, clock):
        cache = NegativeSourceCache(ttl_ms=100.0, clock=clock)
        cache.record_failure("s1", "error")
        clock.now_ms = 100.0
        assert cache.skip_reason("s1") is None  # hold expired: probe again
        assert len(cache) == 0  # and the failure count reset with it

    def test_hold_extends_on_repeat_failures(self, clock):
        cache = NegativeSourceCache(ttl_ms=100.0, clock=clock)
        cache.record_failure("s1", "error")
        clock.now_ms = 80.0
        cache.record_failure("s1", "error")  # re-probed and failed again
        clock.now_ms = 120.0
        assert cache.skip_reason("s1") is not None  # held until 180


class TestReset:
    def test_success_clears_the_record(self, clock):
        cache = NegativeSourceCache(ttl_ms=100.0, clock=clock)
        cache.record_failure("s1", "error")
        cache.record_success("s1")
        assert cache.skip_reason("s1") is None
        assert len(cache) == 0

    def test_forget_drops_without_implying_health(self, clock):
        cache = NegativeSourceCache(ttl_ms=100.0, failure_threshold=3, clock=clock)
        cache.record_failure("s1", "error")
        cache.forget("s1")
        assert len(cache) == 0

    def test_skips_not_counted_when_not_skipping(self, clock):
        cache = NegativeSourceCache(ttl_ms=100.0, clock=clock)
        assert cache.skip_reason("unknown") is None
        assert cache.skips == 0
