"""Canonical query serialization: order-insensitive where order has no
meaning, order-preserving where it does, and a parse round-trip property."""

from hypothesis import given, strategies as st

from repro.cache import canonical_expression, canonical_text, query_cache_key
from repro.starts import SQuery, parse_expression
from repro.starts.ast import SAnd, SAndNot, SList, SOr, SProx, STerm
from repro.starts.attributes import FieldRef, ModifierRef
from repro.starts.lstring import LString
from repro.starts.query import SortKey
from repro.text.langtags import LanguageTag


def expr(text: str):
    return parse_expression(text)


class TestCanonicalExpression:
    def test_and_children_sort(self):
        a = expr('((title "x") and (author "y"))')
        b = expr('((author "y") and (title "x"))')
        assert canonical_text(a) == canonical_text(b)

    def test_or_children_sort(self):
        a = expr('((title "x") or (author "y") or (body-of-text "z"))')
        b = expr('((body-of-text "z") or (title "x") or (author "y"))')
        assert canonical_text(a) == canonical_text(b)

    def test_list_items_sort(self):
        a = expr('list((body-of-text "distributed") (body-of-text "databases"))')
        b = expr('list((body-of-text "databases") (body-of-text "distributed"))')
        assert canonical_text(a) == canonical_text(b)

    def test_and_not_keeps_operand_order(self):
        a = expr('((title "x") and-not (title "y"))')
        b = expr('((title "y") and-not (title "x"))')
        assert canonical_text(a) != canonical_text(b)

    def test_prox_keeps_operand_order(self):
        a = expr('((title "x") prox[3,T] (title "y"))')
        b = expr('((title "y") prox[3,T] (title "x"))')
        assert canonical_text(a) != canonical_text(b)

    def test_nested_sorting_recurses(self):
        a = expr('(((b "2") and (a "1")) or ((d "4") and (c "3")))')
        b = expr('(((c "3") and (d "4")) or ((a "1") and (b "2")))')
        assert canonical_text(a) == canonical_text(b)

    def test_none_is_dash(self):
        assert canonical_text(None) == "-"
        assert canonical_expression(None) is None

    def test_different_queries_stay_different(self):
        a = expr('((title "x") and (author "y"))')
        b = expr('((title "x") or (author "y"))')
        assert canonical_text(a) != canonical_text(b)


# -- properties over generated ASTs (mirrors the parser's strategies) ------

_words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)
_fields = st.sampled_from(["title", "author", "body-of-text", "any"])
_modifiers = st.lists(
    st.sampled_from(["stem", "phonetic", "thesaurus", "case-sensitive"]),
    max_size=2,
    unique=True,
)


@st.composite
def terms(draw):
    word = draw(_words)
    use_field = draw(st.booleans())
    field = FieldRef(draw(_fields)) if use_field else None
    modifiers = tuple(ModifierRef(m) for m in draw(_modifiers))
    weight = draw(st.sampled_from([1.0, 0.5, 0.25]))
    language = draw(
        st.sampled_from([None, LanguageTag("en", ("US",)), LanguageTag("es")])
    )
    return STerm(LString(word, language), field, modifiers, weight)


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        return draw(terms())
    kind = draw(st.sampled_from(["term", "and", "or", "and-not", "prox", "list"]))
    if kind == "term":
        return draw(terms())
    if kind in ("and", "or"):
        children = tuple(
            draw(st.lists(expressions(depth=depth - 1), min_size=2, max_size=3))
        )
        return SAnd(children) if kind == "and" else SOr(children)
    if kind == "and-not":
        return SAndNot(
            draw(expressions(depth=depth - 1)), draw(expressions(depth=depth - 1))
        )
    if kind == "prox":
        return SProx(
            draw(terms()), draw(terms()), draw(st.integers(0, 5)), draw(st.booleans())
        )
    return SList(tuple(draw(st.lists(expressions(depth=depth - 1), max_size=3))))


@given(expressions())
def test_canonical_form_round_trips_through_the_parser(node):
    """parse(serialize(canonical(x))) is already canonical — the canonical
    form is a real, parseable expression, not a private encoding."""
    canonical = canonical_expression(node)
    reparsed = parse_expression(canonical.serialize())
    assert reparsed == canonical
    assert canonical_expression(reparsed) == canonical


@given(expressions())
def test_canonicalization_is_idempotent(node):
    once = canonical_expression(node)
    assert canonical_expression(once) == once


@given(st.lists(expressions(depth=1), min_size=2, max_size=4))
def test_commutative_children_ignore_order(children):
    forward = SList(tuple(children))
    backward = SList(tuple(reversed(children)))
    assert canonical_text(forward) == canonical_text(backward)


class TestQueryCacheKey:
    def test_source_order_is_irrelevant(self):
        query = SQuery(filter_expression=expr('(title "x")'))
        assert query_cache_key(query, ["s2", "s1"]) == query_cache_key(
            query, ["s1", "s2", "s1"]
        )

    def test_source_set_is_part_of_the_key(self):
        query = SQuery(filter_expression=expr('(title "x")'))
        assert query_cache_key(query, ["s1"]) != query_cache_key(query, ["s2"])

    def test_equivalent_expressions_share_a_key(self):
        sources = ["s1", "s2"]
        a = SQuery(filter_expression=expr('((title "x") and (author "y"))'))
        b = SQuery(filter_expression=expr('((author "y") and (title "x"))'))
        assert query_cache_key(a, sources) == query_cache_key(b, sources)

    def test_answer_fields_sort_but_sort_keys_do_not(self):
        base = dict(filter_expression=expr('(title "x")'))
        a = SQuery(**base, answer_fields=("title", "author"))
        b = SQuery(**base, answer_fields=("author", "title"))
        assert query_cache_key(a, ["s"]) == query_cache_key(b, ["s"])

        c = SQuery(**base, sort_keys=(SortKey("title"), SortKey("author")))
        d = SQuery(**base, sort_keys=(SortKey("author"), SortKey("title")))
        assert query_cache_key(c, ["s"]) != query_cache_key(d, ["s"])

    def test_limits_and_flags_are_in_the_key(self):
        base = dict(filter_expression=expr('(title "x")'))
        assert query_cache_key(
            SQuery(**base, max_number_documents=10), ["s"]
        ) != query_cache_key(SQuery(**base, max_number_documents=20), ["s"])
        assert query_cache_key(
            SQuery(**base, min_document_score=0.5), ["s"]
        ) != query_cache_key(SQuery(**base), ["s"])
        assert query_cache_key(
            SQuery(**base, drop_stop_words=False), ["s"]
        ) != query_cache_key(SQuery(**base), ["s"])
