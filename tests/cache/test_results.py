"""The query-result cache: three-state reads, tags, single-flight."""

from repro.cache import FRESH, MISS, STALE, QueryResultCache


class FakeClock:
    def __init__(self) -> None:
        self.now_ms = 0.0

    def __call__(self) -> float:
        return self.now_ms


def make_cache(**kwargs) -> tuple[QueryResultCache, FakeClock]:
    clock = FakeClock()
    defaults = dict(ttl_ms=100.0, stale_grace_ms=100.0, clock=clock)
    defaults.update(kwargs)
    return QueryResultCache(**defaults), clock


class TestReads:
    def test_fresh_stale_miss_progression(self):
        cache, clock = make_cache()
        cache.store("k", {"docs": 3}, source_ids=("s1",))
        assert cache.lookup("k") == ({"docs": 3}, FRESH)
        clock.now_ms = 150.0
        assert cache.lookup("k") == ({"docs": 3}, STALE)
        clock.now_ms = 250.0
        assert cache.lookup("k") == (None, MISS)

    def test_zero_grace_means_expired_is_miss(self):
        cache, clock = make_cache(stale_grace_ms=0.0)
        cache.store("k", 1)
        clock.now_ms = 150.0
        assert cache.lookup("k") == (None, MISS)

    def test_store_again_refreshes(self):
        cache, clock = make_cache()
        cache.store("k", "old")
        clock.now_ms = 150.0
        cache.store("k", "new")
        assert cache.lookup("k") == ("new", FRESH)


class TestSourceInvalidation:
    def test_only_tagged_results_fall(self):
        cache, _ = make_cache()
        cache.store("a", 1, source_ids=("s1", "s2"))
        cache.store("b", 2, source_ids=("s3",))
        assert cache.invalidate_source("s1") == 1
        assert cache.lookup("a") == (None, MISS)
        assert cache.lookup("b") == (2, FRESH)

    def test_clear(self):
        cache, _ = make_cache()
        cache.store("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestSingleFlight:
    def test_only_one_revalidation_per_key(self):
        cache, _ = make_cache()
        assert cache.begin_revalidation("k") is True
        assert cache.begin_revalidation("k") is False
        cache.finish_revalidation("k")
        assert cache.begin_revalidation("k") is True

    def test_keys_are_independent(self):
        cache, _ = make_cache()
        assert cache.begin_revalidation("a") is True
        assert cache.begin_revalidation("b") is True

    def test_finish_unclaimed_is_harmless(self):
        cache, _ = make_cache()
        cache.finish_revalidation("never-claimed")


class TestStats:
    def test_stats_flow_through(self):
        cache, _ = make_cache()
        cache.store("k", 1, cost=2.0)
        cache.lookup("k")
        cache.lookup("absent")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.cost_saved == 2.0
        assert "k" in cache
