"""Summary TTLs from MBasic-1 dates: explicit expiry, heuristic freshness."""

import pytest

from repro.cache import SummaryTtlPolicy, parse_protocol_date
from repro.starts import SMetaAttributes


def meta(**kwargs) -> SMetaAttributes:
    return SMetaAttributes(source_id="s1", **kwargs)


class TestParseProtocolDate:
    def test_valid(self):
        assert str(parse_protocol_date("1996-08-01")) == "1996-08-01"
        assert str(parse_protocol_date("  1996-08-01  ")) == "1996-08-01"

    def test_absent_or_malformed_is_none(self):
        assert parse_protocol_date(None) is None
        assert parse_protocol_date("") is None
        assert parse_protocol_date("not-a-date") is None
        assert parse_protocol_date("1996-13-40") is None


class TestTtlDays:
    def test_heuristic_fraction_of_age(self):
        policy = SummaryTtlPolicy(heuristic_fraction=0.1)
        # 212 days old at harvest -> TTL 21 days.
        assert policy.ttl_days(meta(date_changed="1996-01-01"), "1996-07-31") == 21

    def test_clamped_to_min_and_max(self):
        policy = SummaryTtlPolicy(min_ttl_days=2, max_ttl_days=30)
        assert policy.ttl_days(meta(date_changed="1996-07-30"), "1996-07-31") == 2
        assert policy.ttl_days(meta(date_changed="1980-01-01"), "1996-07-31") == 30

    def test_future_date_changed_gets_minimum_ttl(self):
        """A clock-skewed DateChanged in the future means "changed just
        now", never "cache forever"."""
        policy = SummaryTtlPolicy(min_ttl_days=1)
        assert policy.ttl_days(meta(date_changed="1997-01-01"), "1996-07-31") == 1

    def test_no_usable_hint_is_none(self):
        policy = SummaryTtlPolicy()
        assert policy.ttl_days(meta(), "1996-07-31") is None
        assert policy.ttl_days(meta(date_changed="garbage"), "1996-07-31") is None
        assert policy.ttl_days(meta(date_changed="1996-01-01"), "garbage") is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SummaryTtlPolicy(heuristic_fraction=-0.1)
        with pytest.raises(ValueError):
            SummaryTtlPolicy(min_ttl_days=5, max_ttl_days=4)


class TestIsStale:
    def test_date_expires_wins_over_heuristics(self):
        policy = SummaryTtlPolicy()
        metadata = meta(date_expires="1996-09-01", date_changed="1990-01-01")
        assert not policy.is_stale(metadata, "1996-08-01", "1996-08-31")
        assert policy.is_stale(metadata, "1996-08-01", "1996-09-02")

    def test_heuristic_expiry_from_date_changed(self):
        policy = SummaryTtlPolicy(heuristic_fraction=0.1)
        metadata = meta(date_changed="1996-01-01")  # ~21-day TTL at 1996-08-01
        assert not policy.is_stale(metadata, "1996-08-01", "1996-08-20")
        assert policy.is_stale(metadata, "1996-08-01", "1996-08-30")

    def test_zero_min_ttl_goes_stale_the_next_day(self):
        policy = SummaryTtlPolicy(heuristic_fraction=0.0, min_ttl_days=0)
        metadata = meta(date_changed="1996-07-31")
        assert not policy.is_stale(metadata, "1996-08-01", "1996-08-01")
        assert policy.is_stale(metadata, "1996-08-01", "1996-08-02")

    def test_missing_date_changed_never_stale_without_expires(self):
        policy = SummaryTtlPolicy()
        assert not policy.is_stale(meta(), "1996-08-01", "2020-01-01")

    def test_no_harvest_date_never_stale(self):
        policy = SummaryTtlPolicy()
        assert not policy.is_stale(meta(date_changed="1990-01-01"), None, "2020-01-01")
