"""Resources: Figure 1's multi-source evaluation + duplicate elimination."""

import pytest

from repro.corpus import source1_documents, source2_documents, ullman_dood_document
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.starts.errors import UnknownSourceError


def ranking_query(**overrides):
    defaults = dict(
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
    )
    defaults.update(overrides)
    return SQuery(**defaults)


class TestBasics:
    def test_source_registry(self, paper_resource):
        assert paper_resource.source_ids() == ["Source-1", "Source-2"]
        assert "Source-1" in paper_resource
        assert len(paper_resource) == 2

    def test_duplicate_source_id_rejected(self, source1):
        resource = Resource("R", [source1])
        with pytest.raises(ValueError):
            resource.add_source(StartsSource("Source-1", []))

    def test_unknown_source_raises(self, paper_resource):
        with pytest.raises(UnknownSourceError):
            paper_resource.source("Source-99")
        with pytest.raises(UnknownSourceError):
            paper_resource.search("Source-99", ranking_query())


class TestFigure1Routing:
    def test_single_source_query_untouched(self, paper_resource):
        direct = paper_resource.source("Source-1").search(ranking_query())
        via_resource = paper_resource.search("Source-1", ranking_query())
        assert direct == via_resource

    def test_sources_attribute_fans_out(self, paper_resource):
        query = ranking_query().with_sources("Source-2")
        results = paper_resource.search("Source-1", query)
        assert set(results.sources) == {"Source-1", "Source-2"}
        linkage_hosts = {doc.linkage.split("/")[2] for doc in results.documents}
        assert len(linkage_hosts) > 1  # documents from both sources

    def test_unknown_extra_source_raises(self, paper_resource):
        query = ranking_query().with_sources("Source-99")
        with pytest.raises(UnknownSourceError):
            paper_resource.search("Source-1", query)

    def test_merged_results_respect_max_documents(self, paper_resource):
        query = ranking_query(max_number_documents=2).with_sources("Source-2")
        results = paper_resource.search("Source-1", query)
        assert len(results.documents) <= 2

    def test_merged_results_sorted_by_score(self, paper_resource):
        query = ranking_query().with_sources("Source-2")
        scores = [
            doc.raw_score
            for doc in paper_resource.search("Source-1", query).documents
        ]
        assert scores == sorted(scores, reverse=True)


class TestDuplicateElimination:
    @pytest.fixture
    def overlapping_resource(self):
        """Source-A and Source-B both hold the Ullman document."""
        a = StartsSource("Source-A", source1_documents())
        b = StartsSource("Source-B", [ullman_dood_document(), *source2_documents()])
        return Resource("Overlap", [a, b])

    def test_duplicate_appears_once(self, overlapping_resource):
        query = ranking_query().with_sources("Source-B")
        results = overlapping_resource.search("Source-A", query)
        ullman = [d for d in results.documents if "ullman" in d.linkage]
        assert len(ullman) == 1

    def test_duplicate_lists_both_sources(self, overlapping_resource):
        """The paper: the resource "can eliminate duplicate documents
        from the query result"; the survivor names every source."""
        query = ranking_query().with_sources("Source-B")
        results = overlapping_resource.search("Source-A", query)
        ullman = next(d for d in results.documents if "ullman" in d.linkage)
        assert set(ullman.sources) == {"Source-A", "Source-B"}

    def test_duplicate_keeps_best_score(self, overlapping_resource):
        query = ranking_query().with_sources("Source-B")
        merged = overlapping_resource.search("Source-A", query)
        ullman_merged = next(d for d in merged.documents if "ullman" in d.linkage)
        a_score = next(
            d.raw_score
            for d in overlapping_resource.source("Source-A").search(query).documents
            if "ullman" in d.linkage
        )
        b_score = next(
            d.raw_score
            for d in overlapping_resource.source("Source-B").search(query).documents
            if "ullman" in d.linkage
        )
        assert ullman_merged.raw_score == max(a_score, b_score)


class TestDescribe:
    def test_describe_lists_all_sources(self, paper_resource):
        resource_obj = paper_resource.describe()
        assert resource_obj.source_ids() == ["Source-1", "Source-2"]
        assert resource_obj.metadata_url("Source-1").endswith("/meta")
