"""Differential tests: independent paths must agree exactly.

Transport must be invisible (wire results == direct results), repeated
construction must be bit-identical (determinism), and client-side
translation must predict server behaviour for whole workloads.
"""

import pytest

from repro import Metasearcher, SQuery, parse_expression, quick_federation
from repro.metasearch.translation import ClientTranslator
from repro.transport import StartsClient


@pytest.fixture(scope="module")
def world(small_federation):
    internet, resource_url, resource = small_federation
    searcher = Metasearcher(internet, [resource_url])
    searcher.refresh()
    return internet, resource, searcher


WORKLOAD = [
    'list((body-of-text "databases"))',
    'list((body-of-text "patient") (body-of-text "diagnosis"))',
    'list((body-of-text "routing") (body-of-text "congestion"))',
    'list((title stem "databases"))',
]


class TestTransportTransparency:
    @pytest.mark.parametrize("text", WORKLOAD)
    def test_wire_equals_direct(self, world, text):
        internet, resource, _ = world
        client = StartsClient(internet)
        for source_id in resource.source_ids():
            source = resource.source(source_id)
            query = SQuery(ranking_expression=parse_expression(text))
            over_wire = client.query(f"{source.base_url}/query", query)
            direct = source.search(query)
            assert over_wire == direct


class TestClientPredictsServer:
    @pytest.mark.parametrize("text", WORKLOAD)
    def test_translation_contract_holds(self, world, text):
        _, resource, _ = world
        translator = ClientTranslator()
        for source_id in resource.source_ids():
            source = resource.source(source_id)
            query = SQuery(ranking_expression=parse_expression(text))
            translated, _ = translator.translate(query, source.metadata())
            actual = source.search(query)
            assert actual.actual_ranking_expression == translated.ranking_expression


class TestConstructionDeterminism:
    def test_quick_federation_reproducible(self):
        results = []
        for _ in range(2):
            internet, resource_url = quick_federation(seed=19, docs_per_source=25)
            searcher = Metasearcher(internet, [resource_url])
            searcher.refresh()
            outcome = searcher.search(
                SQuery(
                    ranking_expression=parse_expression(
                        'list((body-of-text "databases"))'
                    )
                ),
                k_sources=2,
            )
            results.append(
                [(doc.linkage, round(doc.score, 12)) for doc in outcome.documents]
            )
        assert results[0] == results[1]

    def test_summaries_reproducible(self):
        blobs = []
        for _ in range(2):
            internet, resource_url = quick_federation(seed=19, docs_per_source=25)
            searcher = Metasearcher(internet, [resource_url])
            searcher.refresh()
            blobs.append(
                {
                    source_id: summary.to_soif().dump()
                    for source_id, summary in searcher.discovery.summaries().items()
                }
            )
        assert blobs[0] == blobs[1]
