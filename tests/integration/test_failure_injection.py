"""Failure injection: partial outages, malformed blobs, empty sources."""

import pytest

from repro.corpus import source1_documents
from repro.metasearch import Metasearcher
from repro.resource import Resource
from repro.source import StartsSource
from repro.starts import SQuery, parse_expression
from repro.starts.errors import SoifSyntaxError
from repro.transport import SimulatedInternet, StartsClient, publish_resource
from repro.transport.network import TransportError


def ranking_query():
    return SQuery(
        ranking_expression=parse_expression('list((body-of-text "databases"))')
    )


def publish_world(sources):
    internet = SimulatedInternet(seed=4)
    resource = Resource("World", sources)
    publish_resource(internet, resource, "http://world.example.org")
    return internet, "http://world.example.org/resource"


class TestMissingEndpoints:
    def test_summary_outage_degrades_gracefully(self):
        """A source whose summary endpoint is dark is still usable; it
        just cannot participate in summary-based selection."""
        internet, resource_url = publish_world(
            [StartsSource("Dark", source1_documents())]
        )
        # Simulate the outage: replace the GET handler with one that
        # never registered -> remove from registry.
        internet._get_handlers.pop("http://dark.example.org/cont_sum.txt")

        searcher = Metasearcher(internet, [resource_url])
        known = searcher.refresh()
        assert known[0].summary is None
        # Search still works: with no summaries the client falls back
        # to the first k known sources.
        result = searcher.search(ranking_query(), k_sources=1)
        assert result.documents

    def test_sample_outage_tolerated(self):
        internet, resource_url = publish_world(
            [StartsSource("NoSample", source1_documents())]
        )
        internet._get_handlers.pop("http://nosample.example.org/sample")
        searcher = Metasearcher(internet, [resource_url])
        known = searcher.refresh()
        assert known[0].sample_results is None

    def test_unregistered_resource_raises(self):
        internet = SimulatedInternet()
        searcher = Metasearcher(internet, ["http://nowhere.example.org/resource"])
        with pytest.raises(TransportError):
            searcher.refresh()


class TestMalformedBlobs:
    def test_corrupt_metadata_blob_raises_cleanly(self):
        internet, resource_url = publish_world(
            [StartsSource("Corrupt", source1_documents())]
        )
        internet._get_handlers["http://corrupt.example.org/meta"] = (
            lambda: b"@SMetaAttributes{\nbroken"
        )
        searcher = Metasearcher(internet, [resource_url])
        with pytest.raises(SoifSyntaxError):
            searcher.refresh()

    def test_truncated_result_stream_raises_cleanly(self):
        internet, resource_url = publish_world(
            [StartsSource("Trunc", source1_documents())]
        )
        client = StartsClient(internet)
        internet._post_handlers["http://trunc.example.org/query"] = (
            lambda body: b"@SQResults{\nVersion{10}: STARTS 1.0\nSources{5}: Trunc\nNumDocSOIFs{1}: 3\n}\n"
        )
        with pytest.raises(SoifSyntaxError):
            client.query("http://trunc.example.org/query", ranking_query())


class TestDegenerateSources:
    def test_empty_source_is_legal(self):
        empty = StartsSource("Empty", [])
        results = empty.search(ranking_query())
        assert results.documents == ()
        assert empty.content_summary().num_docs == 0
        assert empty.metadata().source_id == "Empty"

    def test_empty_source_in_federation(self):
        internet, resource_url = publish_world(
            [
                StartsSource("Empty", []),
                StartsSource("Full", source1_documents()),
            ]
        )
        searcher = Metasearcher(internet, [resource_url])
        searcher.refresh()
        result = searcher.search(ranking_query(), k_sources=2)
        assert result.documents  # the full source carries the answer
        assert all(doc.source_id == "Full" for doc in result.documents)

    def test_single_document_source(self):
        from repro.corpus import ullman_dood_document

        tiny = StartsSource("Tiny", [ullman_dood_document()])
        results = tiny.search(ranking_query())
        assert len(results.documents) == 1
