"""Distributed tracing: one consultation, one stitched cross-process tree.

The acceptance path for the tracing tentpole: a :class:`RootBroker`
whose children are :class:`NetworkLeafHandle`\\ s over published
endpoints runs one ``select`` under a client tracer; the trace context
crosses the (simulated) wire as a ``traceparent`` header, each endpoint
records its serve-side fragment into a :class:`TraceCollector`, and
:func:`stitch_traces` splices everything back into a single tree under
one trace id — root span → per-leaf ``rpc:*`` spans → server-side
``leaf:*`` spans.
"""

import json

from repro.broker import LeafBroker, NetworkLeafHandle, RootBroker
from repro.federation import ParallelExecutor
from repro.metasearch.selection import Cori
from repro.observability import (
    TraceCollector,
    Tracer,
    render_stitched_ndjson,
    stitch_traces,
    stitched_chrome_trace,
    trace_events,
)
from repro.transport import SimulatedInternet, publish_broker_leaf

from tests.broker.util import demo_population


def _traced_network_root(n_leaves=3, executor=None):
    internet = SimulatedInternet(seed=3)
    collector = TraceCollector()
    handles = []
    for index in range(n_leaves):
        leaf = LeafBroker(f"net-{index}")
        base = f"http://net-{index}.example.org/broker"
        publish_broker_leaf(internet, leaf, base, trace_sink=collector)
        handles.append(NetworkLeafHandle(internet, base, leaf.leaf_id))
    root = RootBroker(handles, executor=executor)
    population = demo_population()
    for source_id in sorted(population):
        root.apply_delta(source_id, population[source_id])
    return root, collector


def _span_rows(rows):
    return [row for row in rows if row["kind"] == "span"]


class TestStitchedConsultation:
    def _run(self, executor=None):
        root, collector = _traced_network_root(executor=executor)
        tracer = Tracer()
        selected = root.select(Cori(), ["databases", "medicine"], 3, tracer=tracer)
        assert selected
        trace = tracer.trace()
        rows = stitch_traces(trace, collector.traces())
        return trace, collector, rows

    def test_one_trace_id_across_processes(self):
        trace, collector, rows = self._run()
        assert collector.traces(trace.trace_id)  # fragments did arrive
        assert {row["trace_id"] for row in rows} == {trace.trace_id}

    def test_fragments_nest_under_the_issuing_rpc_spans(self):
        trace, _, rows = self._run()
        spans = _span_rows(rows)
        by_id = {row["span_id"]: row for row in spans}
        client_rpc_ids = {
            row["span_id"] for row in spans if row["name"].startswith("rpc:")
        }
        fragment_roots = [
            row
            for row in spans
            if row["name"].startswith("leaf:") and row["parent_id"] in by_id
        ]
        # Every server-side fragment hangs off exactly the client-side
        # rpc span that issued it — the cross-process stitch.
        served = [row for row in spans if row["name"].startswith("leaf:")]
        assert served
        assert fragment_roots == served
        for row in served:
            assert row["parent_id"] in client_rpc_ids
            parent = by_id[row["parent_id"]]
            leaf_id = row["name"].split(":")[1]
            assert parent["name"].endswith(f":{leaf_id}")

    def test_three_level_nesting_root_rpc_leaf(self):
        trace, _, rows = self._run()
        spans = _span_rows(rows)
        by_id = {row["span_id"]: row for row in spans}
        leaf_row = next(row for row in spans if row["name"].startswith("leaf:"))
        rpc_row = by_id[leaf_row["parent_id"]]
        select_row = by_id[rpc_row["parent_id"]]
        assert select_row["name"] == "select:broker"
        assert select_row["parent_id"] is None

    def test_probe_and_select_endpoints_both_traced(self):
        _, _, rows = self._run()
        names = {row["name"] for row in _span_rows(rows)}
        assert any(name.startswith("rpc:probe:") for name in names)
        assert any(name.startswith("rpc:select:") for name in names)
        assert any(
            name.startswith("leaf:") and name.endswith(":probe")
            for name in names
        )
        assert any(
            name.startswith("leaf:") and name.endswith(":select")
            for name in names
        )

    def test_parallel_executor_stitches_identically(self):
        # Contextvars do not cross the thread pool; the explicit capture
        # in RootBroker._consult must keep the stitch intact anyway.
        trace, _, rows = self._run(executor=ParallelExecutor(max_workers=4))
        spans = _span_rows(rows)
        assert {row["trace_id"] for row in spans} == {trace.trace_id}
        rpc_ids = {
            row["span_id"] for row in spans if row["name"].startswith("rpc:")
        }
        served = [row for row in spans if row["name"].startswith("leaf:")]
        assert served
        assert all(row["parent_id"] in rpc_ids for row in served)

    def test_ndjson_is_one_json_object_per_line(self):
        trace, collector, _ = self._run()
        text = render_stitched_ndjson(trace, collector.traces())
        lines = text.strip().split("\n")
        parsed = [json.loads(line) for line in lines]
        assert all(row["trace_id"] == trace.trace_id for row in parsed)

    def test_chrome_trace_gives_fragments_their_own_pids(self):
        trace, collector, _ = self._run()
        doc = stitched_chrome_trace(trace, collector.traces())
        pids = {event["pid"] for event in doc["traceEvents"]}
        assert 1 in pids  # the client
        assert len(pids) > 1  # at least one serving process
        remote_parents = [
            event["args"]["remote_parent"]
            for event in doc["traceEvents"]
            if "remote_parent" in event["args"]
        ]
        client_ids = {
            span.span_id for span in trace.walk() if span.span_id
        }
        assert remote_parents
        assert all(parent in client_ids for parent in remote_parents)

    def test_unrelated_fragments_are_not_stitched(self):
        trace, collector, _ = self._run()
        stranger = Tracer(trace_id="f00d" * 4)
        with stranger.span("serve:query:other"):
            pass
        collector.add(stranger.trace())
        rows = stitch_traces(trace, collector.traces())
        assert {row["trace_id"] for row in rows} == {trace.trace_id}


class TestUntracedPathUnchanged:
    def test_no_tracer_no_fragments(self):
        root, collector = _traced_network_root()
        root.select(Cori(), ["databases"], 3)
        assert len(collector) == 0

    def test_no_sink_means_bare_handlers(self):
        internet = SimulatedInternet(seed=3)
        leaf = LeafBroker("bare-0")
        base = "http://bare-0.example.org/broker"
        publish_broker_leaf(internet, leaf, base)  # no sink
        handle = NetworkLeafHandle(internet, base, leaf.leaf_id)
        root = RootBroker([handle])
        population = demo_population()
        for source_id in sorted(population):
            root.apply_delta(source_id, population[source_id])
        tracer = Tracer()
        assert root.select(Cori(), ["databases"], 3, tracer=tracer)
        # The client side still traces; there is just nothing to stitch.
        assert stitch_traces(tracer.trace(), []) == trace_events(
            tracer.trace(), stable_ids=True
        )
