"""Cross-package integration: the whole stack under one roof."""

import pytest

from repro import Metasearcher, SQuery, parse_expression, quick_federation
from repro.metasearch import MERGE_STRATEGIES


@pytest.fixture(scope="module")
def federation():
    internet, resource_url = quick_federation(seed=21, docs_per_source=40)
    searcher = Metasearcher(internet, [resource_url])
    searcher.refresh()
    return internet, searcher


def ranking_query(*words, **overrides):
    terms = " ".join(f'(body-of-text "{word}")' for word in words)
    defaults = dict(
        ranking_expression=parse_expression(f"list({terms})"),
        max_number_documents=10,
    )
    defaults.update(overrides)
    return SQuery(**defaults)


class TestEveryMergeStrategyEndToEnd:
    @pytest.mark.parametrize("strategy_name", sorted(MERGE_STRATEGIES))
    def test_strategy_produces_ordered_dedup_results(self, federation, strategy_name):
        internet, searcher = federation
        merger = MERGE_STRATEGIES[strategy_name]()
        result = searcher.search(
            ranking_query("databases", "distributed"), k_sources=3, merger=merger
        )
        linkages = result.linkages()
        assert len(linkages) == len(set(linkages)), "no duplicates"
        scores = [doc.score for doc in result.documents]
        assert scores == sorted(scores, reverse=True)


class TestWireOnlyKnowledge:
    def test_client_never_touches_source_objects(self, federation):
        """Everything the metasearcher knows arrived as SOIF bytes."""
        internet, searcher = federation
        for known in searcher.discovery.known_sources():
            # Round-tripped objects, not references into the sources.
            assert known.metadata.source_id == known.source_id
            assert known.summary is not None
            assert known.summary.num_docs > 0

    def test_query_round_trip_counts_requests(self, federation):
        internet, searcher = federation
        internet.reset_log()
        searcher.search(ranking_query("databases"), k_sources=2)
        assert internet.request_count() == 2  # one POST per selected source


class TestMixedQueryAcrossStack:
    def test_filter_plus_ranking_plus_answer_spec(self, federation):
        internet, searcher = federation
        query = SQuery(
            filter_expression=parse_expression(
                '(date-last-modified > "1994-06-01")'
            ),
            ranking_expression=parse_expression(
                'list((body-of-text "databases") (body-of-text "networks"))'
            ),
            answer_fields=("title", "author"),
            max_number_documents=5,
        )
        result = searcher.search(query, k_sources=3)
        for document in result.documents:
            assert document.document.get("title")
            date = document.document.get("date/time-last-modified", "9999")
            # Answer fields only include what was asked: date was not.
            assert date == "9999" or date > "1994-06-01"

    def test_the_full_story_in_one_flow(self, federation):
        """Discovery → selection → translation → query → merge, with
        every intermediate visible."""
        internet, searcher = federation
        result = searcher.search(
            ranking_query("databases", "query"), k_sources=2
        )
        assert len(result.selected_sources) == 2
        assert set(result.per_source_results) <= set(result.selected_sources)
        for source_id, report in result.translation_reports.items():
            assert report.source_id == source_id
        assert result.documents
