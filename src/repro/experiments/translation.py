"""Experiment E3: query-translation coverage across vendors.

A mix of queries exercising every Basic-1 feature is translated for
every vendor's metadata.  Three things are measured per (vendor,
feature) pair:

* **survival** — did anything of the query survive for that source;
* **losslessness** — did the full query survive untouched;
* **contract fidelity** — does the client-side prediction equal the
  source's actual-query report (the §4.2 contract)?

The least-common-denominator comparison (§5's MetaCrawler critique):
the intersection of all vendors' capabilities, i.e. the features a
pre-STARTS metasearcher could have used at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.federation import Federation
from repro.metasearch.translation import ClientTranslator
from repro.starts.parser import parse_expression
from repro.starts.query import SQuery

__all__ = ["FEATURE_QUERIES", "TranslationCell", "run_translation_experiment"]

#: Feature name → a query exercising exactly that feature.
FEATURE_QUERIES: dict[str, SQuery] = {
    "plain-term": SQuery(
        filter_expression=parse_expression('(body-of-text "databases")')
    ),
    "title-field": SQuery(filter_expression=parse_expression('(title "databases")')),
    "author-field": SQuery(filter_expression=parse_expression('(author "Ullman")')),
    "stem": SQuery(
        filter_expression=parse_expression('(title stem "databases")')
    ),
    "phonetic": SQuery(
        filter_expression=parse_expression('(author phonetic "Ullman")')
    ),
    "thesaurus": SQuery(
        filter_expression=parse_expression('(body-of-text thesaurus "database")')
    ),
    "right-truncation": SQuery(
        filter_expression=parse_expression('(body-of-text right-truncation "data")')
    ),
    "case-sensitive": SQuery(
        filter_expression=parse_expression('(title case-sensitive "Databases")')
    ),
    "date-comparison": SQuery(
        filter_expression=parse_expression('(date-last-modified > "1995-01-01")')
    ),
    "prox": SQuery(
        filter_expression=parse_expression(
            '((body-of-text "distributed") prox[2,T] (body-of-text "databases"))'
        )
    ),
    "ranking-list": SQuery(
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        )
    ),
    "ranking-weights": SQuery(
        ranking_expression=parse_expression(
            'list(("distributed" 0.7) ("databases" 0.3))'
        )
    ),
    "keep-stop-words": SQuery(
        filter_expression=parse_expression(
            '((body-of-text "The") and (body-of-text "Who"))'
        ),
        drop_stop_words=False,
    ),
    "boolean-and-not": SQuery(
        filter_expression=parse_expression(
            '((body-of-text "databases") and-not (body-of-text "legacy"))'
        )
    ),
}


@dataclass(frozen=True)
class TranslationCell:
    """One (source, feature) measurement."""

    source_id: str
    feature: str
    survived: bool
    lossless: bool
    prediction_matches_actual: bool


def run_translation_experiment(federation: Federation) -> list[TranslationCell]:
    """Run E3 over every (source, feature) pair."""
    translator = ClientTranslator()
    cells: list[TranslationCell] = []
    for source_id in federation.source_ids():
        source = federation.sources[source_id]
        metadata = source.metadata()
        for feature, query in FEATURE_QUERIES.items():
            translated, report = translator.translate(query, metadata)
            survived = (
                translated.filter_expression is not None
                or translated.ranking_expression is not None
            )
            actual = source.search(query)
            prediction_ok = (
                actual.actual_filter_expression == translated.filter_expression
                and actual.actual_ranking_expression == translated.ranking_expression
            )
            cells.append(
                TranslationCell(
                    source_id,
                    feature,
                    survived,
                    report.is_lossless(),
                    prediction_ok,
                )
            )
    return cells


def least_common_denominator(cells: list[TranslationCell]) -> list[str]:
    """Features lossless at EVERY source — all a pre-STARTS
    metasearcher could rely on."""
    by_feature: dict[str, bool] = {}
    for cell in cells:
        by_feature[cell.feature] = (
            by_feature.get(cell.feature, True) and cell.lossless
        )
    return sorted(feature for feature, ok in by_feature.items() if ok)
