"""Evaluation metrics shared by the experiment runners.

All metrics operate on linkage (URL) lists/sets so they are independent
of any engine's internal document ids.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "rank_recall_at_k",
    "spearman_overlap",
    "mean",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def precision_at_k(ranked: Sequence[str], relevant: set[str], k: int) -> float:
    """Fraction of the top-k that is relevant.

    The denominator is ``min(k, len(ranked))`` when the rank is shorter
    than k, and 0 results yield precision 0.
    """
    top = list(ranked[:k])
    if not top:
        return 0.0
    hits = sum(1 for linkage in top if linkage in relevant)
    return hits / len(top)


def recall_at_k(ranked: Sequence[str], relevant: set[str], k: int) -> float:
    """Fraction of all relevant items found in the top-k."""
    if not relevant:
        return 0.0
    top = set(ranked[:k])
    return len(top & relevant) / len(relevant)


def rank_recall_at_k(
    source_rank: Sequence[str], relevant_by_source: dict[str, int], k: int
) -> float:
    """GlOSS-style selection recall: of all relevant *documents*, what
    fraction lives in the k sources chosen first?

    Args:
        source_rank: source ids, best first (a selector's output).
        relevant_by_source: per-source relevant-document counts (the
            workload oracle's goodness).
        k: number of sources contacted.
    """
    total = sum(relevant_by_source.values())
    if total == 0:
        return 0.0
    covered = sum(relevant_by_source.get(s, 0) for s in source_rank[:k])
    return covered / total


def spearman_overlap(reference: Sequence[str], candidate: Sequence[str]) -> float:
    """Spearman rank correlation over the items both rankings contain.

    Returns a value in [-1, 1]; 1 means identical relative order.  With
    fewer than two shared items the correlation is undefined and 0.0 is
    returned.
    """
    shared = [item for item in reference if item in set(candidate)]
    if len(shared) < 2:
        return 0.0
    reference_rank = {item: index for index, item in enumerate(shared)}
    candidate_order = [item for item in candidate if item in reference_rank]
    candidate_rank = {item: index for index, item in enumerate(candidate_order)}

    n = len(shared)
    d_squared = sum(
        (reference_rank[item] - candidate_rank[item]) ** 2 for item in shared
    )
    return 1.0 - (6.0 * d_squared) / (n * (n * n - 1))
