"""Experiment E5: the full STARTS pipeline vs. the pre-STARTS baseline.

The STARTS metasearcher selects k sources from summaries, pre-translates
per capabilities, queries over the wire and merges with global
statistics.  The baseline metasearcher — what §5 says MetaCrawler-era
systems did — queries *every* source and merges raw scores.  Measured
per query: answer quality (precision@10), network requests, simulated
latency and monetary cost.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field as dataclass_field

from repro.experiments.federation import Federation
from repro.experiments.metrics import mean, precision_at_k
from repro.federation.executor import Executor
from repro.federation.policy import QueryPolicy
from repro.metasearch import (
    Metasearcher,
    RawScoreMerge,
    SelectAll,
    TfIdfRecomputeMerge,
    VGlossMax,
)
from repro.observability.tracing import Tracer

__all__ = ["PipelineResult", "run_end_to_end_experiment"]


@dataclass(frozen=True)
class PipelineResult:
    """Aggregate behaviour of one pipeline configuration."""

    name: str
    precision_at_10: float
    requests_per_query: float
    latency_ms_per_query: float
    cost_per_query: float
    parallel_latency_ms_per_query: float = 0.0
    outcome_counts: dict[str, int] = dataclass_field(default_factory=dict)

    def row(self) -> str:
        line = (
            f"{self.name:<22} P@10={self.precision_at_10:.3f} "
            f"reqs={self.requests_per_query:.1f} "
            f"latency={self.latency_ms_per_query:.0f}ms "
            f"(parallel {self.parallel_latency_ms_per_query:.0f}ms) "
            f"cost={self.cost_per_query:.2f}"
        )
        failures = sum(
            count
            for status, count in self.outcome_counts.items()
            if status in ("error", "timeout")
        )
        if failures:
            line += f" failures={failures}"
        return line


def run_end_to_end_experiment(
    federation: Federation,
    n_queries: int = 20,
    k_sources: int = 3,
    executor: Executor | None = None,
    query_policy: QueryPolicy | None = None,
    tracer: Tracer | None = None,
) -> list[PipelineResult]:
    """Run E5: STARTS pipeline vs. query-all/raw-merge baseline.

    Args:
        executor: passed through to the :class:`Metasearcher` — sweep
            serial vs. parallel fan-out over the same federation.
        query_policy: per-source execution policy, for federations with
            fault injection enabled.
        tracer: when given, every search of every configuration records
            into it, so per-source counters aggregate across the run.
    """
    configurations = [
        ("starts(vGlOSS+tfidf)", VGlossMax(), TfIdfRecomputeMerge(), k_sources),
        ("baseline(all+raw)", SelectAll(), RawScoreMerge(), len(federation.sources)),
    ]
    queries = federation.workload.queries[:n_queries]

    results = []
    for name, selector, merger, k in configurations:
        searcher = Metasearcher(
            federation.internet,
            [federation.resource_url],
            selector=selector,
            merger=merger,
            executor=executor,
            query_policy=query_policy,
        )
        searcher.refresh()
        federation.internet.reset_log()

        precisions = []
        parallel_latencies = []
        outcome_counts: Counter[str] = Counter()
        for query in queries:
            search_result = searcher.search(
                query.to_squery(max_documents=20), k_sources=k, tracer=tracer
            )
            precisions.append(
                precision_at_k(search_result.linkages(), set(query.relevant), 10)
            )
            parallel_latencies.append(search_result.query_latency_parallel_ms)
            outcome_counts.update(search_result.outcome_counts())
        n = max(len(queries), 1)
        results.append(
            PipelineResult(
                name,
                mean(precisions),
                federation.internet.request_count() / n,
                federation.internet.total_latency_ms() / n,
                federation.internet.total_cost() / n,
                parallel_latency_ms_per_query=mean(parallel_latencies),
                outcome_counts=dict(outcome_counts),
            )
        )
    return results
