"""Experiment E5: the full STARTS pipeline vs. the pre-STARTS baseline.

The STARTS metasearcher selects k sources from summaries, pre-translates
per capabilities, queries over the wire and merges with global
statistics.  The baseline metasearcher — what §5 says MetaCrawler-era
systems did — queries *every* source and merges raw scores.  Measured
per query: answer quality (precision@10), network requests, simulated
latency and monetary cost.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field as dataclass_field

from repro.cache.policy import CachePolicy
from repro.experiments.federation import Federation
from repro.experiments.metrics import mean, precision_at_k
from repro.federation.executor import Executor
from repro.federation.policy import QueryPolicy
from repro.metasearch import (
    Metasearcher,
    RawScoreMerge,
    SelectAll,
    TfIdfRecomputeMerge,
    VGlossMax,
)
from repro.observability.tracing import Tracer

__all__ = ["PipelineResult", "run_end_to_end_experiment"]


@dataclass(frozen=True)
class PipelineResult:
    """Aggregate behaviour of one pipeline configuration."""

    name: str
    precision_at_10: float
    requests_per_query: float
    latency_ms_per_query: float
    cost_per_query: float
    parallel_latency_ms_per_query: float = 0.0
    outcome_counts: dict[str, int] = dataclass_field(default_factory=dict)
    #: result-cache tallies over the whole run (hits/stale_hits/misses/
    #: negative_skips); empty when the run was uncached.
    cache_counts: dict[str, int] = dataclass_field(default_factory=dict)

    def row(self) -> str:
        line = (
            f"{self.name:<22} P@10={self.precision_at_10:.3f} "
            f"reqs={self.requests_per_query:.1f} "
            f"latency={self.latency_ms_per_query:.0f}ms "
            f"(parallel {self.parallel_latency_ms_per_query:.0f}ms) "
            f"cost={self.cost_per_query:.2f}"
        )
        failures = sum(
            count
            for status, count in self.outcome_counts.items()
            if status in ("error", "timeout")
        )
        if failures:
            line += f" failures={failures}"
        if self.cache_counts:
            line += (
                f" cache={self.cache_counts.get('hits', 0)}h/"
                f"{self.cache_counts.get('stale_hits', 0)}s/"
                f"{self.cache_counts.get('misses', 0)}m"
            )
            skips = self.cache_counts.get("negative_skips", 0)
            if skips:
                line += f" negskips={skips}"
        return line


def run_end_to_end_experiment(
    federation: Federation,
    n_queries: int = 20,
    k_sources: int = 3,
    executor: Executor | None = None,
    query_policy: QueryPolicy | None = None,
    tracer: Tracer | None = None,
    cache_policy: CachePolicy | None = None,
) -> list[PipelineResult]:
    """Run E5: STARTS pipeline vs. query-all/raw-merge baseline.

    Args:
        executor: passed through to the :class:`Metasearcher` — sweep
            serial vs. parallel fan-out over the same federation.
        query_policy: per-source execution policy, for federations with
            fault injection enabled.
        tracer: when given, every search of every configuration records
            into it, so per-source counters aggregate across the run.
        cache_policy: caching configuration for the searchers.  The
            experiment defaults to **disabled** — the workload's
            distinct queries make caching pure overhead, and the
            paper-faithful numbers must not depend on it.  Pass an
            enabled policy to measure a cached deployment; the
            per-configuration result then reports hit/miss tallies in
            :attr:`PipelineResult.cache_counts`.
    """
    cache_policy = cache_policy or CachePolicy.disabled()
    configurations = [
        ("starts(vGlOSS+tfidf)", VGlossMax(), TfIdfRecomputeMerge(), k_sources),
        ("baseline(all+raw)", SelectAll(), RawScoreMerge(), len(federation.sources)),
    ]
    queries = federation.workload.queries[:n_queries]

    results = []
    for name, selector, merger, k in configurations:
        searcher = Metasearcher(
            federation.internet,
            [federation.resource_url],
            selector=selector,
            merger=merger,
            executor=executor,
            query_policy=query_policy,
            cache_policy=cache_policy,
        )
        searcher.refresh()
        federation.internet.reset_log()

        precisions = []
        parallel_latencies = []
        outcome_counts: Counter[str] = Counter()
        for query in queries:
            search_result = searcher.search(
                query.to_squery(max_documents=20), k_sources=k, tracer=tracer
            )
            precisions.append(
                precision_at_k(search_result.linkages(), set(query.relevant), 10)
            )
            parallel_latencies.append(search_result.query_latency_parallel_ms)
            outcome_counts.update(search_result.outcome_counts())
        n = max(len(queries), 1)
        cache_counts: dict[str, int] = {}
        if searcher.result_cache is not None:
            stats = searcher.result_cache.stats
            cache_counts = {
                "hits": stats.hits,
                "stale_hits": stats.stale_hits,
                "misses": stats.misses,
                "negative_skips": searcher.negative_cache.skips,
            }
        results.append(
            PipelineResult(
                name,
                mean(precisions),
                federation.internet.request_count() / n,
                federation.internet.total_latency_ms() / n,
                federation.internet.total_cost() / n,
                parallel_latency_ms_per_query=mean(parallel_latencies),
                outcome_counts=dict(outcome_counts),
                cache_counts=cache_counts,
            )
        )
    return results
