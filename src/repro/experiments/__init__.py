"""Experiment runners backing EXPERIMENTS.md and the benchmark harness.

One module per experiment family (see DESIGN.md §3):

* E1 — :mod:`~repro.experiments.selection` (source selection / GlOSS)
* E2/E6 — :mod:`~repro.experiments.merging` (rank merging / calibration)
* E3 — :mod:`~repro.experiments.translation` (query translation)
* E4 — :mod:`~repro.experiments.summaries` (summary size)
* E5 — :mod:`~repro.experiments.endtoend` (full pipeline vs. baseline)

All runners share the reproducible federation from
:mod:`~repro.experiments.federation` and the metrics from
:mod:`~repro.experiments.metrics`.
"""

from repro.experiments.endtoend import PipelineResult, run_end_to_end_experiment
from repro.experiments.federation import Federation, FederationSpec, build_federation
from repro.experiments.merging import (
    MergingResult,
    default_strategies,
    run_merging_experiment,
)
from repro.experiments.metrics import (
    mean,
    precision_at_k,
    rank_recall_at_k,
    recall_at_k,
    spearman_overlap,
)
from repro.experiments.selection import (
    SelectionResult,
    default_selectors,
    run_selection_experiment,
)
from repro.experiments.summaries import SummarySizeRow, run_summary_size_experiment
from repro.experiments.translation import (
    FEATURE_QUERIES,
    TranslationCell,
    least_common_denominator,
    run_translation_experiment,
)

__all__ = [
    "PipelineResult",
    "run_end_to_end_experiment",
    "Federation",
    "FederationSpec",
    "build_federation",
    "MergingResult",
    "default_strategies",
    "run_merging_experiment",
    "mean",
    "precision_at_k",
    "rank_recall_at_k",
    "recall_at_k",
    "spearman_overlap",
    "SelectionResult",
    "default_selectors",
    "run_selection_experiment",
    "SummarySizeRow",
    "run_summary_size_experiment",
    "FEATURE_QUERIES",
    "TranslationCell",
    "least_common_denominator",
    "run_translation_experiment",
]
