"""The standard experiment federation.

Every experiment in EXPERIMENTS.md runs over the same reproducible
world: N topically focused collections, assigned round-robin to the
heterogeneous vendor engines, published on one resource over a
simulated internet with varied host profiles (one slow host, one
charging host — §3.3's motivation for source selection).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.corpus.generator import CollectionSpec, generate_collection
from repro.corpus.workload import Workload, build_workload
from repro.engine.documents import Document
from repro.resource import Resource
from repro.source.source import StartsSource
from repro.transport import (
    FaultProfile,
    HostProfile,
    SimulatedInternet,
    publish_resource,
)
from repro.vendors import build_vendor_source

__all__ = ["FederationSpec", "Federation", "build_federation"]

#: Topic mixtures for up to 20 sources; entries cycle when more are asked.
_TOPIC_PLANS = [
    {"databases": 0.9, "retrieval": 0.1},
    {"retrieval": 0.9, "databases": 0.1},
    {"networking": 1.0},
    {"medicine": 1.0},
    {"astronomy": 1.0},
    {"law": 1.0},
    {"cooking": 1.0},
    {"databases": 0.5, "networking": 0.5},
    {"medicine": 0.5, "law": 0.5},
    {"retrieval": 0.5, "astronomy": 0.5},
]

#: Vendors cycle over the sources, so every federation is heterogeneous.
_VENDOR_CYCLE = [
    "AcmeSearch",
    "OkapiWorks",
    "InferNet",
    "ZeusFind",
    "MundoDocs",
]


@dataclass(frozen=True)
class FederationSpec:
    """Parameters of an experiment federation."""

    n_sources: int = 8
    docs_per_source: int = 80
    n_queries: int = 50
    terms_per_query: tuple[int, int] = (1, 2)
    seed: int = 0
    include_boolean_only_source: bool = False
    slow_source_index: int | None = 2
    charging_source_index: int | None = 3
    #: Index of a source whose first requests fail before recovering
    #: (None disables; see FaultProfile.flaky).
    flaky_source_index: int | None = None
    flaky_failures: int = 2
    #: Index of a source whose host is dead — every request fails.
    dead_source_index: int | None = None


@dataclass
class Federation:
    """A built federation: network, resource, sources, and workload."""

    internet: SimulatedInternet
    resource: Resource
    resource_url: str
    sources: dict[str, StartsSource]
    collections: dict[str, list[Document]]
    workload: Workload
    costs: dict[str, float] = dataclass_field(default_factory=dict)

    def source_ids(self) -> list[str]:
        return sorted(self.sources)


def build_federation(spec: FederationSpec = FederationSpec()) -> Federation:
    """Build and publish the standard experiment federation."""
    internet = SimulatedInternet(seed=spec.seed)
    resource = Resource("ExperimentFederation")
    sources: dict[str, StartsSource] = {}
    collections: dict[str, list[Document]] = {}
    profiles: dict[str, HostProfile] = {}
    faults: dict[str, FaultProfile] = {}
    costs: dict[str, float] = {}

    for index in range(spec.n_sources):
        source_id = f"Exp-{index:02d}"
        topics = _TOPIC_PLANS[index % len(_TOPIC_PLANS)]
        vendor = _VENDOR_CYCLE[index % len(_VENDOR_CYCLE)]
        if spec.include_boolean_only_source and index == spec.n_sources - 1:
            vendor = "GrepMaster"
        documents = generate_collection(
            CollectionSpec(
                name=source_id,
                topics=topics,
                size=spec.docs_per_source,
                seed=spec.seed * 1000 + index,
            )
        )
        source = build_vendor_source(vendor, source_id, documents)
        resource.add_source(source)
        sources[source_id] = source
        collections[source_id] = documents

        profile = HostProfile()
        if index == spec.slow_source_index:
            profile = HostProfile(latency_ms=400.0, jitter_ms=20.0)
        if index == spec.charging_source_index:
            profile = HostProfile(cost_per_query=5.0)
            costs[source_id] = 5.0
        profiles[source_id] = profile
        if index == spec.flaky_source_index:
            faults[source_id] = FaultProfile.flaky(spec.flaky_failures)
        if index == spec.dead_source_index:
            faults[source_id] = FaultProfile.dead()

    resource_url = "http://experiments.example.org"
    publish_resource(
        internet,
        resource,
        resource_url,
        source_profiles=profiles,
        source_faults=faults or None,
    )

    workload = build_workload(
        collections,
        n_queries=spec.n_queries,
        terms_per_query=spec.terms_per_query,
        seed=spec.seed + 7,
    )
    return Federation(
        internet=internet,
        resource=resource,
        resource_url=f"{resource_url}/resource",
        sources=sources,
        collections=collections,
        workload=workload,
        costs=costs,
    )
