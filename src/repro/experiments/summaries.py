"""Experiment E4: content-summary size vs. collection size.

The paper (§4.3.2): the automatically generated summary "is orders of
magnitude smaller than the original contents".  For a sweep of
collection sizes we measure the SOIF byte size of the full collection
(as the crawler alternative would ship it), of the full summary, and of
truncated summaries, plus the resulting compression ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.generator import CollectionSpec, generate_collection
from repro.source.source import StartsSource
from repro.starts.soif import SoifObject

__all__ = ["SummarySizeRow", "run_summary_size_experiment"]


@dataclass(frozen=True)
class SummarySizeRow:
    """Sizes for one collection size, in bytes."""

    n_docs: int
    collection_bytes: int
    summary_bytes: int
    truncated_summary_bytes: int

    @property
    def full_ratio(self) -> float:
        return self.collection_bytes / max(self.summary_bytes, 1)

    @property
    def truncated_ratio(self) -> float:
        return self.collection_bytes / max(self.truncated_summary_bytes, 1)

    def row(self) -> str:
        return (
            f"N={self.n_docs:<5} corpus={self.collection_bytes:>9}B "
            f"summary={self.summary_bytes:>8}B (x{self.full_ratio:.1f}) "
            f"truncated={self.truncated_summary_bytes:>7}B "
            f"(x{self.truncated_ratio:.1f})"
        )


def _collection_soif_bytes(source: StartsSource) -> int:
    """What shipping the whole collection would cost on the wire."""
    total = 0
    for document in source.engine.store:
        obj = SoifObject("Document")
        obj.add("linkage", document.linkage)
        for name, value in document.fields.items():
            obj.add(name, value)
        total += len(obj.dump().encode("utf-8"))
    return total


def run_summary_size_experiment(
    sizes: tuple[int, ...] = (25, 50, 100, 200),
    truncate_to: int = 50,
    seed: int = 5,
) -> list[SummarySizeRow]:
    """Run E4 across a sweep of collection sizes."""
    rows = []
    for n_docs in sizes:
        documents = generate_collection(
            CollectionSpec(
                name=f"Size-{n_docs}",
                topics={"databases": 0.6, "retrieval": 0.4},
                size=n_docs,
                seed=seed,
            )
        )
        source = StartsSource(f"Size-{n_docs}", documents)
        collection_bytes = _collection_soif_bytes(source)
        summary_bytes = len(
            source.content_summary().to_soif().dump().encode("utf-8")
        )
        truncated_bytes = len(
            source.content_summary(max_words_per_section=truncate_to)
            .to_soif()
            .dump()
            .encode("utf-8")
        )
        rows.append(
            SummarySizeRow(n_docs, collection_bytes, summary_bytes, truncated_bytes)
        )
    return rows
