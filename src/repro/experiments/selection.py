"""Experiment E1: source-selection effectiveness (GlOSS, refs [7, 8]).

For every selector, rank the federation's sources per query using only
the harvested content summaries, and measure *selection recall at k*:
the fraction of all relevant documents that live in the k sources
contacted first.  The paper's claim under test (§4.3.2): automatically
generated content summaries, orders of magnitude smaller than the
collections, are enough to tell useful sources from useless ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.federation import Federation
from repro.experiments.metrics import mean, rank_recall_at_k
from repro.metasearch.selection import (
    BGloss,
    BySize,
    Cori,
    RandomSelector,
    SourceSelector,
    VGlossMax,
    VGlossSum,
)

__all__ = ["SelectionResult", "default_selectors", "run_selection_experiment"]


@dataclass(frozen=True)
class SelectionResult:
    """Mean selection recall per k for one selector."""

    selector: str
    recall_at_k: dict[int, float]

    def row(self) -> str:
        cells = " ".join(
            f"R@{k}={value:.3f}" for k, value in sorted(self.recall_at_k.items())
        )
        return f"{self.selector:<14} {cells}"


def default_selectors() -> list[SourceSelector]:
    return [
        BGloss(),
        VGlossSum(),
        VGlossMax(),
        Cori(),
        BySize(),
        RandomSelector(seed=13),
    ]


def run_selection_experiment(
    federation: Federation,
    selectors: list[SourceSelector] | None = None,
    ks: tuple[int, ...] = (1, 2, 3, 5),
    max_words_per_section: int | None = None,
) -> list[SelectionResult]:
    """Run E1 and return one row per selector.

    Args:
        federation: the standard experiment federation.
        selectors: strategies to compare (defaults to all + baselines).
        ks: the numbers of sources contacted.
        max_words_per_section: truncate summaries first (the A1
            ablation knob); None uses full summaries.
    """
    selectors = selectors if selectors is not None else default_selectors()
    summaries = {
        source_id: source.content_summary(max_words_per_section)
        for source_id, source in federation.sources.items()
    }

    results = []
    for selector in selectors:
        per_k: dict[int, list[float]] = {k: [] for k in ks}
        for query in federation.workload.queries:
            ranked = [
                source_id
                for source_id, _ in selector.rank(list(query.terms), summaries)
            ]
            for k in ks:
                per_k[k].append(
                    rank_recall_at_k(ranked, query.relevant_by_source, k)
                )
        results.append(
            SelectionResult(
                selector.name, {k: mean(values) for k, values in per_k.items()}
            )
        )
    return results
