"""Experiments E2 and E6: rank-merging quality.

E2: every merge strategy consumes the same per-source results from the
heterogeneous vendors and is scored against (a) the containment oracle
(precision@10) and (b) the single-large-collection reference ranking
(Spearman) — §4.2's own framing of the merging goal.

E6: the same comparison when sources *withhold TermStats* (the engines
that lose statistics by result time, §4.2's last paragraph).  Only
strategies that need no TermStats remain meaningful, and the
sample-calibration strategy should recover most of what range
normalization gives.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.experiments.federation import Federation
from repro.experiments.metrics import mean, precision_at_k, spearman_overlap
from repro.metasearch.merging import (
    CalibratedMerge,
    CoriMerge,
    MergeContext,
    MergeStrategy,
    NormalizedScoreMerge,
    RawScoreMerge,
    RoundRobinMerge,
    TermFrequencyMerge,
    TfIdfRecomputeMerge,
)
from repro.starts.results import SQResults

__all__ = ["MergingResult", "default_strategies", "run_merging_experiment"]


@dataclass(frozen=True)
class MergingResult:
    """Mean quality of one merge strategy over the workload."""

    strategy: str
    precision_at_10: float
    spearman_vs_reference: float

    def row(self) -> str:
        return (
            f"{self.strategy:<18} P@10={self.precision_at_10:.3f} "
            f"rho={self.spearman_vs_reference:+.3f}"
        )


def default_strategies() -> list[MergeStrategy]:
    return [
        RawScoreMerge(),
        NormalizedScoreMerge(),
        TermFrequencyMerge(),
        TfIdfRecomputeMerge(),
        CoriMerge(),
        RoundRobinMerge(),
        CalibratedMerge(),
    ]


def run_merging_experiment(
    federation: Federation,
    strategies: list[MergeStrategy] | None = None,
    n_queries: int | None = 25,
    withhold_term_stats: bool = False,
    k_eval: int = 10,
) -> list[MergingResult]:
    """Run E2 (or E6 with ``withhold_term_stats=True``).

    Every query is evaluated at *all* sources so that the comparison
    isolates merging quality from source selection.
    """
    strategies = strategies if strategies is not None else default_strategies()
    queries = federation.workload.queries
    if n_queries is not None:
        queries = queries[:n_queries]

    metadata = {
        source_id: source.metadata()
        for source_id, source in federation.sources.items()
    }
    summaries = {
        source_id: source.content_summary()
        for source_id, source in federation.sources.items()
    }
    samples = {
        source_id: source.sample_results()
        for source_id, source in federation.sources.items()
    }

    per_strategy: dict[str, dict[str, list[float]]] = {
        strategy.name: {"p": [], "rho": []} for strategy in strategies
    }

    for query in queries:
        squery = query.to_squery(max_documents=k_eval * 2)
        results: dict[str, SQResults] = {}
        for source_id, source in federation.sources.items():
            result = source.search(squery)
            if withhold_term_stats:
                result = replace(
                    result,
                    documents=tuple(
                        replace(document, term_stats=())
                        for document in result.documents
                    ),
                )
            if result.documents:
                results[source_id] = result
        if not results:
            continue
        context = MergeContext(
            metadata=metadata,
            summaries=summaries,
            samples=samples,
            query_terms=query.terms,
        )
        reference = federation.workload.reference_ranking(query)
        for strategy in strategies:
            merged = strategy.merge(results, context)
            linkages = [m.linkage for m in merged]
            per_strategy[strategy.name]["p"].append(
                precision_at_k(linkages, set(query.relevant), k_eval)
            )
            per_strategy[strategy.name]["rho"].append(
                spearman_overlap(reference, linkages)
            )

    return [
        MergingResult(
            name, mean(values["p"]), mean(values["rho"])
        )
        for name, values in per_strategy.items()
    ]
