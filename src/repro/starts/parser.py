"""Recursive-descent parser for STARTS filter and ranking expressions.

Grammar (Section 4.1.1, reconstructed from the specification prose and
the paper's Examples 1–7):

.. code-block:: text

    expr     := term
              | "list" "(" expr* ")"                      (ranking only)
              | "(" expr (OP expr)+ ")"                   OP: and|or|and-not
              | "(" term PROX term ")"                    PROX: prox[d,T|F]
              | "(" term-body ")"
    term-body := [field] modifier* lstring [weight]
    field    := WORD | "[" set WORD "]"
    modifier := WORD | "{" set WORD "}"                   (known modifier names)
    lstring  := STRING | "[" langtag STRING "]"
    weight   := NUMBER in (0, 1]

A bare WORD in term position is a field if it is not a known modifier
name; ``(stem "databases")`` therefore reads as the ``stem`` modifier
applied to an ``Any``-field term, while ``(title "databases")`` reads
as a field.  The paper's typographic quotes (`` ``word'' ``) are
normalized to plain double quotes before tokenizing so the examples can
be parsed verbatim.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.starts.ast import SAnd, SAndNot, SList, SNode, SOr, SProx, STerm
from repro.starts.attributes import BASIC1, FieldRef, ModifierRef
from repro.starts.errors import QuerySyntaxError
from repro.starts.lstring import LString
from repro.text.langtags import parse_language_tag

__all__ = ["parse_expression", "parse_filter_expression", "parse_ranking_expression"]

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"(?:[^"\\]|\\.)*")      # quoted string
  | (?P<prox>prox\[\s*\d+\s*,\s*[TFtf]\s*\])
  | (?P<punct>[()\[\]{}])
  | (?P<word>[^\s()\[\]{}"]+)
    """,
    re.VERBOSE,
)

_OPERATORS = frozenset(("and", "or", "and-not"))

_MODIFIER_WORDS = frozenset(BASIC1.modifiers)

_NUMBER_RE = re.compile(r"^(?:\d+\.?\d*|\.\d+)$")

_PROX_RE = re.compile(r"prox\[\s*(\d+)\s*,\s*([TFtf])\s*\]")


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # "string" | "prox" | "punct" | "word"
    value: str
    position: int


def _normalize_quotes(text: str) -> str:
    """Fold the paper's TeX-style quotes into plain double quotes."""
    return text.replace("``", '"').replace("''", '"')


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    length = len(text)
    while position < length:
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(f"cannot tokenize {text[position:]!r}", position)
        kind = str(match.lastgroup)
        tokens.append(_Token(kind, match.group(0), position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token | None:
        index = self._pos + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of expression")
        self._pos += 1
        return token

    def _expect(self, value: str) -> _Token:
        token = self._next()
        if token.value != value:
            raise QuerySyntaxError(
                f"expected {value!r}, found {token.value!r}", token.position
            )
        return token

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # -- grammar ----------------------------------------------------------

    def parse_expression(self) -> SNode:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("empty expression")
        if token.kind == "word" and token.value.lower() == "list":
            following = self._peek(1)
            if following is not None and following.value == "(":
                return self._parse_list()
        if token.value == "(":
            return self._parse_group()
        # Bare l-string (possibly language-qualified) with implicit Any.
        return STerm(self._parse_lstring())

    def _parse_list(self) -> SList:
        self._next()  # "list"
        self._expect("(")
        children: list[SNode] = []
        while True:
            token = self._peek()
            if token is None:
                raise QuerySyntaxError("unterminated list(...)")
            if token.value == ")":
                self._next()
                return SList(tuple(children))
            children.append(self.parse_expression())

    def _parse_group(self) -> SNode:
        open_token = self._expect("(")
        if self._group_is_compound():
            node = self._parse_compound(open_token)
        else:
            node = self._parse_term_body()
            self._expect(")")
        return node

    def _group_is_compound(self) -> bool:
        """Look ahead (after a consumed '(') for a depth-1 operator."""
        depth = 1
        offset = 0
        while True:
            token = self._peek(offset)
            if token is None:
                return False
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth -= 1
                if depth == 0:
                    return False
            elif depth == 1:
                if token.kind == "prox":
                    return True
                if token.kind == "word" and token.value.lower() in _OPERATORS:
                    return True
            offset += 1

    def _parse_compound(self, open_token: _Token) -> SNode:
        result = self.parse_expression()
        saw_operator = False
        while True:
            token = self._peek()
            if token is None:
                raise QuerySyntaxError("unterminated expression", open_token.position)
            if token.value == ")":
                self._next()
                if not saw_operator:
                    raise QuerySyntaxError(
                        "parenthesized group without operator", open_token.position
                    )
                return result
            saw_operator = True
            if token.kind == "prox":
                self._next()
                match = _PROX_RE.fullmatch(token.value)
                assert match is not None
                distance = int(match.group(1))
                ordered = match.group(2).upper() == "T"
                right = self.parse_expression()
                result = SProx(
                    _require_term(result, token),
                    _require_term(right, token),
                    distance,
                    ordered,
                )
                continue
            operator = token.value.lower()
            if operator not in _OPERATORS:
                raise QuerySyntaxError(
                    f"expected an operator, found {token.value!r}", token.position
                )
            self._next()
            right = self.parse_expression()
            result = _combine(operator, result, right)

    def _parse_term_body(self) -> STerm:
        field: FieldRef | None = None
        modifiers: list[ModifierRef] = []

        while True:
            token = self._peek()
            if token is None:
                raise QuerySyntaxError("unterminated term")
            if token.kind == "string":
                break
            if token.value == "[":
                if self._bracket_is_lstring():
                    break
                field = self._parse_bracketed_field(allow_existing=field)
                continue
            if token.value == "{":
                modifiers.append(self._parse_braced_modifier())
                continue
            if token.kind == "word":
                word = token.value
                if word.lower() in _MODIFIER_WORDS:
                    self._next()
                    modifiers.append(ModifierRef(word.lower()))
                else:
                    if field is not None:
                        raise QuerySyntaxError(
                            f"term has two fields: {field.name!r} and {word!r}",
                            token.position,
                        )
                    if modifiers:
                        raise QuerySyntaxError(
                            f"field {word!r} must precede modifiers", token.position
                        )
                    self._next()
                    field = FieldRef.parse(word)
                continue
            raise QuerySyntaxError(
                f"unexpected token in term: {token.value!r}", token.position
            )

        lstring = self._parse_lstring()
        weight = self._parse_optional_weight()
        return STerm(lstring, field, tuple(modifiers), weight)

    def _bracket_is_lstring(self) -> bool:
        """At '[': is this ``[lang "str"]`` (vs ``[set field]``)?"""
        second = self._peek(2)
        return second is not None and second.kind == "string"

    def _parse_bracketed_field(self, allow_existing: FieldRef | None) -> FieldRef:
        open_token = self._expect("[")
        if allow_existing is not None:
            raise QuerySyntaxError("term has two fields", open_token.position)
        set_token = self._next()
        name_token = self._next()
        if set_token.kind != "word" or name_token.kind != "word":
            raise QuerySyntaxError(
                "field reference needs set and name", open_token.position
            )
        self._expect("]")
        return FieldRef.parse(f"[{set_token.value} {name_token.value}]")

    def _parse_braced_modifier(self) -> ModifierRef:
        open_token = self._expect("{")
        set_token = self._next()
        name_token = self._next()
        if set_token.kind != "word" or name_token.kind != "word":
            raise QuerySyntaxError(
                "modifier reference needs set and name", open_token.position
            )
        self._expect("}")
        return ModifierRef(name_token.value.lower(), set_token.value.lower())

    def _parse_lstring(self) -> LString:
        token = self._next()
        if token.kind == "string":
            return LString(_unescape(token.value))
        if token.value == "[":
            tag_token = self._next()
            string_token = self._next()
            if tag_token.kind != "word" or string_token.kind != "string":
                raise QuerySyntaxError(
                    "language-qualified string needs a tag and a string",
                    token.position,
                )
            self._expect("]")
            return LString(
                _unescape(string_token.value), parse_language_tag(tag_token.value)
            )
        raise QuerySyntaxError(
            f"expected a string, found {token.value!r}", token.position
        )

    def _parse_optional_weight(self) -> float:
        token = self._peek()
        if token is not None and token.kind == "word" and _NUMBER_RE.match(token.value):
            self._next()
            return float(token.value)
        return 1.0


def _unescape(quoted: str) -> str:
    body = quoted[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def _require_term(node: SNode, token: _Token) -> STerm:
    if not isinstance(node, STerm):
        raise QuerySyntaxError("prox operands must be atomic terms", token.position)
    return node


def _combine(operator: str, left: SNode, right: SNode) -> SNode:
    """Left-associative folding; same-operator chains stay n-ary."""
    if operator == "and":
        if isinstance(left, SAnd):
            return SAnd(left.children + (right,))
        return SAnd((left, right))
    if operator == "or":
        if isinstance(left, SOr):
            return SOr(left.children + (right,))
        return SOr((left, right))
    return SAndNot(left, right)


def parse_expression(text: str) -> SNode | None:
    """Parse a filter or ranking expression; empty text yields None.

    Raises:
        QuerySyntaxError: on malformed input or trailing tokens.
    """
    normalized = _normalize_quotes(text).strip()
    if not normalized:
        return None
    parser = _Parser(_tokenize(normalized))
    node = parser.parse_expression()
    if not parser.at_end():
        leftover = parser._peek()
        assert leftover is not None
        raise QuerySyntaxError(
            f"trailing input after expression: {leftover.value!r}", leftover.position
        )
    return node


def parse_filter_expression(text: str) -> SNode | None:
    """Parse a filter expression (Boolean component)."""
    return parse_expression(text)


def parse_ranking_expression(text: str) -> SNode | None:
    """Parse a ranking expression (vector-space component)."""
    return parse_expression(text)
