"""Attribute sets: the Basic-1 fields and modifiers, exactly as tabled.

Section 4.1.1 of the paper defines the "Basic-1" attribute set — the
recommended fields and modifiers, derived from GILS/Z39.50 Bib-1 with a
few new additions.  This module transcribes both tables verbatim
(including the Required?/New? columns), provides the attribute-set
registry that lets queries mix sets, and parses/serializes the
qualified references used in metadata objects: ``[basic-1 author]`` for
fields and ``{basic-1 phonetics}`` for modifiers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.starts.errors import QuerySyntaxError

__all__ = [
    "FieldSpec",
    "ModifierSpec",
    "AttributeSet",
    "BASIC1",
    "ATTRIBUTE_SETS",
    "FieldRef",
    "ModifierRef",
    "canonical_field_name",
    "COMPARISON_MODIFIERS",
]

#: The six comparison modifiers (``=`` is the default when none given).
COMPARISON_MODIFIERS = ("<", "<=", "=", ">=", ">", "!=")


@dataclass(frozen=True, slots=True)
class FieldSpec:
    """One row of the paper's field table."""

    name: str
    required: bool
    new: bool


@dataclass(frozen=True, slots=True)
class ModifierSpec:
    """One row of the paper's modifier table."""

    name: str
    default: str
    new: bool


class AttributeSet:
    """A named set of field and modifier specifications."""

    def __init__(
        self,
        name: str,
        fields: list[FieldSpec],
        modifiers: list[ModifierSpec],
    ) -> None:
        self.name = name
        self.fields = {spec.name: spec for spec in fields}
        self.modifiers = {spec.name: spec for spec in modifiers}

    def field(self, name: str) -> FieldSpec | None:
        return self.fields.get(canonical_field_name(name))

    def modifier(self, name: str) -> ModifierSpec | None:
        return self.modifiers.get(name.lower())

    def required_fields(self) -> list[str]:
        return [name for name, spec in self.fields.items() if spec.required]

    def optional_fields(self) -> list[str]:
        return [name for name, spec in self.fields.items() if not spec.required]

    def __repr__(self) -> str:
        return (
            f"AttributeSet({self.name!r}, {len(self.fields)} fields, "
            f"{len(self.modifiers)} modifiers)"
        )


_FIELD_ALIASES = {
    # The paper's prose uses "date-last-modified" while the table says
    # "Date/time-last-modified"; both resolve to the canonical name.
    "date-last-modified": "date/time-last-modified",
    "datetime-last-modified": "date/time-last-modified",
}


def canonical_field_name(name: str) -> str:
    """Canonical lowercase form of a field name, resolving aliases."""
    lowered = name.lower()
    return _FIELD_ALIASES.get(lowered, lowered)


#: The Basic-1 field table, Section 4.1.1 (Required? / New? columns).
_BASIC1_FIELDS = [
    FieldSpec("title", required=True, new=False),
    FieldSpec("author", required=False, new=False),
    FieldSpec("body-of-text", required=False, new=False),
    FieldSpec("document-text", required=False, new=True),
    FieldSpec("date/time-last-modified", required=True, new=False),
    FieldSpec("any", required=True, new=False),
    FieldSpec("linkage", required=True, new=False),
    FieldSpec("linkage-type", required=False, new=False),
    FieldSpec("cross-reference-linkage", required=False, new=False),
    FieldSpec("languages", required=False, new=False),
    FieldSpec("free-form-text", required=False, new=True),
]

#: The Basic-1 modifier table, Section 4.1.1 (Default / New? columns).
_BASIC1_MODIFIERS = [
    ModifierSpec("<", default="=", new=False),
    ModifierSpec("<=", default="=", new=False),
    ModifierSpec("=", default="=", new=False),
    ModifierSpec(">=", default="=", new=False),
    ModifierSpec(">", default="=", new=False),
    ModifierSpec("!=", default="=", new=False),
    ModifierSpec("phonetic", default="no soundex", new=False),
    ModifierSpec("stem", default="no stemming", new=False),
    ModifierSpec("thesaurus", default="no thesaurus expansion", new=True),
    ModifierSpec("right-truncation", default="no right truncation", new=False),
    ModifierSpec("left-truncation", default="no left truncation", new=False),
    ModifierSpec("case-sensitive", default="case insensitive", new=True),
]

BASIC1 = AttributeSet("basic-1", _BASIC1_FIELDS, _BASIC1_MODIFIERS)

#: Registry of known attribute sets; queries may reference any of them.
ATTRIBUTE_SETS: dict[str, AttributeSet] = {BASIC1.name: BASIC1}


def register_attribute_set(attribute_set: AttributeSet) -> None:
    """Register a domain-specific attribute set (the paper's [1] allows
    sets beyond Basic-1, e.g. for other document domains)."""
    ATTRIBUTE_SETS[attribute_set.name] = attribute_set


@dataclass(frozen=True, slots=True)
class FieldRef:
    """A possibly set-qualified field reference, e.g. ``[basic-1 author]``.

    Unqualified references carry ``attribute_set=None`` and resolve
    against the query's default attribute set.
    """

    name: str
    attribute_set: str | None = None

    def serialize(self) -> str:
        if self.attribute_set is None:
            return self.name
        return f"[{self.attribute_set} {self.name}]"

    @classmethod
    def parse(cls, text: str) -> "FieldRef":
        text = text.strip()
        if text.startswith("["):
            if not text.endswith("]"):
                raise QuerySyntaxError(f"unterminated field reference: {text!r}")
            inner = text[1:-1].split()
            if len(inner) != 2:
                raise QuerySyntaxError(f"field reference needs set and name: {text!r}")
            return cls(canonical_field_name(inner[1]), inner[0].lower())
        return cls(canonical_field_name(text))


@dataclass(frozen=True, slots=True)
class ModifierRef:
    """A possibly set-qualified modifier reference, e.g. ``{basic-1 stem}``."""

    name: str
    attribute_set: str | None = None

    def serialize(self) -> str:
        if self.attribute_set is None:
            return self.name
        return f"{{{self.attribute_set} {self.name}}}"

    @classmethod
    def parse(cls, text: str) -> "ModifierRef":
        text = text.strip()
        if text.startswith("{"):
            if not text.endswith("}"):
                raise QuerySyntaxError(f"unterminated modifier reference: {text!r}")
            inner = text[1:-1].split()
            if len(inner) != 2:
                raise QuerySyntaxError(f"modifier reference needs set and name: {text!r}")
            return cls(inner[1].lower(), inner[0].lower())
        return cls(text.lower())
