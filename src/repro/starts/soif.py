"""SOIF: the byte-counted attribute-value encoding STARTS examples use.

The paper encodes STARTS content in Harvest's SOIF "just to illustrate
how our content could be delivered" — the protocol allows other
encodings, but SOIF is the one the specification's examples are written
in, so it is the reproduction's wire format.  A SOIF object looks like:

.. code-block:: text

    @SQuery{
    Version{10}: STARTS 1.0
    FilterExpression{48}: ((author "Ullman") and
    (title stem "databases"))
    }

``{48}`` is the *byte* length of the value (UTF-8), "to facilitate
parsing": values may span lines and contain any characters, and the
reader consumes exactly the declared number of bytes.  Attribute order
is significant and names may repeat (the content-summary object repeats
``Field``/``Language``/``TermDocFreq`` sections), so the object model
is an ordered list of (name, value) pairs with dict-style helpers.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.starts.errors import SoifSyntaxError

__all__ = ["SoifObject", "dump_soif", "parse_soif", "parse_soif_stream"]


class SoifObject:
    """An ordered multi-map with a template type (e.g. ``SQuery``)."""

    def __init__(
        self,
        template: str,
        attributes: Iterable[tuple[str, str]] = (),
    ) -> None:
        self.template = template
        self._pairs: list[tuple[str, str]] = list(attributes)

    # -- building -------------------------------------------------------

    def add(self, name: str, value: str) -> "SoifObject":
        """Append an attribute; returns self for chaining."""
        self._pairs.append((name, value))
        return self

    # -- reading ----------------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """First value for ``name`` (case-insensitive), or ``default``."""
        wanted = name.lower()
        for key, value in self._pairs:
            if key.lower() == wanted:
                return value
        return default

    def __getitem__(self, name: str) -> str:
        value = self.get(name)
        if value is None:
            raise KeyError(name)
        return value

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def get_all(self, name: str) -> list[str]:
        """All values for ``name``, in order."""
        wanted = name.lower()
        return [value for key, value in self._pairs if key.lower() == wanted]

    def pairs(self) -> list[tuple[str, str]]:
        """The (name, value) pairs in wire order."""
        return list(self._pairs)

    def names(self) -> list[str]:
        return [name for name, _ in self._pairs]

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SoifObject):
            return NotImplemented
        return self.template == other.template and self._pairs == other._pairs

    def __repr__(self) -> str:
        return f"SoifObject({self.template!r}, {len(self._pairs)} attributes)"

    # -- serialization -------------------------------------------------------

    def dump(self) -> str:
        """Render to SOIF text with correct byte counts."""
        lines = [f"@{self.template}{{"]
        for name, value in self._pairs:
            nbytes = len(value.encode("utf-8"))
            lines.append(f"{name}{{{nbytes}}}: {value}")
        lines.append("}")
        return "\n".join(lines) + "\n"


def dump_soif(objects: Iterable[SoifObject]) -> str:
    """Serialize several SOIF objects as one stream."""
    return "\n".join(obj.dump() for obj in objects)


class _Reader:
    """Byte-level SOIF reader (byte counts refer to UTF-8 bytes)."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def at_end(self) -> bool:
        self._skip_whitespace()
        return self._pos >= len(self._data)

    def _skip_whitespace(self) -> None:
        while self._pos < len(self._data) and self._data[self._pos : self._pos + 1].isspace():
            self._pos += 1

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise SoifSyntaxError("truncated SOIF value")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def _take_until(self, delimiter: bytes) -> bytes:
        index = self._data.find(delimiter, self._pos)
        if index < 0:
            raise SoifSyntaxError(f"missing {delimiter!r} in SOIF input")
        chunk = self._data[self._pos : index]
        self._pos = index + len(delimiter)
        return chunk

    def read_object(self) -> SoifObject:
        self._skip_whitespace()
        if self._take(1) != b"@":
            raise SoifSyntaxError("SOIF object must start with '@'")
        template = self._take_until(b"{").strip().decode("utf-8")
        if not template:
            raise SoifSyntaxError("empty SOIF template name")
        pairs: list[tuple[str, str]] = []
        while True:
            self._skip_whitespace()
            if self._pos >= len(self._data):
                raise SoifSyntaxError(f"unterminated SOIF object @{template}")
            if self._data[self._pos : self._pos + 1] == b"}":
                self._pos += 1
                return SoifObject(template, pairs)
            name = self._take_until(b"{").strip().decode("utf-8")
            count_text = self._take_until(b"}").strip().decode("utf-8")
            try:
                count = int(count_text)
            except ValueError:
                raise SoifSyntaxError(
                    f"bad byte count {count_text!r} for attribute {name!r}"
                ) from None
            if count < 0:
                raise SoifSyntaxError(
                    f"negative byte count for attribute {name!r}"
                )
            if self._take(1) != b":":
                raise SoifSyntaxError(f"expected ':' after {name}{{{count}}}")
            # Exactly one space conventionally follows the colon; accept
            # its absence for robustness.
            if self._data[self._pos : self._pos + 1] == b" ":
                self._pos += 1
            value = self._take(count).decode("utf-8")
            pairs.append((name, value))


def parse_soif(text: str | bytes) -> SoifObject:
    """Parse exactly one SOIF object.

    Raises:
        SoifSyntaxError: on malformed input or trailing non-whitespace.
    """
    data = text.encode("utf-8") if isinstance(text, str) else text
    reader = _Reader(data)
    obj = reader.read_object()
    if not reader.at_end():
        raise SoifSyntaxError("trailing data after SOIF object")
    return obj


def parse_soif_stream(text: str | bytes) -> list[SoifObject]:
    """Parse a stream of SOIF objects (e.g. SQResults + SQRDocuments)."""
    data = text.encode("utf-8") if isinstance(text, str) else text
    reader = _Reader(data)
    objects: list[SoifObject] = []
    while not reader.at_end():
        objects.append(reader.read_object())
    return objects
