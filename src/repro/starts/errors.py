"""Exception hierarchy for the STARTS protocol implementation.

The protocol itself deliberately has *no error reporting* (Section 4 of
the paper: sources silently execute the parts of a query they support
and return the "actual query").  These exceptions therefore never cross
the wire; they are local programming errors — malformed queries handed
to the parser, malformed SOIF blobs, violated protocol invariants.
"""

from __future__ import annotations

__all__ = [
    "StartsError",
    "QuerySyntaxError",
    "SoifSyntaxError",
    "ProtocolError",
    "UnknownSourceError",
]


class StartsError(Exception):
    """Base class for all STARTS reproduction errors."""


class QuerySyntaxError(StartsError):
    """A filter/ranking expression does not parse.

    Attributes:
        position: character offset where parsing failed, when known.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class SoifSyntaxError(StartsError):
    """A SOIF stream is malformed (bad framing, byte counts, braces)."""


class ProtocolError(StartsError):
    """A STARTS object violates a protocol invariant.

    Examples: a query with neither filter nor ranking expression sent to
    a source, a term weight outside [0, 1], a results object whose
    document count disagrees with its document list.
    """


class UnknownSourceError(StartsError):
    """A query names a source the resource does not contain."""
