"""Abstract syntax of STARTS filter and ranking expressions.

The grammar (Section 4.1.1):

* *Atomic terms* — an l-string adorned with at most one field and zero
  or more modifiers, e.g. ``(title stem "databases")``.  In ranking
  expressions a term may carry a weight in [0, 1] (Example 5).
* *Filter expressions* — terms combined with ``and``, ``or``,
  ``and-not`` and ``prox`` (a simple subset of Z39.50-1995 type-101
  queries).  There is deliberately no ``not``: every query keeps a
  positive component.
* *Ranking expressions* — the same operators plus ``list``, the flat
  grouping that is the most common vector-space query form.

Nodes are frozen dataclasses; ``serialize()`` renders the exact
query-language syntax used in the paper's examples, and the parser in
:mod:`repro.starts.parser` is its inverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.starts.attributes import FieldRef, ModifierRef
from repro.starts.errors import ProtocolError
from repro.starts.lstring import LString

__all__ = ["SNode", "STerm", "SAnd", "SOr", "SAndNot", "SProx", "SList"]


class SNode:
    """Base class of all expression nodes."""

    def serialize(self) -> str:
        raise NotImplementedError

    def terms(self) -> list["STerm"]:
        """All atomic terms, left to right."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.serialize()


@dataclass(frozen=True, slots=True)
class STerm(SNode):
    """An atomic term: l-string + optional field + modifiers + weight.

    Attributes:
        lstring: the (possibly language-qualified) string.
        field: the field reference; None means the ``Any`` field.
        modifiers: modifier references, order preserved as written.
        weight: relative importance in ranking expressions; must lie in
            (0, 1].  Filter terms always have weight 1.
    """

    lstring: LString
    field: FieldRef | None = None
    modifiers: tuple[ModifierRef, ...] = ()
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise ProtocolError(f"term weight must be in (0, 1]: {self.weight}")

    def terms(self) -> list["STerm"]:
        return [self]

    @property
    def field_name(self) -> str:
        """The effective field name (``any`` when no field given)."""
        return self.field.name if self.field is not None else "any"

    def modifier_names(self) -> tuple[str, ...]:
        return tuple(modifier.name for modifier in self.modifiers)

    def comparison_modifier_present(self) -> bool:
        """True if the term carries one of <, <=, =, >=, >, !=."""
        comparison = {"<", "<=", "=", ">=", ">", "!="}
        return any(modifier.name in comparison for modifier in self.modifiers)

    def serialize(self) -> str:
        parts: list[str] = []
        if self.field is not None:
            parts.append(self.field.serialize())
        parts.extend(modifier.serialize() for modifier in self.modifiers)
        parts.append(self.lstring.serialize())
        if self.weight != 1.0:
            parts.append(_format_weight(self.weight))
        if self.field is None and not self.modifiers and self.weight == 1.0:
            # A bare l-string needs no parentheses (Example 4's R2).
            return self.lstring.serialize()
        return "(" + " ".join(parts) + ")"


def _format_weight(weight: float) -> str:
    text = f"{weight:.4f}".rstrip("0")
    return text + "0" if text.endswith(".") else text


class _Nary(SNode):
    """Shared behaviour of and/or: n-ary, serialized infix."""

    operator: str
    children: tuple[SNode, ...]

    def terms(self) -> list[STerm]:
        found: list[STerm] = []
        for child in self.children:
            found.extend(child.terms())
        return found

    def serialize(self) -> str:
        inner = f" {self.operator} ".join(_child_text(c) for c in self.children)
        return f"({inner})"


def _child_text(node: SNode) -> str:
    text = node.serialize()
    # Bare l-strings must be wrapped when used as boolean operands so
    # the serialization re-parses unambiguously.
    if isinstance(node, STerm) and not text.startswith("("):
        return f"({text})"
    return text


def _flattened(children: tuple[SNode, ...], node_type: type) -> tuple[SNode, ...]:
    """Inline directly-nested same-operator children (associativity).

    ``(a and (b and c))`` and ``((a and b) and c)`` denote the same
    query; canonicalizing at construction makes serialization and
    parsing exact inverses.
    """
    flat: list[SNode] = []
    for child in children:
        if isinstance(child, node_type):
            flat.extend(child.children)
        else:
            flat.append(child)
    return tuple(flat)


@dataclass(frozen=True, slots=True)
class SAnd(_Nary):
    """``(e1 and e2 [and e3 ...])``; nested ands flatten."""

    children: tuple[SNode, ...]
    operator: str = dataclass_field(default="and", init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", _flattened(self.children, SAnd))
        if len(self.children) < 2:
            raise ProtocolError("and needs at least two operands")


@dataclass(frozen=True, slots=True)
class SOr(_Nary):
    """``(e1 or e2 [or e3 ...])``; nested ors flatten."""

    children: tuple[SNode, ...]
    operator: str = dataclass_field(default="or", init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", _flattened(self.children, SOr))
        if len(self.children) < 2:
            raise ProtocolError("or needs at least two operands")


@dataclass(frozen=True, slots=True)
class SAndNot(SNode):
    """``(positive and-not negative)`` — the only negation STARTS allows."""

    positive: SNode
    negative: SNode

    def terms(self) -> list[STerm]:
        return self.positive.terms() + self.negative.terms()

    def serialize(self) -> str:
        return f"({_child_text(self.positive)} and-not {_child_text(self.negative)})"


@dataclass(frozen=True, slots=True)
class SProx(SNode):
    """``(t1 prox[distance,order] t2)`` — Example 3.

    ``order`` is ``T`` when t1 must precede t2.  Distance counts the
    words *between* the terms; ``prox[0,T]`` is adjacency.
    """

    left: STerm
    right: STerm
    distance: int = 0
    ordered: bool = True

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ProtocolError("prox distance must be non-negative")

    def terms(self) -> list[STerm]:
        return [self.left, self.right]

    def serialize(self) -> str:
        flag = "T" if self.ordered else "F"
        return (
            f"({_child_text(self.left)} prox[{self.distance},{flag}] "
            f"{_child_text(self.right)})"
        )


@dataclass(frozen=True, slots=True)
class SList(SNode):
    """``list(item item ...)`` — the flat vector-space grouping."""

    children: tuple[SNode, ...] = ()

    def terms(self) -> list[STerm]:
        found: list[STerm] = []
        for child in self.children:
            found.extend(child.terms())
        return found

    def serialize(self) -> str:
        return "list(" + " ".join(child.serialize() for child in self.children) + ")"
