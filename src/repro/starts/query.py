"""SQuery: a complete STARTS query (Section 4.1.2, Example 6).

Beyond the filter and ranking expressions, a query carries:

* whether the source should drop stop words (``DropStopWords``),
* the default attribute set and language (notational convenience),
* additional *local* sources at the same resource to evaluate against
  (so the resource can eliminate duplicates — Figure 1),
* the answer specification: which fields to return (default Title and
  Linkage), the sort order (default: score, descending), the minimum
  acceptable score and the maximum number of documents.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.starts.ast import SNode
from repro.starts.errors import ProtocolError, SoifSyntaxError
from repro.starts.parser import parse_expression
from repro.starts.soif import SoifObject

__all__ = ["SortKey", "SQuery", "PROTOCOL_VERSION", "SCORE_SORT_FIELD"]

PROTOCOL_VERSION = "STARTS 1.0"

#: Pseudo-field used in sort specifications for the document score.
SCORE_SORT_FIELD = "score"

#: Default answer fields per §4.1.2 (linkage is *always* returned too).
DEFAULT_ANSWER_FIELDS = ("title",)


@dataclass(frozen=True, slots=True)
class SortKey:
    """One sort criterion: a field and a direction.

    ``descending=True`` renders as ``d``, ascending as ``a``.  The
    default query sort is the document score, descending.
    """

    field: str
    descending: bool = True

    def serialize(self) -> str:
        return f"{self.field} {'d' if self.descending else 'a'}"

    @classmethod
    def parse(cls, text: str) -> "SortKey":
        parts = text.split()
        if len(parts) == 1:
            return cls(parts[0])
        if len(parts) == 2 and parts[1] in ("a", "d"):
            return cls(parts[0], parts[1] == "d")
        raise SoifSyntaxError(f"bad sort key: {text!r}")


@dataclass(frozen=True)
class SQuery:
    """An immutable STARTS query.

    Either expression may be None, but a query with neither is invalid
    (Section 4.1.1 allows one to be absent, not both).
    """

    filter_expression: SNode | None = None
    ranking_expression: SNode | None = None
    drop_stop_words: bool = True
    default_attribute_set: str = "basic-1"
    default_language: str = "en-US"
    sources: tuple[str, ...] = ()
    answer_fields: tuple[str, ...] = DEFAULT_ANSWER_FIELDS
    sort_keys: tuple[SortKey, ...] = (SortKey(SCORE_SORT_FIELD, descending=True),)
    min_document_score: float = 0.0
    max_number_documents: int = 20
    version: str = PROTOCOL_VERSION

    def validate(self) -> None:
        """Check protocol invariants; raises :class:`ProtocolError`."""
        if self.filter_expression is None and self.ranking_expression is None:
            raise ProtocolError("query needs a filter or a ranking expression")
        if self.max_number_documents < 0:
            raise ProtocolError("MaxNumberDocuments must be non-negative")

    def with_sources(self, *sources: str) -> "SQuery":
        """A copy that asks for evaluation at additional local sources."""
        return replace(self, sources=tuple(sources))

    def expression_terms(self):
        """All atomic terms across both expressions (for translation)."""
        terms = []
        if self.filter_expression is not None:
            terms.extend(self.filter_expression.terms())
        if self.ranking_expression is not None:
            terms.extend(self.ranking_expression.terms())
        return terms

    # -- SOIF encoding (Example 6) ---------------------------------------

    def to_soif(self) -> SoifObject:
        obj = SoifObject("SQuery")
        obj.add("Version", self.version)
        if self.filter_expression is not None:
            obj.add("FilterExpression", self.filter_expression.serialize())
        if self.ranking_expression is not None:
            obj.add("RankingExpression", self.ranking_expression.serialize())
        obj.add("DropStopWords", "T" if self.drop_stop_words else "F")
        obj.add("DefaultAttributeSet", self.default_attribute_set)
        obj.add("DefaultLanguage", self.default_language)
        if self.sources:
            obj.add("Sources", " ".join(self.sources))
        obj.add("AnswerFields", " ".join(self.answer_fields))
        obj.add("SortByFields", ", ".join(key.serialize() for key in self.sort_keys))
        obj.add("MinDocumentScore", _format_score(self.min_document_score))
        obj.add("MaxNumberDocuments", str(self.max_number_documents))
        return obj

    @classmethod
    def from_soif(cls, obj: SoifObject) -> "SQuery":
        if obj.template != "SQuery":
            raise SoifSyntaxError(f"expected @SQuery, got @{obj.template}")
        filter_text = obj.get("FilterExpression", "") or ""
        ranking_text = obj.get("RankingExpression", "") or ""
        sort_text = obj.get("SortByFields")
        if sort_text:
            sort_keys = tuple(
                SortKey.parse(piece.strip())
                for piece in sort_text.split(",")
                if piece.strip()
            )
        else:
            sort_keys = (SortKey(SCORE_SORT_FIELD, descending=True),)
        answer_text = obj.get("AnswerFields")
        answer_fields = (
            tuple(answer_text.split()) if answer_text else DEFAULT_ANSWER_FIELDS
        )
        return cls(
            filter_expression=parse_expression(filter_text),
            ranking_expression=parse_expression(ranking_text),
            drop_stop_words=_parse_flag(obj.get("DropStopWords", "T") or "T"),
            default_attribute_set=obj.get("DefaultAttributeSet", "basic-1") or "basic-1",
            default_language=obj.get("DefaultLanguage", "en-US") or "en-US",
            sources=tuple((obj.get("Sources") or "").split()),
            answer_fields=answer_fields,
            sort_keys=sort_keys,
            min_document_score=float(obj.get("MinDocumentScore", "0") or 0),
            max_number_documents=int(obj.get("MaxNumberDocuments", "20") or 20),
            version=obj.get("Version", PROTOCOL_VERSION) or PROTOCOL_VERSION,
        )


def _format_score(score: float) -> str:
    if score == int(score):
        return f"{score:.1f}"
    return f"{score:g}"


def _parse_flag(text: str) -> bool:
    value = text.strip().upper()
    if value in ("T", "TRUE", "1"):
        return True
    if value in ("F", "FALSE", "0"):
        return False
    raise SoifSyntaxError(f"bad boolean flag: {text!r}")
