"""l-strings: the multilingual building blocks of STARTS queries.

Section 4.1.1: "an l-string is either a string (e.g. ``"Ullman"``), or a
string qualified with its associated language and, optionally, with its
associated country.  For example, ``[en-US "behavior"]`` is an l-string,
meaning that the string 'behavior' represents a word in American
English."  Strings are Unicode encoded as UTF-8, whose key property —
called out in the paper — is that plain English text is byte-identical
to its ASCII form, making English/ASCII the invisible default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.starts.errors import QuerySyntaxError
from repro.text.langtags import DEFAULT_LANGUAGE, LanguageTag, parse_language_tag

__all__ = ["LString", "parse_lstring"]


@dataclass(frozen=True, slots=True)
class LString:
    """A query string with an optional explicit language qualification.

    Attributes:
        text: the Unicode string itself.
        language: the RFC-1766 tag, or None when the string relies on
            the protocol default (English).
    """

    text: str
    language: LanguageTag | None = None

    @property
    def effective_language(self) -> LanguageTag:
        """The language to interpret the string in (default: English)."""
        return self.language if self.language is not None else DEFAULT_LANGUAGE

    def is_qualified(self) -> bool:
        return self.language is not None

    def serialize(self) -> str:
        """Render in query-language syntax.

        Unqualified: ``"text"``.  Qualified: ``[en-US "text"]``.
        Embedded double quotes are escaped with a backslash.
        """
        quoted = '"' + self.text.replace("\\", "\\\\").replace('"', '\\"') + '"'
        if self.language is None:
            return quoted
        return f"[{self.language} {quoted}]"

    def encode_utf8(self) -> bytes:
        """The UTF-8 byte encoding of the text (what travels in SOIF)."""
        return self.text.encode("utf-8")

    def __str__(self) -> str:
        return self.serialize()


def parse_lstring(text: str) -> LString:
    """Parse an l-string from its serialized form.

    Accepts ``"word"``, ``word`` (bare, no spaces) and
    ``[en-US "word"]``.  This is a convenience for tests and metadata
    values; full query parsing lives in :mod:`repro.starts.parser`.

    Raises:
        QuerySyntaxError: on malformed input.
    """
    text = text.strip()
    if text.startswith("["):
        if not text.endswith("]"):
            raise QuerySyntaxError(f"unterminated language qualification: {text!r}")
        inner = text[1:-1].strip()
        try:
            tag_part, string_part = inner.split(None, 1)
        except ValueError:
            raise QuerySyntaxError(f"l-string needs a language and a string: {text!r}")
        language = parse_language_tag(tag_part)
        return LString(_unquote(string_part), language)
    return LString(_unquote(text))


def _unquote(text: str) -> str:
    text = text.strip()
    if text.startswith('"'):
        if not text.endswith('"') or len(text) < 2:
            raise QuerySyntaxError(f"unterminated string: {text!r}")
        body = text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    if '"' in text:
        raise QuerySyntaxError(f"stray quote in bare string: {text!r}")
    return text
