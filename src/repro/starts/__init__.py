"""The STARTS protocol: queries, results, metadata, SOIF encoding.

This package is the paper's primary contribution, implemented in full:

* the query language — l-strings (:mod:`~repro.starts.lstring`),
  Basic-1 attributes (:mod:`~repro.starts.attributes`), the expression
  AST (:mod:`~repro.starts.ast`) and its parser
  (:mod:`~repro.starts.parser`);
* complete queries with answer specifications
  (:mod:`~repro.starts.query`);
* query results with actual-query reporting and rank-merging statistics
  (:mod:`~repro.starts.results`);
* source metadata — MBasic-1 attributes, content summaries and resource
  definitions (:mod:`~repro.starts.metadata`);
* the SOIF wire encoding (:mod:`~repro.starts.soif`).
"""

from repro.starts.ast import SAnd, SAndNot, SList, SNode, SOr, SProx, STerm
from repro.starts.attributes import (
    ATTRIBUTE_SETS,
    BASIC1,
    COMPARISON_MODIFIERS,
    AttributeSet,
    FieldRef,
    FieldSpec,
    ModifierRef,
    ModifierSpec,
    canonical_field_name,
)
from repro.starts.errors import (
    ProtocolError,
    QuerySyntaxError,
    SoifSyntaxError,
    StartsError,
    UnknownSourceError,
)
from repro.starts.lstring import LString, parse_lstring
from repro.starts.metadata import (
    MBASIC1_ATTRIBUTES,
    MetaAttributeSpec,
    SContentSummary,
    SMetaAttributes,
    SResource,
    SummaryEntryLine,
    SummarySection,
)
from repro.starts.parser import (
    parse_expression,
    parse_filter_expression,
    parse_ranking_expression,
)
from repro.starts.query import PROTOCOL_VERSION, SortKey, SQuery
from repro.starts.results import SQRDocument, SQResults, TermStats
from repro.starts.soif import SoifObject, dump_soif, parse_soif, parse_soif_stream

__all__ = [
    "SNode",
    "STerm",
    "SAnd",
    "SOr",
    "SAndNot",
    "SProx",
    "SList",
    "ATTRIBUTE_SETS",
    "BASIC1",
    "COMPARISON_MODIFIERS",
    "AttributeSet",
    "FieldRef",
    "FieldSpec",
    "ModifierRef",
    "ModifierSpec",
    "canonical_field_name",
    "StartsError",
    "QuerySyntaxError",
    "SoifSyntaxError",
    "ProtocolError",
    "UnknownSourceError",
    "LString",
    "parse_lstring",
    "MBASIC1_ATTRIBUTES",
    "MetaAttributeSpec",
    "SContentSummary",
    "SMetaAttributes",
    "SResource",
    "SummaryEntryLine",
    "SummarySection",
    "parse_expression",
    "parse_filter_expression",
    "parse_ranking_expression",
    "PROTOCOL_VERSION",
    "SortKey",
    "SQuery",
    "SQRDocument",
    "SQResults",
    "TermStats",
    "SoifObject",
    "dump_soif",
    "parse_soif",
    "parse_soif_stream",
]
