"""Query results: SQResults, SQRDocument and TermStats (Section 4.2).

A result stream starts with one ``@SQResults`` object reporting the
*actual query* the source processed — the protocol's substitute for
error reporting: a source that ignores, say, the ranking expression
says so here — followed by one ``@SQRDocument`` per document.

Each document carries what rank merging needs (Examples 8 and 9):

* ``RawScore`` — the unnormalized score, interpretable only against the
  source's exported ``ScoreRange``;
* ``Sources`` — where the document appears (several, after resource-side
  duplicate elimination);
* ``TermStats`` — per ranking-expression term: term frequency, the
  engine's own term weight, and document frequency;
* ``DocSize`` (KBytes) and ``DocCount`` (tokens).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.starts.ast import SNode, STerm
from repro.starts.errors import ProtocolError, QuerySyntaxError, SoifSyntaxError
from repro.starts.parser import parse_expression
from repro.starts.query import PROTOCOL_VERSION
from repro.starts.soif import SoifObject, parse_soif_stream

__all__ = ["TermStats", "SQRDocument", "SQResults"]

#: Attributes of SQRDocument that are not document fields.
_RESERVED_DOC_ATTRIBUTES = frozenset(
    ("version", "rawscore", "sources", "termstats", "docsize", "doccount")
)


@dataclass(frozen=True, slots=True)
class TermStats:
    """Statistics for one ranking-expression term in one document."""

    term: STerm
    term_frequency: int
    term_weight: float
    document_frequency: int

    def serialize(self) -> str:
        return (
            f"{self.term.serialize()} {self.term_frequency} "
            f"{_format_weight(self.term_weight)} {self.document_frequency}"
        )

    @classmethod
    def parse(cls, line: str) -> "TermStats":
        line = line.strip()
        # The term serialization ends at the last ')' or '"'; the three
        # numbers follow.
        parts = line.rsplit(None, 3)
        if len(parts) != 4:
            raise SoifSyntaxError(f"bad TermStats line: {line!r}")
        term_text, tf_text, weight_text, df_text = parts
        try:
            node = parse_expression(term_text)
            tf, weight, df = int(tf_text), float(weight_text), int(df_text)
        except (QuerySyntaxError, ValueError) as error:
            raise SoifSyntaxError(f"bad TermStats line: {line!r} ({error})") from error
        if not isinstance(node, STerm):
            raise SoifSyntaxError(f"TermStats entry is not a term: {term_text!r}")
        return cls(node, tf, weight, df)


def _format_weight(weight: float) -> str:
    """Shortest representation that round-trips the exact float value.

    The paper prints truncated scores (``0.82``) for readability, but a
    lossy wire encoding would make rank merging depend on print
    precision; ``repr`` keeps client-side and source-side scores
    bit-identical.
    """
    return repr(float(weight))


@dataclass(frozen=True)
class SQRDocument:
    """One document in a query result.

    ``fields`` holds the answer fields the query asked for (title,
    author, ...); ``linkage`` is always present per the protocol.
    """

    linkage: str
    raw_score: float
    sources: tuple[str, ...]
    fields: dict[str, str] = dataclass_field(default_factory=dict)
    term_stats: tuple[TermStats, ...] = ()
    doc_size: int = 1
    doc_count: int = 0
    version: str = PROTOCOL_VERSION

    def get(self, name: str, default: str = "") -> str:
        if name == "linkage":
            return self.linkage
        return self.fields.get(name, default)

    def to_soif(self) -> SoifObject:
        obj = SoifObject("SQRDocument")
        obj.add("Version", self.version)
        obj.add("RawScore", _format_weight(self.raw_score))
        obj.add("Sources", " ".join(self.sources))
        obj.add("linkage", self.linkage)
        for name, value in self.fields.items():
            obj.add(name, value)
        if self.term_stats:
            obj.add(
                "TermStats",
                "\n".join(stats.serialize() for stats in self.term_stats),
            )
        obj.add("DocSize", str(self.doc_size))
        obj.add("DocCount", str(self.doc_count))
        return obj

    @classmethod
    def from_soif(cls, obj: SoifObject) -> "SQRDocument":
        if obj.template != "SQRDocument":
            raise SoifSyntaxError(f"expected @SQRDocument, got @{obj.template}")
        linkage = obj.get("linkage")
        if linkage is None:
            raise SoifSyntaxError("SQRDocument without linkage")
        stats_text = obj.get("TermStats", "") or ""
        term_stats = tuple(
            TermStats.parse(line) for line in stats_text.splitlines() if line.strip()
        )
        fields = {
            name: value
            for name, value in obj.pairs()
            if name.lower() not in _RESERVED_DOC_ATTRIBUTES and name.lower() != "linkage"
        }
        return cls(
            linkage=linkage,
            raw_score=float(obj.get("RawScore", "0") or 0),
            sources=tuple((obj.get("Sources") or "").split()),
            fields=fields,
            term_stats=term_stats,
            doc_size=int(obj.get("DocSize", "1") or 1),
            doc_count=int(obj.get("DocCount", "0") or 0),
            version=obj.get("Version", PROTOCOL_VERSION) or PROTOCOL_VERSION,
        )


@dataclass(frozen=True)
class SQResults:
    """A full query result: header plus documents.

    Attributes:
        sources: the sources that evaluated the query.
        actual_filter_expression / actual_ranking_expression: the query
            the source *actually* processed after dropping unsupported
            parts (Example 7); None where the source processed nothing.
        documents: the SQRDocument list, already sorted per the query's
            sort specification.
    """

    sources: tuple[str, ...]
    actual_filter_expression: SNode | None = None
    actual_ranking_expression: SNode | None = None
    documents: tuple[SQRDocument, ...] = ()
    version: str = PROTOCOL_VERSION

    @property
    def num_doc_soifs(self) -> int:
        return len(self.documents)

    def validate(self) -> None:
        if not self.sources:
            raise ProtocolError("SQResults must name at least one source")

    def to_soif_stream(self) -> str:
        """The wire form: @SQResults then the @SQRDocument series."""
        header = SoifObject("SQResults")
        header.add("Version", self.version)
        header.add("Sources", " ".join(self.sources))
        if self.actual_filter_expression is not None:
            header.add(
                "ActualFilterExpression", self.actual_filter_expression.serialize()
            )
        if self.actual_ranking_expression is not None:
            header.add(
                "ActualRankingExpression", self.actual_ranking_expression.serialize()
            )
        header.add("NumDocSOIFs", str(self.num_doc_soifs))
        parts = [header.dump()]
        parts.extend(document.to_soif().dump() for document in self.documents)
        return "\n".join(parts)

    @classmethod
    def from_soif_stream(cls, text: str | bytes) -> "SQResults":
        objects = parse_soif_stream(text)
        if not objects or objects[0].template != "SQResults":
            raise SoifSyntaxError("result stream must start with @SQResults")
        header = objects[0]
        documents = tuple(SQRDocument.from_soif(obj) for obj in objects[1:])
        declared = header.get("NumDocSOIFs")
        if declared is not None and int(declared) != len(documents):
            raise SoifSyntaxError(
                f"NumDocSOIFs says {declared} but stream has {len(documents)}"
            )
        return cls(
            sources=tuple((header.get("Sources") or "").split()),
            actual_filter_expression=parse_expression(
                header.get("ActualFilterExpression", "") or ""
            ),
            actual_ranking_expression=parse_expression(
                header.get("ActualRankingExpression", "") or ""
            ),
            documents=documents,
            version=header.get("Version", PROTOCOL_VERSION) or PROTOCOL_VERSION,
        )
