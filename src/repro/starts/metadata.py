"""Source metadata: SMetaAttributes, SContentSummary, SResource (§4.3).

Every STARTS source exports two separately-fetchable "blobs":

1. **Metadata attributes** (§4.3.1) — the MBasic-1 attribute set,
   borrowed from Z39.50 Exp-1 and GILS with new additions; tells a
   metasearcher what the source supports (fields, modifiers, legal
   field-modifier combinations, query parts, score range, ranking
   algorithm id, tokenizers, stop words, ...) and where to find its
   content summary.
2. **Content summary** (§4.3.2) — automatically generated partial data
   about the source's contents: the word list with postings counts and
   document frequencies, grouped by field and language, plus the total
   document count.  "Orders of magnitude smaller than the original
   contents" and the raw material of GlOSS-style source selection.

A **resource** (§4.3.3) exports only its source list with the URLs of
each source's metadata attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.starts.attributes import FieldRef, ModifierRef
from repro.starts.errors import SoifSyntaxError
from repro.starts.query import PROTOCOL_VERSION
from repro.starts.soif import SoifObject

__all__ = [
    "MetaAttributeSpec",
    "MBASIC1_ATTRIBUTES",
    "SMetaAttributes",
    "SummaryEntryLine",
    "SummarySection",
    "SContentSummary",
    "SResource",
]


@dataclass(frozen=True, slots=True)
class MetaAttributeSpec:
    """One row of the paper's MBasic-1 metadata-attribute table."""

    name: str
    required: bool
    new: bool


#: The MBasic-1 table (§4.3.1), transcribed verbatim.
MBASIC1_ATTRIBUTES = [
    MetaAttributeSpec("FieldsSupported", required=True, new=True),
    MetaAttributeSpec("ModifiersSupported", required=True, new=True),
    MetaAttributeSpec("FieldModifierCombinations", required=True, new=True),
    MetaAttributeSpec("QueryPartsSupported", required=False, new=True),
    MetaAttributeSpec("ScoreRange", required=True, new=True),
    MetaAttributeSpec("RankingAlgorithmID", required=True, new=True),
    MetaAttributeSpec("TokenizerIDList", required=False, new=True),
    MetaAttributeSpec("SampleDatabaseResults", required=True, new=True),
    MetaAttributeSpec("StopWordList", required=True, new=True),
    MetaAttributeSpec("TurnOffStopWords", required=True, new=True),
    MetaAttributeSpec("SourceLanguages", required=False, new=False),
    MetaAttributeSpec("SourceName", required=False, new=False),
    MetaAttributeSpec("Linkage", required=True, new=False),
    MetaAttributeSpec("ContentSummaryLinkage", required=True, new=True),
    MetaAttributeSpec("DateChanged", required=False, new=False),
    MetaAttributeSpec("DateExpires", required=False, new=False),
    MetaAttributeSpec("Abstract", required=False, new=False),
    MetaAttributeSpec("AccessConstraints", required=False, new=False),
    MetaAttributeSpec("Contact", required=False, new=False),
]


def _serialize_score(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value):
        return f"{value:.1f}"
    return f"{value:g}"


def _parse_score(text: str) -> float:
    lowered = text.strip().lower()
    if lowered in ("+inf", "inf", "+infinity", "infinity"):
        return float("inf")
    if lowered in ("-inf", "-infinity"):
        return float("-inf")
    return float(text)


@dataclass(frozen=True)
class SMetaAttributes:
    """The MBasic-1 metadata-attribute values of one source.

    Attributes mirror the table; see Example 10 for the wire form.
    ``fields_supported`` / ``modifiers_supported`` pair each reference
    with the (possibly empty) list of languages it is supported for.
    ``query_parts_supported`` is ``"R"``, ``"F"`` or ``"RF"``.
    """

    source_id: str
    fields_supported: tuple[tuple[FieldRef, tuple[str, ...]], ...] = ()
    modifiers_supported: tuple[tuple[ModifierRef, tuple[str, ...]], ...] = ()
    field_modifier_combinations: tuple[tuple[FieldRef, ModifierRef], ...] = ()
    query_parts_supported: str = "RF"
    score_range: tuple[float, float] = (0.0, 1.0)
    ranking_algorithm_id: str = ""
    tokenizer_id_list: tuple[tuple[str, str], ...] = ()
    sample_database_results: str = ""
    stop_word_list: tuple[str, ...] = ()
    turn_off_stop_words: bool = True
    source_languages: tuple[str, ...] = ()
    source_name: str = ""
    linkage: str = ""
    content_summary_linkage: str = ""
    date_changed: str = ""
    date_expires: str = ""
    abstract: str = ""
    access_constraints: str = ""
    contact: str = ""
    default_meta_attribute_set: str = "mbasic-1"
    version: str = PROTOCOL_VERSION

    # -- capability checks used by metasearchers ---------------------------

    def supports_field(self, name: str) -> bool:
        return any(ref.name == name for ref, _ in self.fields_supported)

    def supports_modifier(self, name: str) -> bool:
        return any(ref.name == name for ref, _ in self.modifiers_supported)

    def combination_is_legal(self, field_name: str, modifier_name: str) -> bool:
        """Whether (field, modifier) is an allowed pairing at the source.

        Sources list *legal* combinations; an empty list means no
        field+modifier pairing is constrained beyond individual support.
        """
        if not self.field_modifier_combinations:
            return self.supports_field(field_name) and self.supports_modifier(
                modifier_name
            )
        return any(
            ref.name == field_name and modifier.name == modifier_name
            for ref, modifier in self.field_modifier_combinations
        )

    def supports_ranking(self) -> bool:
        return "R" in self.query_parts_supported.upper()

    def supports_filter(self) -> bool:
        return "F" in self.query_parts_supported.upper()

    # -- SOIF encoding (Example 10) ------------------------------------------

    def to_soif(self) -> SoifObject:
        obj = SoifObject("SMetaAttributes")
        obj.add("Version", self.version)
        obj.add("SourceID", self.source_id)
        obj.add("FieldsSupported", _dump_supported(self.fields_supported))
        obj.add("ModifiersSupported", _dump_supported(self.modifiers_supported))
        obj.add(
            "FieldModifierCombinations",
            " ".join(
                f"({ref.serialize()} {modifier.serialize()})"
                for ref, modifier in self.field_modifier_combinations
            ),
        )
        obj.add("QueryPartsSupported", self.query_parts_supported)
        obj.add(
            "ScoreRange",
            f"{_serialize_score(self.score_range[0])} "
            f"{_serialize_score(self.score_range[1])}",
        )
        obj.add("RankingAlgorithmID", self.ranking_algorithm_id)
        if self.tokenizer_id_list:
            obj.add(
                "TokenizerIDList",
                " ".join(f"({tid} {lang})" for tid, lang in self.tokenizer_id_list),
            )
        obj.add("SampleDatabaseResults", self.sample_database_results)
        obj.add("StopWordList", " ".join(self.stop_word_list))
        obj.add("TurnOffStopWords", "T" if self.turn_off_stop_words else "F")
        obj.add("DefaultMetaAttributeSet", self.default_meta_attribute_set)
        if self.source_languages:
            obj.add("source-languages", " ".join(self.source_languages))
        if self.source_name:
            obj.add("source-name", self.source_name)
        obj.add("linkage", self.linkage)
        obj.add("content-summary-linkage", self.content_summary_linkage)
        if self.date_changed:
            obj.add("date-changed", self.date_changed)
        if self.date_expires:
            obj.add("date-expires", self.date_expires)
        if self.abstract:
            obj.add("abstract", self.abstract)
        if self.access_constraints:
            obj.add("access-constraints", self.access_constraints)
        if self.contact:
            obj.add("contact", self.contact)
        return obj

    @classmethod
    def from_soif(cls, obj: SoifObject) -> "SMetaAttributes":
        if obj.template != "SMetaAttributes":
            raise SoifSyntaxError(f"expected @SMetaAttributes, got @{obj.template}")
        score_text = (obj.get("ScoreRange") or "0.0 1.0").split()
        if len(score_text) != 2:
            raise SoifSyntaxError(f"bad ScoreRange: {obj.get('ScoreRange')!r}")
        return cls(
            source_id=obj.get("SourceID", "") or "",
            fields_supported=_parse_supported(obj.get("FieldsSupported", "") or "", FieldRef),
            modifiers_supported=_parse_supported(
                obj.get("ModifiersSupported", "") or "", ModifierRef
            ),
            field_modifier_combinations=_parse_combinations(
                obj.get("FieldModifierCombinations", "") or ""
            ),
            query_parts_supported=obj.get("QueryPartsSupported", "RF") or "RF",
            score_range=(_parse_score(score_text[0]), _parse_score(score_text[1])),
            ranking_algorithm_id=obj.get("RankingAlgorithmID", "") or "",
            tokenizer_id_list=_parse_tokenizers(obj.get("TokenizerIDList", "") or ""),
            sample_database_results=obj.get("SampleDatabaseResults", "") or "",
            stop_word_list=tuple((obj.get("StopWordList") or "").split()),
            turn_off_stop_words=(obj.get("TurnOffStopWords", "T") or "T").upper() == "T",
            source_languages=tuple((obj.get("source-languages") or "").split()),
            source_name=obj.get("source-name", "") or "",
            linkage=obj.get("linkage", "") or "",
            content_summary_linkage=obj.get("content-summary-linkage", "") or "",
            date_changed=obj.get("date-changed", "") or "",
            date_expires=obj.get("date-expires", "") or "",
            abstract=obj.get("abstract", "") or "",
            access_constraints=obj.get("access-constraints", "") or "",
            contact=obj.get("contact", "") or "",
            default_meta_attribute_set=obj.get("DefaultMetaAttributeSet", "mbasic-1")
            or "mbasic-1",
            version=obj.get("Version", PROTOCOL_VERSION) or PROTOCOL_VERSION,
        )


def _dump_supported(entries) -> str:
    parts = []
    for ref, languages in entries:
        text = ref.serialize()
        if languages:
            text += "/" + ",".join(languages)
        parts.append(text)
    return " ".join(parts)


def _split_refs(text: str) -> list[str]:
    """Split ``[a b] {c d} e`` into bracket-balanced chunks."""
    chunks: list[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch in "[{(":
            depth += 1
        elif ch in "]})":
            depth -= 1
        if ch.isspace() and depth == 0:
            if current:
                chunks.append(current)
                current = ""
        else:
            current += ch
    if current:
        chunks.append(current)
    return chunks


def _parse_supported(text: str, ref_class):
    """Parse ``[set name]`` / ``{set name}`` refs with ``/lang,lang`` suffixes.

    The language suffix is only recognized *after* a closing bracket, so
    field names containing slashes (``date/time-last-modified``) parse
    correctly; bare (unqualified) refs never take a language list.
    """
    entries = []
    for chunk in _split_refs(text):
        closing = max(chunk.rfind("]"), chunk.rfind("}"))
        languages: tuple[str, ...] = ()
        ref_text = chunk
        if closing >= 0 and closing + 1 < len(chunk):
            suffix = chunk[closing + 1 :]
            if suffix.startswith("/"):
                languages = tuple(suffix[1:].split(","))
                ref_text = chunk[: closing + 1]
        entries.append((ref_class.parse(ref_text), languages))
    return tuple(entries)


def _parse_combinations(text: str) -> tuple[tuple[FieldRef, ModifierRef], ...]:
    combos = []
    for chunk in _split_refs(text):
        if not (chunk.startswith("(") and chunk.endswith(")")):
            raise SoifSyntaxError(f"bad field-modifier combination: {chunk!r}")
        inner = _split_refs(chunk[1:-1])
        if len(inner) != 2:
            raise SoifSyntaxError(f"bad field-modifier combination: {chunk!r}")
        combos.append((FieldRef.parse(inner[0]), ModifierRef.parse(inner[1])))
    return tuple(combos)


def _parse_tokenizers(text: str) -> tuple[tuple[str, str], ...]:
    tokenizers = []
    for chunk in _split_refs(text):
        if not (chunk.startswith("(") and chunk.endswith(")")):
            raise SoifSyntaxError(f"bad tokenizer entry: {chunk!r}")
        inner = chunk[1:-1].split()
        if len(inner) != 2:
            raise SoifSyntaxError(f"bad tokenizer entry: {chunk!r}")
        tokenizers.append((inner[0], inner[1]))
    return tuple(tokenizers)


@dataclass(frozen=True, slots=True)
class SummaryEntryLine:
    """One word's statistics inside a content-summary section.

    ``postings`` or ``document_frequency`` may be -1 when the source
    exports only one of the two statistics (the paper requires "at
    least one").
    """

    word: str
    postings: int
    document_frequency: int

    def serialize(self) -> str:
        parts = [f'"{self.word}"']
        if self.postings >= 0:
            parts.append(str(self.postings))
        if self.document_frequency >= 0:
            parts.append(str(self.document_frequency))
        return " ".join(parts)

    @classmethod
    def parse(cls, line: str, has_postings: bool = True, has_df: bool = True) -> "SummaryEntryLine":
        line = line.strip()
        if not line.startswith('"'):
            raise SoifSyntaxError(f"summary line must start with a word: {line!r}")
        closing = line.index('"', 1)
        word = line[1:closing]
        numbers = line[closing + 1 :].split()
        postings, df = -1, -1
        if has_postings and has_df:
            if len(numbers) != 2:
                raise SoifSyntaxError(f"summary line needs two numbers: {line!r}")
            postings, df = int(numbers[0]), int(numbers[1])
        elif has_postings:
            postings = int(numbers[0])
        elif has_df:
            df = int(numbers[0])
        return cls(word, postings, df)


@dataclass(frozen=True)
class SummarySection:
    """Statistics for one (field, language) group of words."""

    field: str
    language: str
    entries: tuple[SummaryEntryLine, ...]


@dataclass(frozen=True)
class SContentSummary:
    """A source content summary (§4.3.2, Example 11).

    Header flags describe how the word list was produced:
    ``stemming`` — are the listed words stemmed; ``stop_words`` — does
    the list include stop words; ``case_sensitive``; ``fields`` — are
    words qualified by the field they occurred in.  The paper's
    recommendation (unstemmed, with stop words, case sensitive, with
    fields) is what our sources export by default.
    """

    num_docs: int
    sections: tuple[SummarySection, ...] = ()
    stemming: bool = False
    stop_words: bool = False
    case_sensitive: bool = False
    fields: bool = True
    has_postings: bool = True
    has_document_frequencies: bool = True
    version: str = PROTOCOL_VERSION

    def vocabulary_size(self) -> int:
        return sum(len(section.entries) for section in self.sections)

    def _word_index(
        self,
    ) -> tuple[
        dict[str, list[SummaryEntryLine]],
        dict[tuple[str, str], list[SummaryEntryLine]],
    ]:
        """Lazily built ``word → entries`` / ``(word, field) → entries``.

        Source selection (GlOSS, CORI) probes ``document_frequency`` /
        ``total_postings`` for every source per query term; scanning
        every section per probe made selection quadratic in summary
        size.  The index preserves section traversal order, is built on
        first use, and is invalidated whenever ``sections`` is swapped
        out (the summary is otherwise immutable).
        """
        cache = self.__dict__.get("_word_index_cache")
        if cache is not None and cache[0] is self.sections:
            return cache[1], cache[2]
        by_word: dict[str, list[SummaryEntryLine]] = {}
        by_word_field: dict[tuple[str, str], list[SummaryEntryLine]] = {}
        for section in self.sections:
            for entry in section.entries:
                key = entry.word if self.case_sensitive else entry.word.lower()
                by_word.setdefault(key, []).append(entry)
                by_word_field.setdefault((key, section.field), []).append(entry)
        object.__setattr__(
            self, "_word_index_cache", (self.sections, by_word, by_word_field)
        )
        return by_word, by_word_field

    def lookup(self, word: str, field: str | None = None) -> list[SummaryEntryLine]:
        """All entries for ``word``, optionally restricted to a field."""
        if not self.case_sensitive:
            word = word.lower()
        by_word, by_word_field = self._word_index()
        if field is None:
            return list(by_word.get(word, ()))
        return list(by_word_field.get((word, field), ()))

    def word_statistics(self) -> dict[str, tuple[int, int]]:
        """``word key → (total postings, total df)`` across all sections.

        The key is the entry word, lowercased unless the summary is
        case sensitive (the same keying :meth:`lookup` uses); negative
        statistics (absent per the "at least one of" rule) clamp to 0.
        Built once on first access and memoized, so the per-query probes
        of :meth:`document_frequency` / :meth:`total_postings` are a
        single dict get instead of a list walk per call.  Like the word
        index, the memo is invalidated whenever ``sections`` is swapped
        out (the summary is otherwise immutable) — callers that replace
        ``sections`` via ``object.__setattr__`` get fresh statistics on
        the next probe.
        """
        cached = self.__dict__.get("_word_stats_cache")
        if cached is not None and cached[0] is self.sections:
            return cached[1]
        by_word, _ = self._word_index()
        stats = {
            word: (
                sum(max(entry.postings, 0) for entry in entries),
                sum(max(entry.document_frequency, 0) for entry in entries),
            )
            for word, entries in by_word.items()
        }
        object.__setattr__(self, "_word_stats_cache", (self.sections, stats))
        return stats

    def document_frequency(self, word: str, field: str | None = None) -> int:
        """Total df of ``word`` across sections (0 if absent)."""
        if field is None:
            if not self.case_sensitive:
                word = word.lower()
            stats = self.word_statistics().get(word)
            return stats[1] if stats is not None else 0
        return sum(
            max(entry.document_frequency, 0) for entry in self.lookup(word, field)
        )

    def total_postings(self, word: str, field: str | None = None) -> int:
        if field is None:
            if not self.case_sensitive:
                word = word.lower()
            stats = self.word_statistics().get(word)
            return stats[0] if stats is not None else 0
        return sum(max(entry.postings, 0) for entry in self.lookup(word, field))

    def total_word_mass(self) -> int:
        """Total postings across every section (CORI's ``cw`` input).

        Cached alongside the word index so repeated selection rounds do
        not re-sum the whole summary.
        """
        cached = self.__dict__.get("_word_mass_cache")
        if cached is not None and cached[0] is self.sections:
            return cached[1]
        mass = sum(
            max(entry.postings, 0)
            for section in self.sections
            for entry in section.entries
        )
        object.__setattr__(self, "_word_mass_cache", (self.sections, mass))
        return mass

    def to_soif(self) -> SoifObject:
        obj = SoifObject("SContentSummary")
        obj.add("Version", self.version)
        obj.add("Stemming", "T" if self.stemming else "F")
        obj.add("StopWords", "T" if self.stop_words else "F")
        obj.add("CaseSensitive", "T" if self.case_sensitive else "F")
        obj.add("Fields", "T" if self.fields else "F")
        statistics = []
        if self.has_postings:
            statistics.append("postings")
        if self.has_document_frequencies:
            statistics.append("df")
        obj.add("StatisticsIncluded", " ".join(statistics))
        obj.add("NumDocs", str(self.num_docs))
        for section in self.sections:
            if self.fields:
                obj.add("Field", section.field)
            obj.add("Language", section.language)
            obj.add(
                "TermDocFreq",
                "\n".join(entry.serialize() for entry in section.entries),
            )
        return obj

    @classmethod
    def from_soif(cls, obj: SoifObject) -> "SContentSummary":
        if obj.template != "SContentSummary":
            raise SoifSyntaxError(f"expected @SContentSummary, got @{obj.template}")
        has_fields = (obj.get("Fields", "T") or "T").upper() == "T"
        statistics_text = obj.get("StatisticsIncluded")
        if statistics_text is None:
            statistics_text = "postings df"  # legacy blobs: assume both
        statistics = statistics_text.split()
        has_postings = "postings" in statistics
        has_df = "df" in statistics
        if not (has_postings or has_df):
            raise SoifSyntaxError("summary must include postings or df statistics")
        sections: list[SummarySection] = []
        current_field = "any"
        current_language = "en"
        for name, value in obj.pairs():
            lowered = name.lower()
            if lowered == "field":
                current_field = value.strip()
            elif lowered == "language":
                current_language = value.strip()
            elif lowered == "termdocfreq":
                entries = tuple(
                    SummaryEntryLine.parse(line, has_postings, has_df)
                    for line in value.splitlines()
                    if line.strip()
                )
                sections.append(
                    SummarySection(current_field, current_language, entries)
                )
        return cls(
            num_docs=int(obj.get("NumDocs", "0") or 0),
            sections=tuple(sections),
            stemming=(obj.get("Stemming", "F") or "F").upper() == "T",
            stop_words=(obj.get("StopWords", "F") or "F").upper() == "T",
            case_sensitive=(obj.get("CaseSensitive", "F") or "F").upper() == "T",
            fields=has_fields,
            has_postings=has_postings,
            has_document_frequencies=has_df,
            version=obj.get("Version", PROTOCOL_VERSION) or PROTOCOL_VERSION,
        )


@dataclass(frozen=True)
class SResource:
    """A resource's contact information (§4.3.3, Example 12).

    ``source_list`` maps source ids to the URLs of their
    metadata-attribute objects.
    """

    source_list: tuple[tuple[str, str], ...]
    version: str = PROTOCOL_VERSION

    def source_ids(self) -> list[str]:
        return [source_id for source_id, _ in self.source_list]

    def metadata_url(self, source_id: str) -> str:
        for candidate, url in self.source_list:
            if candidate == source_id:
                return url
        raise KeyError(source_id)

    def to_soif(self) -> SoifObject:
        obj = SoifObject("SResource")
        obj.add("Version", self.version)
        obj.add(
            "SourceList",
            "\n".join(f"{source_id} {url}" for source_id, url in self.source_list),
        )
        return obj

    @classmethod
    def from_soif(cls, obj: SoifObject) -> "SResource":
        if obj.template != "SResource":
            raise SoifSyntaxError(f"expected @SResource, got @{obj.template}")
        pairs = []
        for line in (obj.get("SourceList", "") or "").splitlines():
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise SoifSyntaxError(f"bad SourceList line: {line!r}")
            pairs.append((parts[0], parts[1]))
        return cls(
            source_list=tuple(pairs),
            version=obj.get("Version", PROTOCOL_VERSION) or PROTOCOL_VERSION,
        )
