"""A simulated internet: URL registry with latency, cost and fault accounting.

STARTS deliberately leaves transport open; the reproduction moves SOIF
blobs through an in-process network that nevertheless behaves like the
one the paper worries about: some sources are slow, some charge per
query (§3.3 — "Some of these sources might charge for their use.  Some
of the sources might have large response times") — and some fail.
Every fetch/post is logged with its simulated latency, monetary cost
and status, giving the cost-aware source-selection experiments and the
fault-tolerance tests a measurable substrate.

Everything is deterministic: a seeded per-host jitter stream for
latency and a separate seeded stream for fault injection, so experiment
runs are reproducible request for request.

Two execution modes:

* the default accounts latency without waiting — experiments over
  thousands of requests stay fast;
* ``realtime=True`` actually sleeps each request's simulated latency
  (scaled by ``time_scale``), so a concurrent executor's wall-clock
  advantage over a serial one is *measurable*, not estimated.

The registry is thread safe: accounting happens under a lock, sleeping
and handler execution outside it, so concurrent requests overlap the
way real network waits do.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
import zlib
from contextvars import ContextVar
from dataclasses import dataclass
from urllib.parse import urlparse

__all__ = [
    "HostProfile",
    "FaultProfile",
    "AccessRecord",
    "SimulatedInternet",
    "TransportError",
    "TransportTimeout",
    "current_request_headers",
]


#: The headers of the request currently being handled.  The simulated
#: internet sets this around each handler invocation, so server-side
#: code (published sources, broker leaves) reads its inbound headers —
#: e.g. ``traceparent`` — without the handler signature changing.
_REQUEST_HEADERS: ContextVar[dict[str, str] | None] = ContextVar(
    "repro_request_headers", default=None
)


def current_request_headers() -> dict[str, str]:
    """The inbound headers of the request being handled (may be empty)."""
    return dict(_REQUEST_HEADERS.get() or {})


class TransportError(Exception):
    """Raised for unknown URLs, injected failures, or handler failures.

    When the failure happened on an accounted request, ``record`` holds
    the :class:`AccessRecord` so callers can still charge the latency
    and cost of the failed attempt.
    """

    def __init__(self, message: str = "", record: "AccessRecord | None" = None):
        super().__init__(message)
        self.record = record


class TransportTimeout(TransportError):
    """A request exceeded its deadline or hit an injected timeout."""


@dataclass(frozen=True, slots=True)
class HostProfile:
    """Performance/cost characteristics of one host.

    Attributes:
        latency_ms: mean simulated round-trip latency.
        jitter_ms: uniform jitter added on top (deterministic stream).
        cost_per_query: monetary cost charged per request to this host.
    """

    latency_ms: float = 20.0
    jitter_ms: float = 5.0
    cost_per_query: float = 0.0


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Deterministic, seedable fault injection for one host.

    Attributes:
        failure_rate: per-request probability of a connection failure
            (:class:`TransportError`); ``1.0`` models a dead host.
        timeout_rate: per-request probability of a hang
            (:class:`TransportTimeout`).
        fail_first: the first N requests fail, then the host recovers —
            the flaky-then-recover shape that retries are for.
        timeout_after: requests *after* the first N hang; ``0`` makes
            every request hang (a host that accepts but never answers).
        hang_ms: how long a hanging request takes before the transport
            itself gives up, when the caller sets no deadline.

    Probabilistic faults draw from a per-host seeded stream, so the
    same world produces the same failures run after run.
    """

    failure_rate: float = 0.0
    timeout_rate: float = 0.0
    fail_first: int = 0
    timeout_after: int | None = None
    hang_ms: float = 30_000.0

    @classmethod
    def dead(cls) -> "FaultProfile":
        """Every request fails with a connection error."""
        return cls(failure_rate=1.0)

    @classmethod
    def flaky(cls, recover_after: int) -> "FaultProfile":
        """Fail the first ``recover_after`` requests, then behave."""
        return cls(fail_first=recover_after)

    @classmethod
    def hangs(cls, after: int = 0, hang_ms: float = 30_000.0) -> "FaultProfile":
        """Hang every request after the first ``after`` good ones."""
        return cls(timeout_after=after, hang_ms=hang_ms)

    def decide(self, request_number: int, rng: random.Random) -> tuple[str, str]:
        """(status, detail) for request number ``request_number`` (1-based)."""
        if self.fail_first and request_number <= self.fail_first:
            return "error", (
                f"injected flaky failure ({request_number}/{self.fail_first} "
                "before recovery)"
            )
        if self.timeout_after is not None and request_number > self.timeout_after:
            return "timeout", (
                f"injected hang (request {request_number} > {self.timeout_after})"
            )
        if self.failure_rate or self.timeout_rate:
            roll = rng.random()
            if roll < self.failure_rate:
                return "error", "injected connection failure"
            if roll < self.failure_rate + self.timeout_rate:
                return "timeout", "injected hang"
        return "ok", ""


@dataclass(frozen=True, slots=True)
class AccessRecord:
    """One logged network interaction."""

    url: str
    method: str
    latency_ms: float
    cost: float
    status: str = "ok"


@dataclass
class _HostState:
    profile: HostProfile
    rng: random.Random
    fault_rng: random.Random
    faults: FaultProfile | None = None
    requests: int = 0


class SimulatedInternet:
    """URL → handler registry with latency/cost/fault simulation.

    Handlers are callables: GET handlers take no arguments and return
    ``bytes``; POST handlers take the request body (``bytes``) and
    return ``bytes``.

    Args:
        seed: root of the per-host jitter and fault streams.
        realtime: when True, each request sleeps its simulated latency
            (scaled by ``time_scale``) before returning, so wall-clock
            measurements reflect the simulated network.  May be toggled
            on an existing instance (e.g. off for discovery, on for the
            measured query round).
        time_scale: multiplier applied to simulated latency when
            sleeping in realtime mode.
    """

    def __init__(
        self, seed: int = 0, realtime: bool = False, time_scale: float = 1.0
    ) -> None:
        self._seed = seed
        self._get_handlers: dict[str, object] = {}
        self._post_handlers: dict[str, object] = {}
        self._hosts: dict[str, _HostState] = {}
        self._lock = threading.Lock()
        self.realtime = realtime
        self.time_scale = time_scale
        self.log: list[AccessRecord] = []

    # -- registration ----------------------------------------------------

    def register_host(
        self,
        host: str,
        profile: HostProfile | None = None,
        faults: FaultProfile | None = None,
    ) -> None:
        """Declare a host's performance profile (idempotent)."""
        with self._lock:
            self._ensure_host(host, profile, faults)

    def _ensure_host(
        self,
        host: str,
        profile: HostProfile | None = None,
        faults: FaultProfile | None = None,
    ) -> _HostState:
        state = self._hosts.get(host)
        if state is None:
            # crc32 rather than hash(): Python string hashing is
            # randomized per process, which would break cross-run
            # reproducibility of the simulated latencies.
            digest = zlib.crc32(host.encode("utf-8"))
            state = _HostState(
                profile or HostProfile(),
                random.Random((self._seed * 2654435761 + digest) & 0xFFFFFFFF),
                random.Random((self._seed * 40503 + digest * 69069) & 0xFFFFFFFF),
                faults=faults,
            )
            self._hosts[host] = state
        elif faults is not None and state.faults is None:
            state.faults = faults
        return state

    def set_fault_profile(self, host: str, faults: FaultProfile | None) -> None:
        """Attach (or clear) fault injection for a host, even mid-run.

        The host's request counter restarts, so count-based schedules
        (``fail_first``, ``timeout_after``) apply from this moment —
        earlier traffic (e.g. discovery) does not consume the schedule.
        """
        with self._lock:
            state = self._ensure_host(host)
            state.faults = faults
            state.requests = 0

    def register_get(self, url: str, handler) -> None:
        self.register_host(_host_of(url))
        self._get_handlers[url] = handler

    def register_post(self, url: str, handler) -> None:
        self.register_host(_host_of(url))
        self._post_handlers[url] = handler

    # -- traffic ------------------------------------------------------------

    def fetch(self, url: str, headers: dict[str, str] | None = None) -> bytes:
        """GET a URL; raises :class:`TransportError` if unregistered."""
        payload, _ = self.perform(url, "GET", headers=headers)
        return payload

    def post(
        self, url: str, body: bytes, headers: dict[str, str] | None = None
    ) -> bytes:
        """POST a body to a URL; raises :class:`TransportError`."""
        payload, _ = self.perform(url, "POST", body, headers=headers)
        return payload

    def perform(
        self,
        url: str,
        method: str = "GET",
        body: bytes | None = None,
        deadline_ms: float | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[bytes, AccessRecord]:
        """One accounted request; returns ``(payload, record)``.

        ``deadline_ms`` is the caller's patience: a request whose
        simulated latency (natural or injected hang) exceeds it raises
        :class:`TransportTimeout` with the latency clamped to the
        deadline — the caller paid exactly the time it was willing to
        wait.  Failed requests still log a record (latency and cost are
        spent whether or not an answer arrives) and carry it on the
        raised exception.
        """
        handler, latency, status, detail, record = self._begin(
            url, method, deadline_ms
        )
        self._sleep(latency)
        return self._finish(handler, method, body, status, detail, record, headers)

    async def perform_async(
        self,
        url: str,
        method: str = "GET",
        body: bytes | None = None,
        deadline_ms: float | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[bytes, AccessRecord]:
        """:meth:`perform`, awaiting instead of blocking the thread.

        Accounting (latency draw, fault decision, deadline clamp, log
        record) is identical to the synchronous path — the same world
        produces the same records either way.  The only difference is
        *how* realtime latency is spent: ``asyncio.sleep`` yields the
        event loop, so thousands of simulated requests can be in flight
        on one thread.
        """
        handler, latency, status, detail, record = self._begin(
            url, method, deadline_ms
        )
        if self.realtime and latency > 0.0:
            await asyncio.sleep(latency * self.time_scale / 1000.0)
        return self._finish(handler, method, body, status, detail, record, headers)

    def _begin(
        self, url: str, method: str, deadline_ms: float | None
    ) -> tuple[object, float, str, str, AccessRecord]:
        """The locked accounting half of a request: draw latency, decide
        faults, clamp to the caller's deadline, and log the record."""
        with self._lock:
            handlers = self._post_handlers if method == "POST" else self._get_handlers
            handler = handlers.get(url)
            if handler is None:
                raise TransportError(f"no {method} handler for {url!r}")
            state = self._ensure_host(_host_of(url))
            state.requests += 1
            profile = state.profile
            jitter = state.rng.uniform(-profile.jitter_ms, profile.jitter_ms)
            latency = max(0.0, profile.latency_ms + jitter)
            status, detail = "ok", ""
            if state.faults is not None:
                status, detail = state.faults.decide(state.requests, state.fault_rng)
                if status == "timeout":
                    latency = max(latency, state.faults.hang_ms)
            if deadline_ms is not None and latency > deadline_ms:
                status = "timeout"
                detail = detail or f"deadline of {deadline_ms:g}ms exceeded"
                latency = deadline_ms
            record = AccessRecord(url, method, latency, profile.cost_per_query, status)
            self.log.append(record)
        return handler, latency, status, detail, record

    @staticmethod
    def _finish(
        handler: object,
        method: str,
        body: bytes | None,
        status: str,
        detail: str,
        record: AccessRecord,
        headers: dict[str, str] | None = None,
    ) -> tuple[bytes, AccessRecord]:
        """The post-wait half: raise injected failures or run the handler."""
        if status == "timeout":
            raise TransportTimeout(f"{method} {record.url} timed out: {detail}", record)
        if status == "error":
            raise TransportError(f"{method} {record.url} failed: {detail}", record)
        # The handler is the "server side": it sees exactly the headers
        # the request carried, never the caller's ambient context.
        token = _REQUEST_HEADERS.set(dict(headers) if headers else None)
        try:
            payload = handler(body) if method == "POST" else handler()
        finally:
            _REQUEST_HEADERS.reset(token)
        return payload, record

    def _sleep(self, latency_ms: float) -> None:
        if self.realtime and latency_ms > 0.0:
            time.sleep(latency_ms * self.time_scale / 1000.0)

    # -- accounting --------------------------------------------------------

    def total_latency_ms(self) -> float:
        return sum(record.latency_ms for record in self.log)

    def total_cost(self) -> float:
        return sum(record.cost for record in self.log)

    def request_count(self, host: str | None = None) -> int:
        if host is None:
            return len(self.log)
        return sum(1 for record in self.log if _host_of(record.url) == host)

    def failure_count(self) -> int:
        """Logged requests that did not complete (error or timeout)."""
        return sum(1 for record in self.log if record.status != "ok")

    def reset_log(self) -> None:
        self.log.clear()

    def known_urls(self) -> list[str]:
        return sorted(set(self._get_handlers) | set(self._post_handlers))


def _host_of(url: str) -> str:
    return urlparse(url).netloc or url
