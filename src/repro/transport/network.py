"""A simulated internet: URL registry with latency and cost accounting.

STARTS deliberately leaves transport open; the reproduction moves SOIF
blobs through an in-process network that nevertheless behaves like the
one the paper worries about: some sources are slow, some charge per
query (§3.3 — "Some of these sources might charge for their use.  Some
of the sources might have large response times").  Every fetch/post is
logged with its simulated latency and monetary cost, giving the
cost-aware source-selection experiments a measurable substrate.

Latency is deterministic: a seeded per-host jitter stream, so
experiment runs are reproducible.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from urllib.parse import urlparse

__all__ = ["HostProfile", "AccessRecord", "SimulatedInternet", "TransportError"]


class TransportError(Exception):
    """Raised for unknown URLs or handler failures."""


@dataclass(frozen=True, slots=True)
class HostProfile:
    """Performance/cost characteristics of one host.

    Attributes:
        latency_ms: mean simulated round-trip latency.
        jitter_ms: uniform jitter added on top (deterministic stream).
        cost_per_query: monetary cost charged per request to this host.
    """

    latency_ms: float = 20.0
    jitter_ms: float = 5.0
    cost_per_query: float = 0.0


@dataclass(frozen=True, slots=True)
class AccessRecord:
    """One logged network interaction."""

    url: str
    method: str
    latency_ms: float
    cost: float


@dataclass
class _HostState:
    profile: HostProfile
    rng: random.Random
    requests: int = 0


class SimulatedInternet:
    """URL → handler registry with latency/cost simulation.

    Handlers are callables: GET handlers take no arguments and return
    ``bytes``; POST handlers take the request body (``bytes``) and
    return ``bytes``.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._get_handlers: dict[str, object] = {}
        self._post_handlers: dict[str, object] = {}
        self._hosts: dict[str, _HostState] = {}
        self.log: list[AccessRecord] = []

    # -- registration ----------------------------------------------------

    def register_host(self, host: str, profile: HostProfile | None = None) -> None:
        """Declare a host's performance profile (idempotent)."""
        if host not in self._hosts:
            # crc32 rather than hash(): Python string hashing is
            # randomized per process, which would break cross-run
            # reproducibility of the simulated latencies.
            digest = zlib.crc32(host.encode("utf-8"))
            self._hosts[host] = _HostState(
                profile or HostProfile(),
                random.Random((self._seed * 2654435761 + digest) & 0xFFFFFFFF),
            )

    def register_get(self, url: str, handler) -> None:
        self.register_host(_host_of(url))
        self._get_handlers[url] = handler

    def register_post(self, url: str, handler) -> None:
        self.register_host(_host_of(url))
        self._post_handlers[url] = handler

    # -- traffic ------------------------------------------------------------

    def fetch(self, url: str) -> bytes:
        """GET a URL; raises :class:`TransportError` if unregistered."""
        handler = self._get_handlers.get(url)
        if handler is None:
            raise TransportError(f"no GET handler for {url!r}")
        self._account(url, "GET")
        return handler()

    def post(self, url: str, body: bytes) -> bytes:
        """POST a body to a URL; raises :class:`TransportError`."""
        handler = self._post_handlers.get(url)
        if handler is None:
            raise TransportError(f"no POST handler for {url!r}")
        self._account(url, "POST")
        return handler(body)

    def _account(self, url: str, method: str) -> None:
        host = _host_of(url)
        state = self._hosts.get(host)
        if state is None:
            self.register_host(host)
            state = self._hosts[host]
        jitter = state.rng.uniform(-state.profile.jitter_ms, state.profile.jitter_ms)
        latency = max(0.0, state.profile.latency_ms + jitter)
        cost = state.profile.cost_per_query
        state.requests += 1
        self.log.append(AccessRecord(url, method, latency, cost))

    # -- accounting --------------------------------------------------------

    def total_latency_ms(self) -> float:
        return sum(record.latency_ms for record in self.log)

    def total_cost(self) -> float:
        return sum(record.cost for record in self.log)

    def request_count(self, host: str | None = None) -> int:
        if host is None:
            return len(self.log)
        return sum(1 for record in self.log if _host_of(record.url) == host)

    def reset_log(self) -> None:
        self.log.clear()

    def known_urls(self) -> list[str]:
        return sorted(set(self._get_handlers) | set(self._post_handlers))


def _host_of(url: str) -> str:
    return urlparse(url).netloc or url
