"""Transport: SOIF over a simulated internet with latency/cost accounting."""

from repro.transport.client import StartsClient
from repro.transport.filestore import (
    export_resource,
    export_source_blobs,
    register_file_url,
)
from repro.transport.http import HttpTransport, StartsHttpServer
from repro.transport.network import (
    AccessRecord,
    FaultProfile,
    HostProfile,
    SimulatedInternet,
    TransportError,
    TransportTimeout,
)
from repro.transport.server import (
    publish_broker_leaf,
    publish_metrics,
    publish_resource,
    publish_source,
)

__all__ = [
    "StartsClient",
    "export_resource",
    "export_source_blobs",
    "register_file_url",
    "HttpTransport",
    "StartsHttpServer",
    "AccessRecord",
    "FaultProfile",
    "HostProfile",
    "SimulatedInternet",
    "TransportError",
    "TransportTimeout",
    "publish_broker_leaf",
    "publish_metrics",
    "publish_resource",
    "publish_source",
]
