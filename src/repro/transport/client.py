"""Client-side transport: typed fetchers over the simulated internet.

The metasearcher never touches sources directly — it speaks SOIF over
the network, exactly as a real STARTS client would.  Each method posts
or fetches a blob and decodes it into the corresponding protocol
object.
"""

from __future__ import annotations

from repro.source.sample import SampleResults
from repro.starts.metadata import SContentSummary, SMetaAttributes, SResource
from repro.starts.query import SQuery
from repro.starts.results import SQResults
from repro.starts.soif import parse_soif
from repro.transport.network import SimulatedInternet

__all__ = ["StartsClient"]


class StartsClient:
    """A thin, typed STARTS client bound to one network."""

    def __init__(self, internet: SimulatedInternet) -> None:
        self._internet = internet

    def query(self, query_url: str, query: SQuery) -> SQResults:
        """POST an @SQuery; decode the @SQResults stream."""
        body = query.to_soif().dump().encode("utf-8")
        response = self._internet.post(query_url, body)
        return SQResults.from_soif_stream(response)

    def fetch_resource(self, resource_url: str) -> SResource:
        """GET an @SResource blob."""
        return SResource.from_soif(parse_soif(self._internet.fetch(resource_url)))

    def fetch_metadata(self, metadata_url: str) -> SMetaAttributes:
        """GET an @SMetaAttributes blob."""
        return SMetaAttributes.from_soif(parse_soif(self._internet.fetch(metadata_url)))

    def fetch_summary(self, summary_url: str) -> SContentSummary:
        """GET an @SContentSummary blob."""
        return SContentSummary.from_soif(parse_soif(self._internet.fetch(summary_url)))

    def fetch_sample_results(self, sample_url: str) -> SampleResults:
        """GET an @SSampleResults blob."""
        return SampleResults.from_soif(parse_soif(self._internet.fetch(sample_url)))

    def scan(
        self, scan_url: str, field: str, start_term: str, count: int = 10
    ):
        """POST an @SScanRequest; decode the vocabulary slice."""
        from repro.source.scan import ScanRequest, ScanResponse

        request = ScanRequest(field, start_term, count)
        body = request.to_soif().dump().encode("utf-8")
        return ScanResponse.parse(self._internet.post(scan_url, body))
