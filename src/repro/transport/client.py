"""Client-side transport: typed fetchers over the simulated internet.

The metasearcher never touches sources directly — it speaks SOIF over
the network, exactly as a real STARTS client would.  Each method posts
or fetches a blob and decodes it into the corresponding protocol
object.  An optional :class:`~repro.observability.Tracer` records one
event per discovery fetch; query traffic is traced by the federation
runner, which sees retries and hedges the client alone cannot.
"""

from __future__ import annotations

from repro.observability.tracing import current_trace_context
from repro.source.sample import SampleResults
from repro.starts.metadata import SContentSummary, SMetaAttributes, SResource
from repro.starts.query import SQuery
from repro.starts.results import SQResults
from repro.starts.soif import parse_soif
from repro.transport.network import AccessRecord, SimulatedInternet

__all__ = ["StartsClient", "trace_headers"]


def trace_headers() -> dict[str, str] | None:
    """The outbound headers the ambient trace context implies.

    ``None`` when no context is active, so untraced traffic crosses the
    wire exactly as before.
    """
    context = current_trace_context()
    if context is None:
        return None
    return {"traceparent": context.to_traceparent()}


class StartsClient:
    """A thin, typed STARTS client bound to one network."""

    def __init__(self, internet: SimulatedInternet, tracer=None) -> None:
        self._internet = internet
        self.tracer = tracer

    @property
    def internet(self) -> SimulatedInternet:
        """The network this client is bound to."""
        return self._internet

    def access_log(self) -> list[AccessRecord]:
        """The network's live access log (shared with other clients)."""
        return self._internet.log

    def query(self, query_url: str, query: SQuery) -> SQResults:
        """POST an @SQuery; decode the @SQResults stream."""
        results, _ = self.query_with_record(query_url, query)
        return results

    def query_with_record(
        self, query_url: str, query: SQuery, deadline_ms: float | None = None
    ) -> tuple[SQResults, AccessRecord]:
        """POST an @SQuery; return the results *and* the access record.

        ``deadline_ms`` bounds how long the client waits: a slower (or
        hanging) source raises
        :class:`~repro.transport.TransportTimeout` whose ``record``
        charges exactly the deadline.  The federation runner uses this
        to implement per-source query deadlines.
        """
        body = query.to_soif().dump().encode("utf-8")
        response, record = self._internet.perform(
            query_url, "POST", body, deadline_ms=deadline_ms, headers=trace_headers()
        )
        return SQResults.from_soif_stream(response), record

    async def query_with_record_async(
        self, query_url: str, query: SQuery, deadline_ms: float | None = None
    ) -> tuple[SQResults, AccessRecord]:
        """:meth:`query_with_record` over the network's awaitable path.

        Accounting is identical to the synchronous method; in realtime
        mode the simulated latency is awaited (``asyncio.sleep``) rather
        than slept, so one event loop can hold thousands of source
        queries in flight.
        """
        body = query.to_soif().dump().encode("utf-8")
        response, record = await self._internet.perform_async(
            query_url, "POST", body, deadline_ms=deadline_ms, headers=trace_headers()
        )
        return SQResults.from_soif_stream(response), record

    def fetch_resource(self, resource_url: str) -> SResource:
        """GET an @SResource blob."""
        return SResource.from_soif(parse_soif(self._fetch(resource_url, "resource")))

    def fetch_metadata(self, metadata_url: str) -> SMetaAttributes:
        """GET an @SMetaAttributes blob."""
        return SMetaAttributes.from_soif(parse_soif(self._fetch(metadata_url, "meta")))

    def fetch_summary(self, summary_url: str) -> SContentSummary:
        """GET an @SContentSummary blob."""
        return SContentSummary.from_soif(
            parse_soif(self._fetch(summary_url, "summary"))
        )

    def fetch_sample_results(self, sample_url: str) -> SampleResults:
        """GET an @SSampleResults blob."""
        return SampleResults.from_soif(parse_soif(self._fetch(sample_url, "sample")))

    def fetch_metrics(self, metrics_url: str) -> str:
        """GET a ``/metrics`` endpoint; returns the Prometheus text."""
        return self._fetch(metrics_url, "metrics").decode("utf-8")

    def _fetch(self, url: str, kind: str) -> bytes:
        payload, record = self._internet.perform(url, "GET", headers=trace_headers())
        if self.tracer is not None:
            self.tracer.event(
                f"fetch:{kind}",
                url=url,
                latency_ms=record.latency_ms,
                cost=record.cost,
            )
        return payload

    def scan(
        self, scan_url: str, field: str, start_term: str, count: int = 10
    ):
        """POST an @SScanRequest; decode the vocabulary slice."""
        from repro.source.scan import ScanRequest, ScanResponse

        request = ScanRequest(field, start_term, count)
        body = request.to_soif().dump().encode("utf-8")
        return ScanResponse.parse(self._internet.post(scan_url, body))
