"""A real HTTP transport over localhost sockets.

The simulated internet is ideal for experiments (deterministic latency,
cost accounting); this module is the deployment-shaped alternative: a
threading HTTP server that mounts STARTS sources and resources on real
URLs, and an :class:`HttpTransport` that plugs into the same
:class:`~repro.transport.client.StartsClient` (it implements the same
``fetch``/``post``/``log`` surface as
:class:`~repro.transport.network.SimulatedInternet`, with measured
wall-clock latencies in the log).

Endpoint layout mirrors ``publish_resource``: each source under
``/<source-id>/...`` and the resource blob at ``/resource``.
"""

from __future__ import annotations

import http.server
import threading
import time
import urllib.request

from repro.resource.resource import Resource
from repro.source.scan import ScanRequest
from repro.source.source import StartsSource
from repro.starts.query import SQuery
from repro.starts.soif import parse_soif
from repro.transport.network import AccessRecord, TransportError, TransportTimeout

__all__ = ["StartsHttpServer", "HttpTransport"]


class StartsHttpServer:
    """Serves one resource (and its sources) over HTTP on localhost.

    Besides the STARTS endpoints, ``GET /metrics`` serves the process
    metrics registry in the Prometheus text exposition format —
    ``registry`` defaults to the process-wide one at request time.
    """

    def __init__(
        self,
        resource: Resource,
        host: str = "127.0.0.1",
        port: int = 0,
        registry=None,
        trace_sink=None,
    ) -> None:
        self._resource = resource
        self._registry = registry
        #: Optional :class:`~repro.observability.TraceCollector`: query
        #: POSTs carrying a ``traceparent`` header record a server-side
        #: span fragment here, stitched under the caller's trace.
        self.trace_sink = trace_sink
        self._server = http.server.ThreadingHTTPServer(
            (host, port), self._make_handler()
        )
        self._thread: threading.Thread | None = None

    @property
    def base_url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def resource_url(self) -> str:
        return f"{self.base_url}/resource"

    def source_query_url(self, source_id: str) -> str:
        return f"{self.base_url}/{source_id}/query"

    def start(self) -> str:
        """Start serving in a daemon thread; returns the base URL."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self.base_url

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "StartsHttpServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request handling -------------------------------------------------

    def _make_handler(self):
        resource = self._resource
        base_url = lambda: self.base_url  # noqa: E731 - resolved per request
        registry_now = lambda: self._registry  # noqa: E731 - resolved per request
        sink_now = lambda: self.trace_sink  # noqa: E731 - resolved per request

        class Handler(http.server.BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # quiet test output
                pass

            def _send(self, status: int, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", "text/plain; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _source_for(self, source_id: str) -> StartsSource | None:
                if source_id in resource:
                    return resource.source(source_id)
                return None

            def do_GET(self) -> None:
                parts = self.path.strip("/").split("/")
                if parts == ["metrics"]:
                    from repro.observability.export import render_prometheus
                    from repro.observability.metrics import get_registry

                    registry = registry_now() or get_registry()
                    body = render_prometheus(registry).encode("utf-8")
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                if parts == ["resource"]:
                    described = resource.describe()
                    # Rewrite metadata URLs onto this server.
                    from repro.starts.metadata import SResource

                    rewritten = SResource(
                        source_list=tuple(
                            (source_id, f"{base_url()}/{source_id}/meta")
                            for source_id, _ in described.source_list
                        )
                    )
                    self._send(200, rewritten.to_soif().dump().encode("utf-8"))
                    return
                if len(parts) == 2:
                    source = self._source_for(parts[0])
                    if source is not None:
                        blob = self._get_blob(source, parts[1])
                        if blob is not None:
                            self._send(200, blob)
                            return
                self._send(404, b"not found")

            def _get_blob(self, source: StartsSource, name: str) -> bytes | None:
                if name == "meta":
                    metadata = source.metadata()
                    # The source's own base_url is not served here;
                    # rewrite the linkages onto this server.
                    from dataclasses import replace

                    metadata = replace(
                        metadata,
                        linkage=f"{base_url()}/{source.source_id}/query",
                        content_summary_linkage=(
                            f"{base_url()}/{source.source_id}/cont_sum.txt"
                        ),
                        sample_database_results=(
                            f"{base_url()}/{source.source_id}/sample"
                        ),
                    )
                    return metadata.to_soif().dump().encode("utf-8")
                if name == "cont_sum.txt":
                    return source.content_summary().to_soif().dump().encode("utf-8")
                if name == "sample":
                    return source.sample_results().to_soif().dump().encode("utf-8")
                return None

            def _serve_query(self, source: StartsSource, query: SQuery):
                sink = sink_now()
                handle = lambda: resource.search(  # noqa: E731
                    source.source_id, query
                )
                if sink is None:
                    return handle()
                from repro.observability.tracing import TraceContext, Tracer

                context = TraceContext.from_traceparent(
                    self.headers.get("traceparent")
                )
                if context is None or not context.sampled:
                    return handle()
                tracer = Tracer(context=context)
                span = tracer.open_span(f"serve:query:{source.source_id}")
                try:
                    return handle()
                except Exception as error:
                    span.annotate(error=repr(error))
                    raise
                finally:
                    tracer.close_span(span)
                    sink.add(tracer.trace())

            def do_POST(self) -> None:
                length = int(self.headers.get("Content-Length", "0"))
                body = self.rfile.read(length)
                parts = self.path.strip("/").split("/")
                if len(parts) != 2:
                    self._send(404, b"not found")
                    return
                source = self._source_for(parts[0])
                if source is None:
                    self._send(404, b"unknown source")
                    return
                try:
                    if parts[1] == "query":
                        query = SQuery.from_soif(parse_soif(body))
                        results = self._serve_query(source, query)
                        self._send(200, results.to_soif_stream().encode("utf-8"))
                        return
                    if parts[1] == "scan":
                        request = ScanRequest.from_soif(parse_soif(body))
                        response = source.scan(
                            request.field, request.start_term, request.count
                        )
                        self._send(200, response.to_soif().dump().encode("utf-8"))
                        return
                except Exception as error:
                    self._send(500, repr(error).encode("utf-8"))
                    return
                self._send(404, b"not found")

        return Handler


class HttpTransport:
    """``fetch``/``post`` over real HTTP; drop-in for SimulatedInternet
    wherever only the client surface is needed."""

    def __init__(self, timeout: float = 10.0) -> None:
        self._timeout = timeout
        self.log: list[AccessRecord] = []

    def fetch(self, url: str) -> bytes:
        payload, _ = self.perform(url, "GET")
        return payload

    def post(self, url: str, body: bytes) -> bytes:
        payload, _ = self.perform(url, "POST", body)
        return payload

    def perform(
        self,
        url: str,
        method: str = "GET",
        body: bytes | None = None,
        deadline_ms: float | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[bytes, AccessRecord]:
        """One measured request; ``deadline_ms`` maps to the socket timeout."""
        request = urllib.request.Request(url, data=body, method=method)
        from repro.transport.client import trace_headers

        for name, value in {**(trace_headers() or {}), **(headers or {})}.items():
            request.add_header(name, value)
        timeout = self._timeout
        if deadline_ms is not None:
            timeout = min(timeout, deadline_ms / 1000.0)
        started = time.perf_counter()
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                payload = response.read()
        except Exception as error:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            timed_out = isinstance(error, TimeoutError) or "timed out" in str(error)
            status = "timeout" if timed_out else "error"
            record = AccessRecord(url, method, elapsed_ms, 0.0, status)
            self.log.append(record)
            exc_type = TransportTimeout if timed_out else TransportError
            raise exc_type(f"{method} {url} failed: {error}", record) from error
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        record = AccessRecord(url, method, elapsed_ms, 0.0)
        self.log.append(record)
        return payload, record

    def total_latency_ms(self) -> float:
        return sum(record.latency_ms for record in self.log)

    def request_count(self, host: str | None = None) -> int:
        if host is None:
            return len(self.log)
        return sum(1 for record in self.log if host in record.url)

    def reset_log(self) -> None:
        self.log.clear()
