"""File-based export of STARTS blobs.

The paper's running example serves the content summary from
``ftp://www-db.stanford.edu/cont_sum.txt`` — metadata blobs are plain
files a source administrator can publish anywhere.  This module writes
a source's three blobs (metadata attributes, content summary, sample
results) and a resource's definition to a directory, and registers the
resulting ``file://`` URLs on a simulated internet so a metasearcher
can harvest straight from disk.
"""

from __future__ import annotations

import pathlib

from repro.resource.resource import Resource
from repro.source.source import StartsSource
from repro.starts.metadata import SResource
from repro.transport.network import SimulatedInternet

__all__ = ["export_source_blobs", "export_resource", "register_file_url"]

_METADATA_FILE = "meta.soif"
_SUMMARY_FILE = "cont_sum.txt"
_SAMPLE_FILE = "sample.soif"
_RESOURCE_FILE = "resource.soif"


def export_source_blobs(source: StartsSource, directory: str | pathlib.Path) -> dict[str, pathlib.Path]:
    """Write a source's exportable blobs under ``directory``.

    Returns the mapping blob name → written path.  The directory is
    created if missing; existing files are overwritten (a periodic
    export job's natural behaviour).
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    written = {
        "metadata": path / _METADATA_FILE,
        "summary": path / _SUMMARY_FILE,
        "sample": path / _SAMPLE_FILE,
    }
    written["metadata"].write_text(source.metadata().to_soif().dump())
    written["summary"].write_text(source.content_summary().to_soif().dump())
    written["sample"].write_text(source.sample_results().to_soif().dump())
    return written


def export_resource(
    resource: Resource, directory: str | pathlib.Path
) -> dict[str, pathlib.Path]:
    """Export a whole resource: one subdirectory per source plus the
    @SResource blob whose SourceList points at the on-disk metadata.

    Returns blob name → path, with sources keyed ``<source_id>/meta``.
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    written: dict[str, pathlib.Path] = {}
    source_list = []
    for source_id in resource.source_ids():
        source_dir = path / source_id
        blobs = export_source_blobs(resource.source(source_id), source_dir)
        for name, blob_path in blobs.items():
            written[f"{source_id}/{name}"] = blob_path
        source_list.append((source_id, blobs["metadata"].as_uri()))
    resource_path = path / _RESOURCE_FILE
    resource_path.write_text(SResource(source_list=tuple(source_list)).to_soif().dump())
    written["resource"] = resource_path
    return written


def register_file_url(internet: SimulatedInternet, file_path: str | pathlib.Path) -> str:
    """Serve one on-disk blob over the simulated internet.

    The file is read lazily per request, so re-exports are picked up
    without re-registration.  Returns the ``file://`` URL.
    """
    path = pathlib.Path(file_path).resolve()
    url = path.as_uri()
    internet.register_get(url, lambda: path.read_bytes())
    return url
