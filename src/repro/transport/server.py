"""Server-side transport bindings: publish sources and resources.

Each source exposes four endpoints under its base URL, matching the
linkages its metadata advertises:

* ``{base}/query``         — POST an @SQuery, receive the result stream
* ``{base}/meta``          — GET the @SMetaAttributes blob
* ``{base}/cont_sum.txt``  — GET the @SContentSummary blob
* ``{base}/sample``        — GET the @SSampleResults blob

A resource additionally exposes ``{base}/resource`` (GET @SResource)
and routes queries whose ``Sources`` attribute names sibling sources
through resource-side duplicate elimination.
"""

from __future__ import annotations

from repro.observability.tracing import TraceCollector, TraceContext, Tracer
from repro.resource.resource import Resource
from repro.source.source import StartsSource
from repro.starts.query import SQuery
from repro.starts.soif import parse_soif
from repro.transport.network import (
    FaultProfile,
    HostProfile,
    SimulatedInternet,
    current_request_headers,
)

__all__ = [
    "publish_source",
    "publish_resource",
    "publish_metrics",
    "publish_broker_leaf",
]


def _traced(span_name: str, handler, sink: TraceCollector | None):
    """Wrap a POST handler with server-side span recording.

    When the inbound request carries a ``traceparent`` header and a
    ``sink`` is configured, the handler runs under a fresh per-request
    :class:`Tracer` continuing the wire context; the finished fragment
    lands in the sink for cross-process stitching.  Untraced requests
    (or ``sink=None``) run the bare handler — zero overhead.
    """
    if sink is None:
        return handler

    def wrapped(body: bytes) -> bytes:
        context = TraceContext.from_traceparent(
            current_request_headers().get("traceparent")
        )
        if context is None or not context.sampled:
            return handler(body)
        tracer = Tracer(context=context)
        span = tracer.open_span(span_name)
        try:
            return handler(body)
        except Exception as error:
            span.annotate(error=repr(error))
            raise
        finally:
            tracer.close_span(span)
            sink.add(tracer.trace())

    return wrapped


def publish_source(
    internet: SimulatedInternet,
    source: StartsSource,
    profile: HostProfile | None = None,
    resource: Resource | None = None,
    faults: FaultProfile | None = None,
    trace_sink: TraceCollector | None = None,
) -> str:
    """Register a source's endpoints; returns its query URL.

    If ``resource`` is given, queries posted to this source are routed
    through the resource so the ``Sources`` attribute works.  An
    optional ``faults`` profile makes the source's host misbehave
    deterministically (see :class:`~repro.transport.FaultProfile`).
    With ``trace_sink``, query requests carrying a ``traceparent``
    header record a server-side span into the sink, stitched under the
    caller's trace.
    """
    base = source.base_url
    host = base.split("//", 1)[-1].split("/", 1)[0]
    internet.register_host(host, profile, faults)

    def handle_query(body: bytes) -> bytes:
        query = SQuery.from_soif(parse_soif(body))
        if resource is not None:
            results = resource.search(source.source_id, query)
        else:
            results = source.search(query)
        return results.to_soif_stream().encode("utf-8")

    internet.register_post(
        f"{base}/query",
        _traced(f"serve:query:{source.source_id}", handle_query, trace_sink),
    )
    internet.register_get(
        f"{base}/meta", lambda: source.metadata().to_soif().dump().encode("utf-8")
    )
    internet.register_get(
        f"{base}/cont_sum.txt",
        lambda: source.content_summary().to_soif().dump().encode("utf-8"),
    )
    internet.register_get(
        f"{base}/sample",
        lambda: source.sample_results().to_soif().dump().encode("utf-8"),
    )

    def handle_scan(body: bytes) -> bytes:
        from repro.source.scan import ScanRequest

        request = ScanRequest.from_soif(parse_soif(body))
        response = source.scan(request.field, request.start_term, request.count)
        return response.to_soif().dump().encode("utf-8")

    internet.register_post(f"{base}/scan", handle_scan)
    return f"{base}/query"


def publish_resource(
    internet: SimulatedInternet,
    resource: Resource,
    base_url: str,
    profile: HostProfile | None = None,
    source_profiles: dict[str, HostProfile] | None = None,
    source_faults: dict[str, FaultProfile] | None = None,
) -> str:
    """Register a resource and all of its sources; returns the SResource URL.

    Args:
        internet: the simulated network.
        resource: the resource to publish.
        base_url: where the @SResource blob lives (``{base}/resource``).
        profile: host profile for the resource's own host.
        source_profiles: optional per-source-id host profiles.
        source_faults: optional per-source-id fault-injection profiles.
    """
    host = base_url.split("//", 1)[-1].split("/", 1)[0]
    internet.register_host(host, profile)
    internet.register_get(
        f"{base_url}/resource",
        lambda: resource.describe().to_soif().dump().encode("utf-8"),
    )
    for source_id in resource.source_ids():
        source = resource.source(source_id)
        source_profile = (source_profiles or {}).get(source_id)
        fault_profile = (source_faults or {}).get(source_id)
        publish_source(
            internet, source, source_profile, resource=resource, faults=fault_profile
        )
    return f"{base_url}/resource"


def publish_broker_leaf(
    internet: SimulatedInternet,
    leaf,
    base_url: str,
    profile: HostProfile | None = None,
    faults: FaultProfile | None = None,
    trace_sink: TraceCollector | None = None,
) -> str:
    """Publish a :class:`~repro.broker.LeafBroker` as network endpoints.

    ZBroker-style: the leaf becomes a set of JSON endpoints under
    ``base_url`` —

    * ``POST {base}/probe``    — aggregate shard statistics for terms
    * ``POST {base}/select``   — the shard's exact top-k fragment
    * ``POST {base}/rank``     — the full locally-scored ranking
    * ``POST {base}/delta``    — one summary delta (SOIF text or null)
    * ``POST {base}/failover`` — promote the standby
    * ``GET  {base}/stats``    — shard stats (sources/terms/generation)

    so a :class:`~repro.broker.RootBroker` holding
    :class:`~repro.broker.NetworkLeafHandle`\\ s drives it exactly like
    an in-process leaf, latency and fault profiles included.  Returns
    the base URL.
    """
    import json

    from repro.broker.remote import parse_summary_text, probe_payload
    from repro.metasearch.selection import SELECTOR_REGISTRY

    host = base_url.split("//", 1)[-1].split("/", 1)[0]
    internet.register_host(host, profile, faults)

    def _selector(payload: dict):
        name = payload["selector"]
        factory = SELECTOR_REGISTRY.get(name)
        if factory is None:
            raise ValueError(f"unknown selector on the wire: {name!r}")
        return factory()

    def _stats(payload: dict):
        from repro.broker.remote import stats_from_payload

        return stats_from_payload(payload["stats"])

    def handle_probe(body: bytes) -> bytes:
        payload = json.loads(body)
        probe = leaf.probe(payload["terms"], payload["k"])
        return json.dumps(probe_payload(probe)).encode("utf-8")

    def handle_select(body: bytes) -> bytes:
        payload = json.loads(body)
        candidates = leaf.select_candidates(
            _selector(payload), payload["terms"], payload["k"], _stats(payload)
        )
        return json.dumps({"candidates": candidates}).encode("utf-8")

    def handle_rank(body: bytes) -> bytes:
        payload = json.loads(body)
        ranking = leaf.rank_all(
            _selector(payload), payload["terms"], _stats(payload)
        )
        return json.dumps({"ranking": ranking}).encode("utf-8")

    def handle_delta(body: bytes) -> bytes:
        payload = json.loads(body)
        leaf.apply_delta(payload["source"], parse_summary_text(payload["summary"]))
        return json.dumps({"generation": leaf.index.generation}).encode("utf-8")

    def handle_failover(body: bytes) -> bytes:
        leaf.fail_over()
        return json.dumps({"generation": leaf.index.generation}).encode("utf-8")

    leaf_id = getattr(leaf, "leaf_id", "leaf")
    for endpoint, handler in (
        ("probe", handle_probe),
        ("select", handle_select),
        ("rank", handle_rank),
        ("delta", handle_delta),
        ("failover", handle_failover),
    ):
        internet.register_post(
            f"{base_url}/{endpoint}",
            _traced(f"leaf:{leaf_id}:{endpoint}", handler, trace_sink),
        )
    internet.register_get(
        f"{base_url}/stats",
        lambda: json.dumps(leaf.shard_stats()).encode("utf-8"),
    )
    return base_url


def publish_metrics(
    internet: SimulatedInternet,
    base_url: str,
    registry=None,
    profile: HostProfile | None = None,
) -> str:
    """Expose a ``/metrics`` endpoint on the simulated internet.

    ``GET {base_url}/metrics`` renders ``registry`` (default: the
    process-wide one, resolved at request time) as Prometheus text —
    the simulated-wire twin of the real HTTP server's endpoint.
    Returns the metrics URL.
    """
    from repro.observability.export import render_prometheus
    from repro.observability.metrics import get_registry

    host = base_url.split("//", 1)[-1].split("/", 1)[0]
    internet.register_host(host, profile)
    internet.register_get(
        f"{base_url}/metrics",
        lambda: render_prometheus(
            registry if registry is not None else get_registry()
        ).encode("utf-8"),
    )
    return f"{base_url}/metrics"
