"""Tiered broker subsystem: the metasearcher sharded root-over-leaves.

The GlOSS reference of the paper ([8], "broker hierarchies") and
ZBroker's query routing both anticipate the same wall: a flat
metasearcher that compares every content summary per query stops
scaling somewhere in the thousands of sources.  This package shards
the selection phase instead:

* :class:`LeafBroker` — owns a consistent-hash partition of the
  sources and the :class:`~repro.metasearch.SummaryIndex` shard for
  it, fed by the discovery delta stream; the same log replays into a
  standby index for generation-checked replication and failover.
* :class:`RootBroker` — probes the leaves' exact aggregate statistics,
  prunes shards no query term touches, descends into the rest
  concurrently over the :class:`~repro.federation.Executor` protocol,
  and merges the per-shard fragments into the **bit-exact** flat
  top-k.  Admission control and load shedding ride on per-leaf
  :class:`~repro.observability.SourceHealth` scores.
* :class:`NetworkLeafHandle` / ``publish_broker_leaf`` — leaves as
  endpoints on the simulated internet, so the hierarchy spans
  processes and fault profiles.
* :class:`BrokeredMetasearcher` — the one-line swap preserving the
  whole ``Metasearcher`` search/search_stream surface.

The flat single-broker index remains the oracle: for every
distributable selector, hierarchical selection is bit-identical to
``selector.select(terms, flat_index, k)``.
"""

from repro.broker.facade import BrokeredMetasearcher, build_hierarchy
from repro.broker.leaf import (
    CorpusStats,
    GlobalStatsView,
    LeafBroker,
    LeafProbe,
    LeafUnavailableError,
)
from repro.broker.partition import ConsistentHashRing
from repro.broker.remote import NetworkLeafHandle, selector_wire_name
from repro.broker.root import (
    AdmissionPolicy,
    BrokerOverloadedError,
    LeafHandle,
    RootBroker,
    RoutingPolicy,
)

__all__ = [
    "AdmissionPolicy",
    "BrokerOverloadedError",
    "BrokeredMetasearcher",
    "ConsistentHashRing",
    "CorpusStats",
    "GlobalStatsView",
    "LeafBroker",
    "LeafHandle",
    "LeafProbe",
    "LeafUnavailableError",
    "NetworkLeafHandle",
    "RootBroker",
    "RoutingPolicy",
    "build_hierarchy",
    "selector_wire_name",
]
