"""Leaf brokers: one consistent-hash shard of the summary corpus.

A leaf owns the :class:`~repro.metasearch.SummaryIndex` for its
partition of sources, maintained by the same delta stream (source id +
fresh summary, or ``None`` on forget) that maintains the flat index —
and replays that same delta log into a *standby* index, so a failed
primary is replaced by promoting the standby and replaying only the
deltas it had not yet seen.  The index's generation counter is the
replication cursor: primary and standby were built from the identical
delta sequence, so equal generations mean bit-identical shards.

Scoring stays bit-exact with the flat oracle through
:class:`GlobalStatsView`: the leaf's local shard masquerading as the
whole federation's index, with the three corpus-level statistics CORI
reads — source count, mean clamped word mass, per-term collection
frequency — replaced by the root's exact aggregates.  Every per-source
arithmetic step then evaluates the very same floats the flat path
evaluates, and a per-leaf top-k is a true fragment of the global
ranking.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.metasearch.brokers import merge_summaries
from repro.metasearch.selection import SourceSelector
from repro.metasearch.summary_index import SummaryIndex, TermColumns
from repro.starts.metadata import SContentSummary

__all__ = [
    "CorpusStats",
    "GlobalStatsView",
    "LeafBroker",
    "LeafProbe",
    "LeafUnavailableError",
]


class LeafUnavailableError(RuntimeError):
    """The leaf's primary index is down; fail over before retrying."""


@dataclass(frozen=True)
class CorpusStats:
    """The corpus-level statistics selection needs, aggregated exactly.

    All three are integer sums over disjoint shards, so summing the
    leaves' contributions in any order reproduces the flat index's
    values bit for bit.
    """

    n_sources: int
    clamped_mass_total: int
    #: per query term — how many sources contain it with positive df.
    collection_frequencies: Mapping[str, int]


@dataclass(frozen=True)
class LeafProbe:
    """Round one of a brokered selection: one leaf's aggregate claim.

    Everything the root needs to (a) build :class:`CorpusStats`, (b)
    decide which leaves to descend into, and (c) stand in for a pruned
    leaf's sources — without shipping any per-source data.
    """

    leaf_id: str
    n_sources: int
    clamped_mass_total: int
    generation: int
    #: per query term: sources in this shard listing it.
    term_lengths: tuple[int, ...]
    #: per query term: sources listing it with positive df (cf_t).
    term_collection_frequencies: tuple[int, ...]
    #: per query term: total postings — additive, so the root's routing
    #: goodness over these equals vGlOSS-Sum of the merged summary.
    term_postings: tuple[int, ...]
    #: the first k source ids in id order — exactly the sources that
    #: can still make the global top-k if this whole leaf scores the
    #: selector's sparse default.
    fill_ids: tuple[str, ...]

    def touches(self) -> bool:
        """Whether any query term appears in this leaf's shard."""
        return any(self.term_lengths)


class GlobalStatsView(SummaryIndex):
    """A leaf shard scored as if it were the whole federation's index.

    Delegates every per-source read to the local shard and overrides
    only the corpus-level statistics with the root's exact aggregates.
    Deliberately skips ``SummaryIndex.__init__``: the view holds no
    columns of its own and must never be mutated.
    """

    # noqa: the base initializer is intentionally not called.
    def __init__(self, local: SummaryIndex, stats: CorpusStats) -> None:
        self._local = local
        self._stats = stats

    # -- corpus statistics: the root's aggregates --------------------------

    def __len__(self) -> int:
        return self._stats.n_sources

    def mean_clamped_word_mass(self) -> float:
        if not self._stats.n_sources:
            return 0.0
        return float(self._stats.clamped_mass_total) / self._stats.n_sources

    def term_columns(self, term: str) -> TermColumns:
        # Not ``_replace``: TermColumns overrides ``__len__`` (shard
        # length), which breaks namedtuple's arity check.
        columns = self._local.term_columns(term)
        return TermColumns(
            columns.ordinals,
            columns.document_frequencies,
            columns.postings,
            self._stats.collection_frequencies.get(term, 0),
            columns.positions,
        )

    def collection_frequency(self, term: str) -> int:
        return self._stats.collection_frequencies.get(term, 0)

    # -- per-source reads: the local shard ---------------------------------

    def __contains__(self, source_id: str) -> bool:
        return source_id in self._local

    def source_id(self, ordinal: int) -> str:
        return self._local.source_id(ordinal)

    def num_docs(self, ordinal: int) -> int:
        return self._local.num_docs(ordinal)

    def clamped_word_mass(self, ordinal: int) -> float:
        return self._local.clamped_word_mass(ordinal)

    def sorted_sources(self) -> list[tuple[str, int]]:
        return self._local.sorted_sources()

    def source_ids(self) -> list[str]:
        return self._local.source_ids()

    def summaries(self) -> dict[str, SContentSummary]:
        return self._local.summaries()

    def summary(self, source_id: str) -> SContentSummary:
        return self._local.summary(source_id)

    @property
    def generation(self) -> int:  # type: ignore[override]
        return self._local.generation


class LeafBroker:
    """One shard: a primary index, a standby, and the delta log between.

    Args:
        leaf_id: the leaf's name on the ring and in metrics labels.
        eager_replication: replay each delta into the standby as it
            arrives (zero recovery lag, double write cost) instead of
            batching replays until :meth:`replicate` or a failover.
    """

    def __init__(self, leaf_id: str, eager_replication: bool = False) -> None:
        self.leaf_id = leaf_id
        self.eager_replication = eager_replication
        self.index = SummaryIndex()
        self._standby = SummaryIndex()
        #: the shard's delta log, the replication source of truth.
        self._log: list[tuple[str, SContentSummary | None]] = []
        self._standby_applied = 0
        self._down = False
        self._aggregate_cache: tuple[int, SContentSummary] | None = None
        #: how much of the upstream delta stream a warm restore already
        #: covers (0 for a cold broker); the caller replays only the
        #: stream suffix past this cursor.
        self.restored_log_position = 0

    # -- checkpointing -----------------------------------------------------

    def save_checkpoint(self, path) -> int:
        """Checkpoint this shard; returns the recorded log position."""
        from repro.storage.checkpoint import save_leaf_checkpoint

        return save_leaf_checkpoint(self, path)

    @classmethod
    def from_checkpoint(
        cls, path, eager_replication: bool = False
    ) -> "LeafBroker":
        """Warm a broker from a checkpoint instead of replaying history.

        The returned broker's :attr:`restored_log_position` is the
        delta-stream cursor the checkpoint covers; apply only the
        deltas logged after it.
        """
        from repro.storage.checkpoint import load_leaf_checkpoint

        return load_leaf_checkpoint(path, eager_replication)

    # -- delta stream ------------------------------------------------------

    def apply_delta(self, source_id: str, summary: SContentSummary | None) -> None:
        """One discovery delta: add/replace on a summary, remove on None.

        Deltas are accepted even while the primary is down — harvesting
        is upstream of serving — and replayed into whichever index is
        promoted next.
        """
        self._log.append((source_id, summary))
        self.index.update(source_id, summary)
        if self.eager_replication:
            self.replicate()

    def replicate(self) -> int:
        """Replay the delta-log suffix the standby has not seen yet.

        Returns how many deltas were replayed.  Afterwards the standby's
        generation equals the primary's: both indexes were built from
        the identical delta sequence.
        """
        pending = self._log[self._standby_applied :]
        for source_id, summary in pending:
            self._standby.update(source_id, summary)
        self._standby_applied = len(self._log)
        return len(pending)

    @property
    def replication_lag(self) -> int:
        """Deltas the standby is behind — what a failover must replay."""
        return len(self._log) - self._standby_applied

    @property
    def in_sync(self) -> bool:
        return self.replication_lag == 0

    # -- failure and failover ----------------------------------------------

    @property
    def is_down(self) -> bool:
        return self._down

    def fail(self) -> None:
        """Simulate losing the primary: serving raises until failover."""
        self._down = True

    def fail_over(self) -> None:
        """Promote the standby: catch it up from the log, then swap.

        The old primary is discarded and a cold standby takes its place;
        the next :meth:`replicate` rebuilds it from the full log.
        """
        self.replicate()
        self.index = self._standby
        self._standby = SummaryIndex()
        self._standby_applied = 0
        self._down = False
        self._aggregate_cache = None

    def _require_up(self) -> None:
        if self._down:
            raise LeafUnavailableError(f"leaf {self.leaf_id!r} is down")

    # -- serving -----------------------------------------------------------

    def probe(self, terms: Sequence[str], k: int) -> LeafProbe:
        """Round one: aggregate statistics only, no per-source data."""
        self._require_up()
        index = self.index
        columns = [index.term_columns(term) for term in terms]
        fill: list[str] = []
        for source_id, _ in index.sorted_sources():
            if len(fill) >= k:
                break
            fill.append(source_id)
        return LeafProbe(
            leaf_id=self.leaf_id,
            n_sources=len(index),
            clamped_mass_total=index.clamped_mass_total,
            generation=index.generation,
            term_lengths=tuple(len(column) for column in columns),
            term_collection_frequencies=tuple(
                column.collection_frequency for column in columns
            ),
            term_postings=tuple(sum(column.postings) for column in columns),
            fill_ids=tuple(fill),
        )

    def select_candidates(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        k: int,
        stats: CorpusStats,
    ) -> list[tuple[str, float]]:
        """Round two: this shard's exact fragment of the global top-k."""
        self._require_up()
        return selector.top_candidates(terms, GlobalStatsView(self.index, stats), k)

    def rank_all(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        stats: CorpusStats,
    ) -> list[tuple[str, float]]:
        """Every local source scored with global statistics, best first."""
        self._require_up()
        return selector.rank(terms, GlobalStatsView(self.index, stats))

    def aggregate_summary(self) -> SContentSummary:
        """The exact merged summary of the shard (generation-cached)."""
        self._require_up()
        cached = self._aggregate_cache
        if cached is not None and cached[0] == self.index.generation:
            return cached[1]
        merged = merge_summaries(list(self.index.summaries().values()))
        self._aggregate_cache = (self.index.generation, merged)
        return merged

    def shard_stats(self) -> dict[str, int | bool | str]:
        """One row of the CLI's per-leaf table (and the wire endpoint)."""
        return {
            "leaf": self.leaf_id,
            "sources": len(self.index),
            "terms": self.index.term_count,
            "generation": self.index.generation,
            "replication_lag": self.replication_lag,
            "in_sync": self.in_sync,
        }
