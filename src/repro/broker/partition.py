"""Consistent-hash partitioning of sources over leaf brokers.

The root broker must send every source's summary delta to exactly one
leaf, keep doing so across restarts, and move as few sources as
possible when a leaf joins or drains.  A consistent-hash ring with
virtual nodes gives all three: each member is hashed onto the ring at
``replicas`` points, a key belongs to the first member point at or
after its own hash, and adding or removing one member only remaps the
keys that fell between its points and their predecessors — roughly a
``1/n`` fraction instead of nearly everything, as a modulo scheme
would.

Hashing is ``zlib.crc32`` rather than ``hash()``: Python string hashing
is salted per process, and a routing table that changes between runs
would silently reshard every leaf.
"""

from __future__ import annotations

import bisect
import zlib
from collections.abc import Iterable

__all__ = ["ConsistentHashRing"]


def _point(label: str) -> int:
    return zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF


class ConsistentHashRing:
    """Deterministic key → member assignment with minimal reshuffling.

    Args:
        members: initial member names (leaf broker ids).
        replicas: virtual nodes per member; more replicas smooth the
            load spread at the cost of a larger (still tiny) ring.
    """

    def __init__(self, members: Iterable[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._members: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def members(self) -> list[str]:
        return sorted(self._members)

    def add(self, member: str) -> None:
        if member in self._members:
            raise ValueError(f"member already on the ring: {member!r}")
        self._members.add(member)
        for replica in range(self.replicas):
            # Ties between distinct labels are resolved by the point
            # tuple's second element, deterministically.
            bisect.insort(self._points, (_point(f"{member}#{replica}"), member))

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise ValueError(f"not a ring member: {member!r}")
        self._members.remove(member)
        self._points = [point for point in self._points if point[1] != member]

    def locate(self, key: str) -> str:
        """The member that owns ``key`` — first point at/after its hash."""
        if not self._points:
            raise ValueError("the ring has no members")
        index = bisect.bisect_left(self._points, (_point(key), ""))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]

    def assignments(self, keys: Iterable[str]) -> dict[str, list[str]]:
        """member → sorted keys it owns (members with none included)."""
        table: dict[str, list[str]] = {member: [] for member in self._members}
        for key in keys:
            table[self.locate(key)].append(key)
        for owned in table.values():
            owned.sort()
        return table
