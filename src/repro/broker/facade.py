"""The one-line swap: a :class:`Metasearcher` whose selection is tiered.

``BrokeredMetasearcher`` satisfies the whole ``Metasearcher`` surface —
``search``, ``search_stream``, ``explain_plan``, caching, health,
policies — and changes exactly one phase: source selection runs
through a root/leaf broker hierarchy instead of the flat summary
index.  The hierarchy is fed by the discovery delta stream (every
harvest, re-harvest and ``forget`` routed through the consistent-hash
ring to the owning leaf), so it is coherent with the flat index by
construction; and because brokered selection is bit-exact for
distributable selectors, search results are bit-identical to the flat
metasearcher's.  A non-distributable selector (random, cost-aware)
falls back to the flat index transparently.
"""

from __future__ import annotations

from repro.broker.leaf import LeafBroker
from repro.broker.root import AdmissionPolicy, RootBroker, RoutingPolicy
from repro.federation.executor import Executor
from repro.metasearch.client import Metasearcher, _observe_phase
from repro.metasearch.selection import SourceSelector
from repro.observability.health import HealthPolicy

__all__ = ["BrokeredMetasearcher", "build_hierarchy"]


def build_hierarchy(
    n_leaves: int,
    executor: Executor | None = None,
    admission: AdmissionPolicy | None = None,
    routing: RoutingPolicy | None = None,
    eager_replication: bool = False,
    health_policy: HealthPolicy | None = None,
    leaf_prefix: str = "leaf",
    broker_id: str = "root",
    slo_monitor=None,
) -> RootBroker:
    """A root over ``n_leaves`` fresh in-process leaf brokers.

    Leaf ids are ``{leaf_prefix}-00`` … so the ring's routing table is
    deterministic for a given leaf count.
    """
    if n_leaves < 1:
        raise ValueError("n_leaves must be >= 1")
    leaves = [
        LeafBroker(f"{leaf_prefix}-{index:02d}", eager_replication=eager_replication)
        for index in range(n_leaves)
    ]
    return RootBroker(
        leaves,
        executor=executor,
        admission=admission,
        routing=routing,
        health_policy=health_policy,
        broker_id=broker_id,
        slo_monitor=slo_monitor,
    )


class BrokeredMetasearcher(Metasearcher):
    """A :class:`Metasearcher` selecting through a broker hierarchy.

    Args:
        internet / resource_urls / **kwargs: exactly as
            :class:`Metasearcher`.
        broker: a prebuilt :class:`RootBroker` (nested trees, network
            leaves); mutually exclusive with the ``n_leaves`` shortcut.
        n_leaves: build a fresh local hierarchy this wide (default 4).
        admission / routing: hierarchy policies for the built root.
        broker_executor: fan-out executor for leaf consultations;
            defaults to the searcher's own executor, so a parallel or
            async metasearcher fans out over its leaves the same way it
            fans out over its sources.
    """

    def __init__(
        self,
        internet,
        resource_urls=None,
        broker: RootBroker | None = None,
        n_leaves: int = 4,
        admission: AdmissionPolicy | None = None,
        routing: RoutingPolicy | None = None,
        broker_executor: Executor | None = None,
        eager_replication: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(internet, resource_urls, **kwargs)
        if broker is not None and (admission or routing or broker_executor):
            raise ValueError("pass policies to the prebuilt broker, not both")
        self.broker = broker or build_hierarchy(
            n_leaves,
            executor=broker_executor or self.executor,
            admission=admission,
            routing=routing,
            eager_replication=eager_replication,
        )
        # Every discovery delta — harvest, re-harvest, forget — routes
        # through the ring to the owning leaf, in the exact order the
        # flat index saw it.
        self.discovery.add_delta_hook(self.broker.apply_delta)

    def _select(self, tracer, selector, terms, k_sources, known):
        with tracer.span(
            "select", selector=selector.name, k=k_sources, brokered=True
        ) as span:
            summaries = self.discovery.summaries()
            if summaries:
                selected_ids = self._select_sources(
                    tracer, selector, terms, k_sources
                )
            else:
                selected_ids = [source.source_id for source in known[:k_sources]]
            if self.health is not None:
                reordered = self.health.order_by_health(selected_ids)
                if reordered != selected_ids:
                    span.annotate(deprioritized=True)
                selected_ids = reordered
            span.annotate(
                summaries=len(summaries), selected=" ".join(selected_ids)
            )
        _observe_phase("select", span.duration_ms)
        return selected_ids, summaries

    def _select_sources(
        self,
        tracer,
        selector: SourceSelector,
        terms: list[str],
        k_sources: int,
    ) -> list[str]:
        if not getattr(selector, "distributable", False):
            # A global permutation or cross-source discount cannot be
            # sharded; the flat index answers it, same as the base class.
            return selector.select(
                terms, self.discovery.summary_index(), k_sources
            )
        return self.broker.select(selector, terms, k_sources, tracer=tracer)
