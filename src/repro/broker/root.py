"""The root broker: selection-over-brokers with exact descent.

A query round against the hierarchy is two fan-outs over the
:class:`~repro.federation.Executor` protocol:

1. **Probe** — every leaf returns its :class:`~repro.broker.LeafProbe`:
   aggregate corpus statistics plus per-query-term shard sizes.  The
   root sums the integer statistics into the exact
   :class:`~repro.broker.CorpusStats` of the whole federation.
2. **Descend** — only into leaves whose shards contain at least one
   query term (for *prunable* selectors; others always descend).  Each
   descended leaf scores its shard through a
   :class:`~repro.broker.GlobalStatsView` and returns its exact top-k
   fragment; a pruned leaf is stood in for by its probe's first-k
   source ids at the selector's ``sparse_default`` — provably the score
   of every source it holds.  Merging all fragments with
   :func:`~repro.metasearch.selection.order_key` reproduces the flat
   index's top-k bit for bit.

The root is itself a leaf handle — ``probe`` / ``select_candidates`` /
``rank_all`` / ``apply_delta`` — so hierarchies nest: a sub-root
aggregates its own children's probes and passes the *global* statistics
it was handed straight down, keeping exactness through any depth.

Operationally the root adds what a front door needs: admission control
(shed on concurrent-query pressure or on a broadly unhealthy leaf
fleet, counted in ``broker_shed_total``), per-leaf
:class:`~repro.observability.SourceHealth` scoring fed by every
consultation, and one automatic failover retry when a leaf raises —
the standby is promoted and the consultation repeated before the error
is allowed to surface.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from threading import Lock
from typing import Protocol, runtime_checkable

from repro.broker.leaf import CorpusStats, LeafProbe
from repro.broker.partition import ConsistentHashRing
from repro.federation.executor import Executor, SerialExecutor, run_tasks_catching
from repro.metasearch.selection import SourceSelector, order_key
from repro.observability.health import HealthPolicy, SourceHealth
from repro.observability.metrics import get_registry, linear_buckets
from repro.observability.tracing import (
    ambient_span,
    current_ambient_span,
    trace_context,
)
from repro.starts.metadata import SContentSummary

__all__ = [
    "AdmissionPolicy",
    "BrokerOverloadedError",
    "LeafHandle",
    "RootBroker",
    "RoutingPolicy",
]


class BrokerOverloadedError(RuntimeError):
    """The root shed this query instead of admitting it.

    Attributes:
        reason: the shed counter label — ``"inflight"``,
            ``"unhealthy"``, or ``"budget"``.
    """

    def __init__(self, message: str, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


@runtime_checkable
class LeafHandle(Protocol):
    """What the root requires of a child — leaf, sub-root, or network."""

    leaf_id: str

    def probe(self, terms: Sequence[str], k: int) -> LeafProbe: ...

    def select_candidates(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        k: int,
        stats: CorpusStats,
    ) -> list[tuple[str, float]]: ...

    def rank_all(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        stats: CorpusStats,
    ) -> list[tuple[str, float]]: ...

    def apply_delta(self, source_id: str, summary: SContentSummary | None) -> None: ...

    def fail_over(self) -> None: ...


@dataclass(frozen=True)
class AdmissionPolicy:
    """When the root refuses work instead of degrading everyone's.

    Attributes:
        max_inflight: concurrent selections admitted at once; ``None``
            admits everything.
        min_mean_leaf_health: shed while the mean 0-1 health score of
            the leaf fleet is below this — queries that would mostly
            hit failing shards are better refused than half-answered.
        min_budget_remaining: shed while the tightest SLO error budget
            (per the broker's :class:`~repro.observability.SloMonitor`)
            is below this 0-1 floor — spend latency slack on fewer
            queries rather than miss the promise for all of them.
            Ignored when the broker has no monitor.
    """

    max_inflight: int | None = None
    min_mean_leaf_health: float | None = None
    min_budget_remaining: float | None = None

    def __post_init__(self) -> None:
        if self.max_inflight is not None and self.max_inflight < 0:
            raise ValueError("max_inflight must be >= 0")
        if self.min_budget_remaining is not None and not (
            0.0 <= self.min_budget_remaining <= 1.0
        ):
            raise ValueError("min_budget_remaining must be within [0, 1]")


@dataclass(frozen=True)
class RoutingPolicy:
    """How far a selection may descend.

    Attributes:
        max_fanout: cap on leaves descended per selection; the most
            promising leaves (by summed query-term postings of their
            aggregate summaries — additive, so this *is* vGlOSS-Sum of
            the merged summary) are kept.  ``None`` descends into every
            touched leaf and keeps the result bit-exact; a cap trades
            exactness for bounded fan-out, GlOSS-style.
    """

    max_fanout: int | None = None

    def __post_init__(self) -> None:
        if self.max_fanout is not None and self.max_fanout < 1:
            raise ValueError("max_fanout must be >= 1")


def _aggregate_stats(terms: Sequence[str], probes: Sequence[LeafProbe]) -> CorpusStats:
    """Sum the leaves' integer statistics — exact in any order."""
    collection_frequencies: dict[str, int] = {}
    for position, term in enumerate(terms):
        collection_frequencies[term] = sum(
            probe.term_collection_frequencies[position] for probe in probes
        )
    return CorpusStats(
        n_sources=sum(probe.n_sources for probe in probes),
        clamped_mass_total=sum(probe.clamped_mass_total for probe in probes),
        collection_frequencies=collection_frequencies,
    )


class RootBroker:
    """Selection-over-brokers: probe, prune, descend, merge.

    Args:
        handles: the children — :class:`~repro.broker.LeafBroker`,
            network handles, or nested :class:`RootBroker` instances.
        executor: drives both fan-out rounds; defaults to serial.
        admission: shed policy; the default admits everything.
        routing: descent policy; the default stays bit-exact.
        health: per-leaf health tracker (a fresh one by default), fed
            by every consultation and read by admission control.
        broker_id: this node's name as a child of a bigger hierarchy.
        ring_replicas: virtual nodes per leaf on the routing ring; more
            replicas tighten the shard-size spread, which directly caps
            the slowest leaf in a parallel fan-out.
        slo_monitor: optional :class:`~repro.observability.SloMonitor`;
            with it (and ``admission.min_budget_remaining``) the broker
            sheds while the tightest error budget is burning low.
    """

    def __init__(
        self,
        handles: Sequence[LeafHandle],
        executor: Executor | None = None,
        admission: AdmissionPolicy | None = None,
        routing: RoutingPolicy | None = None,
        health: SourceHealth | None = None,
        health_policy: HealthPolicy | None = None,
        broker_id: str = "root",
        ring_replicas: int = 128,
        slo_monitor=None,
    ) -> None:
        seen: set[str] = set()
        for handle in handles:
            if handle.leaf_id in seen:
                raise ValueError(f"duplicate leaf id: {handle.leaf_id!r}")
            seen.add(handle.leaf_id)
        self.leaf_id = broker_id
        self._handles: list[LeafHandle] = list(handles)
        self._by_id = {handle.leaf_id: handle for handle in self._handles}
        self.executor: Executor = executor or SerialExecutor()
        self.admission = admission or AdmissionPolicy()
        self.routing = routing or RoutingPolicy()
        self.health = health or SourceHealth(policy=health_policy)
        self.slo_monitor = slo_monitor
        self.ring = ConsistentHashRing(self._by_id, replicas=ring_replicas)
        self._inflight = 0
        self._inflight_lock = Lock()
        #: per-leaf wall time of the last selection's consultations,
        #: and the max/sum across leaves — the parallel- and serial-
        #: deployment costs of that selection (see the scale benchmark).
        self.last_leaf_elapsed_ms: dict[str, float] = {}
        self.last_parallel_ms = 0.0
        self.last_serial_ms = 0.0

    # -- topology ----------------------------------------------------------

    def handles(self) -> list[LeafHandle]:
        return list(self._handles)

    def handle(self, leaf_id: str) -> LeafHandle:
        return self._by_id[leaf_id]

    def routing_table(self, source_ids: Sequence[str]) -> dict[str, list[str]]:
        """leaf id → the given sources it owns, per the ring."""
        return self.ring.assignments(source_ids)

    # -- the delta stream --------------------------------------------------

    def apply_delta(self, source_id: str, summary: SContentSummary | None) -> None:
        """Route one discovery delta to the owning child."""
        self._by_id[self.ring.locate(source_id)].apply_delta(source_id, summary)

    def fail_over(self) -> None:
        """A root has no standby of its own; children fail over alone."""

    # -- admission ---------------------------------------------------------

    def _shed(self, reason: str, message: str) -> None:
        get_registry().counter(
            "broker_shed_total",
            "Selections refused by broker admission control, by reason.",
            labels=("reason",),
        ).labels(reason=reason).inc()
        raise BrokerOverloadedError(message, reason)

    def _admit(self) -> None:
        limit = self.admission.max_inflight
        if limit is not None:
            with self._inflight_lock:
                if self._inflight >= limit:
                    self._shed(
                        "inflight",
                        f"{self._inflight} selections in flight (limit {limit})",
                    )
                self._inflight += 1
        floor = self.admission.min_mean_leaf_health
        if floor is not None and self._handles:
            mean = sum(
                self.health.score(handle.leaf_id) for handle in self._handles
            ) / len(self._handles)
            if mean < floor:
                if limit is not None:
                    self._release()
                self._shed(
                    "unhealthy",
                    f"mean leaf health {mean:.2f} below {floor:.2f}",
                )
        budget_floor = self.admission.min_budget_remaining
        if budget_floor is not None and self.slo_monitor is not None:
            remaining = self.slo_monitor.min_budget_remaining()
            if remaining < budget_floor:
                if limit is not None:
                    self._release()
                self._shed(
                    "budget",
                    f"SLO error budget {remaining:.2f} below "
                    f"{budget_floor:.2f}",
                )

    def _release(self) -> None:
        if self.admission.max_inflight is not None:
            with self._inflight_lock:
                self._inflight -= 1

    # -- consulting children -----------------------------------------------

    def _consult(
        self,
        handles: Sequence[LeafHandle],
        fn: Callable[[LeafHandle], object],
        op: str = "consult",
    ) -> list[object]:
        """Fan out ``fn`` with per-leaf timing, health, and failover.

        A failing leaf gets one failover-and-retry (standby promotion)
        before its error surfaces; every attempt feeds the health
        tracker either way.

        When an ambient span is active in the *calling* thread, each
        per-leaf call gets its own ``rpc:{op}:{leaf}`` child span, with
        the matching trace context activated inside the worker — that
        context is what a :class:`~repro.broker.NetworkLeafHandle`
        injects on the wire, so server-side fragments stitch under the
        exact RPC span that issued them.  Contextvars do not cross the
        executor's thread pool, hence the explicit capture here.
        """
        ambient = current_ambient_span()

        def traced(handle: LeafHandle) -> object:
            if ambient is None:
                return fn(handle)
            tracer, parent = ambient
            rpc = tracer.open_span(f"rpc:{op}:{handle.leaf_id}", parent=parent)
            try:
                with ambient_span(tracer, rpc), trace_context(
                    tracer.context_for(rpc)
                ):
                    return fn(handle)
            except Exception as error:
                rpc.annotate(error=repr(error))
                raise
            finally:
                tracer.close_span(rpc)

        def timed(handle: LeafHandle) -> tuple[object, float]:
            started = time.perf_counter()
            result = traced(handle)
            return result, (time.perf_counter() - started) * 1000.0

        outcomes = run_tasks_catching(self.executor, handles, timed)
        results: list[object] = []
        for handle, (outcome, error) in zip(handles, outcomes):
            if error is None:
                result, elapsed_ms = outcome
                self.health.record_attempt(handle.leaf_id, "ok", elapsed_ms)
                self._note_elapsed(handle.leaf_id, elapsed_ms)
                results.append(result)
                continue
            self.health.record_attempt(handle.leaf_id, "error", 0.0)
            get_registry().counter(
                "broker_failovers_total",
                "Leaf failovers triggered by a failed consultation.",
                labels=("leaf",),
            ).labels(leaf=handle.leaf_id).inc()
            handle.fail_over()
            started = time.perf_counter()
            result = traced(handle)  # a second failure surfaces to the caller
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self.health.record_attempt(handle.leaf_id, "ok", elapsed_ms)
            self._note_elapsed(handle.leaf_id, elapsed_ms)
            results.append(result)
        return results

    def _note_elapsed(self, leaf_id: str, elapsed_ms: float) -> None:
        total = self.last_leaf_elapsed_ms.get(leaf_id, 0.0) + elapsed_ms
        self.last_leaf_elapsed_ms[leaf_id] = total
        self.last_serial_ms += elapsed_ms
        self.last_parallel_ms = max(self.last_parallel_ms, total)

    def _reset_timings(self) -> None:
        self.last_leaf_elapsed_ms = {}
        self.last_parallel_ms = 0.0
        self.last_serial_ms = 0.0

    # -- selection ---------------------------------------------------------

    def _require_distributable(self, selector: SourceSelector) -> None:
        if not getattr(selector, "distributable", False):
            raise ValueError(
                f"selector {selector.name!r} is not distributable across "
                "broker shards; use the flat index for it"
            )

    def _plan_descent(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        probes: Sequence[LeafProbe],
    ) -> tuple[list[LeafProbe], list[LeafProbe]]:
        """(descend, pruned) — pruning only when provably exact.

        A leaf is prunable when the selector promises that a shard with
        no query term scores every source at ``sparse_default`` — then
        the probe's fill ids stand in for the whole leaf.  An optional
        ``max_fanout`` additionally keeps only the most promising
        touched leaves (by additive postings mass), which is the lossy
        GlOSS trade — never applied by default.
        """
        if not getattr(selector, "prunable", False) or not terms:
            descend = list(probes)
            pruned: list[LeafProbe] = []
        else:
            descend = [probe for probe in probes if probe.touches()]
            pruned = [probe for probe in probes if not probe.touches()]
        cap = self.routing.max_fanout
        if cap is not None and len(descend) > cap:
            descend.sort(key=lambda probe: (-sum(probe.term_postings), probe.leaf_id))
            descend, capped = descend[:cap], descend[cap:]
            pruned.extend(capped)
        return descend, pruned

    def _probe_round(
        self, terms: Sequence[str], k: int
    ) -> tuple[list[LeafProbe], CorpusStats]:
        probes = self._consult(
            self._handles, lambda handle: handle.probe(terms, k), op="probe"
        )
        return probes, _aggregate_stats(terms, probes)  # type: ignore[arg-type]

    def _descend(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        k: int,
        stats: CorpusStats,
        probes: Sequence[LeafProbe],
    ) -> list[tuple[str, float]]:
        """Rounds two and three: descend, fill, merge — the exact top-k."""
        descend, pruned = self._plan_descent(selector, terms, probes)
        registry = get_registry()
        selections = registry.counter(
            "broker_leaf_selections_total",
            "Leaf shards actually scored for a brokered selection.",
            labels=("leaf",),
        )
        by_id = self._by_id
        fragments = self._consult(
            [by_id[probe.leaf_id] for probe in descend],
            lambda handle: handle.select_candidates(selector, terms, k, stats),
            op="select",
        )
        pool: list[tuple[str, float]] = []
        for probe, fragment in zip(descend, fragments):
            selections.labels(leaf=probe.leaf_id).inc()
            pool.extend(fragment)  # type: ignore[arg-type]
        if pruned:
            default = selector.sparse_default(terms, stats.n_sources)
            for probe in pruned:
                pool.extend(
                    (source_id, default) for source_id in probe.fill_ids
                )
        registry.histogram(
            "broker_route_depth",
            "Leaves descended into (shards scored) per brokered selection.",
            buckets=linear_buckets(0.0, 16.0),
        ).observe(float(len(descend)))
        return heapq.nsmallest(k, pool, key=order_key)

    def top_candidates(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        k: int,
    ) -> list[tuple[str, float]]:
        """The hierarchy's exact global top-k ``(source_id, goodness)``."""
        self._require_distributable(selector)
        if k <= 0 or not self._handles:
            return []
        self._admit()
        try:
            self._reset_timings()
            probes, stats = self._probe_round(terms, k)
            return self._descend(selector, terms, k, stats, probes)
        finally:
            self._release()

    def select(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        k: int,
        tracer=None,
    ) -> list[str]:
        """The ids of the exact top-k sources, best first.

        Bit-identical to ``selector.select(terms, flat_index, k)`` for
        any distributable selector (and any routing without a fan-out
        cap) — the flat index stays the oracle of this subsystem.
        """
        if tracer is None:
            return [source_id for source_id, _ in self.top_candidates(selector, terms, k)]
        with tracer.span(
            "select:broker", selector=selector.name, k=k, leaves=len(self._handles)
        ) as span:
            with ambient_span(tracer, span), trace_context(
                tracer.context_for(span)
            ):
                merged = self.top_candidates(selector, terms, k)
            span.annotate(
                selected=" ".join(source_id for source_id, _ in merged),
                parallel_ms=round(self.last_parallel_ms, 3),
            )
        return [source_id for source_id, _ in merged]

    def rank(
        self, selector: SourceSelector, terms: Sequence[str]
    ) -> list[tuple[str, float]]:
        """The full global ranking — every leaf consulted, no pruning."""
        self._require_distributable(selector)
        if not self._handles:
            return []
        self._admit()
        try:
            self._reset_timings()
            probes, stats = self._probe_round(terms, 0)
            rankings = self._consult(
                self._handles,
                lambda handle: handle.rank_all(selector, terms, stats),
                op="rank",
            )
            merged: list[tuple[str, float]] = []
            for ranking in rankings:
                merged.extend(ranking)  # type: ignore[arg-type]
            merged.sort(key=order_key)
            return merged
        finally:
            self._release()

    # -- the LeafHandle protocol: roots nest -------------------------------

    def probe(self, terms: Sequence[str], k: int) -> LeafProbe:
        """Aggregate the children's probes into this subtree's claim."""
        probes = self._consult(
            self._handles, lambda handle: handle.probe(terms, k), op="probe"
        )
        fill: list[str] = []
        for probe in probes:
            fill.extend(probe.fill_ids)  # type: ignore[union-attr]
        fill.sort()
        n_terms = len(terms)
        return LeafProbe(
            leaf_id=self.leaf_id,
            n_sources=sum(probe.n_sources for probe in probes),
            clamped_mass_total=sum(probe.clamped_mass_total for probe in probes),
            generation=sum(probe.generation for probe in probes),
            term_lengths=tuple(
                sum(probe.term_lengths[position] for probe in probes)
                for position in range(n_terms)
            ),
            term_collection_frequencies=tuple(
                sum(probe.term_collection_frequencies[position] for probe in probes)
                for position in range(n_terms)
            ),
            term_postings=tuple(
                sum(probe.term_postings[position] for probe in probes)
                for position in range(n_terms)
            ),
            fill_ids=tuple(fill[:k]),
        )

    def select_candidates(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        k: int,
        stats: CorpusStats,
    ) -> list[tuple[str, float]]:
        """Descend this subtree under the *caller's* global statistics."""
        probes = self._consult(
            self._handles, lambda handle: handle.probe(terms, k), op="probe"
        )
        return self._descend(selector, terms, k, stats, probes)

    def rank_all(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        stats: CorpusStats,
    ) -> list[tuple[str, float]]:
        rankings = self._consult(
            self._handles,
            lambda handle: handle.rank_all(selector, terms, stats),
            op="rank",
        )
        merged: list[tuple[str, float]] = []
        for ranking in rankings:
            merged.extend(ranking)  # type: ignore[arg-type]
        merged.sort(key=order_key)
        return merged
