"""Leaf brokers as network endpoints on the simulated internet.

A leaf need not live in the root's process: ZBroker-style, each leaf
can be published as a set of HTTP-ish endpoints under a base URL and
consulted over the wire.  :class:`NetworkLeafHandle` implements the
same handle protocol a local :class:`~repro.broker.LeafBroker` does, so
a :class:`~repro.broker.RootBroker` cannot tell the difference — and
the simulated internet's latency/fault profiles apply to broker
traffic just as they do to source traffic.

The wire format is JSON (floats round-trip exactly through ``repr``,
so candidate scores merge bit-identically to the in-process path);
summaries ride as SOIF text, the protocol's own exchange format.
Selectors cross the wire *by name*, resolved server-side against
:data:`~repro.metasearch.selection.SELECTOR_REGISTRY` — a leaf scores
with its own selector instance, which is safe precisely because
distributable selectors carry no per-query state.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.broker.leaf import CorpusStats, LeafProbe
from repro.metasearch.selection import SELECTOR_REGISTRY, SourceSelector
from repro.starts.metadata import SContentSummary
from repro.starts.soif import parse_soif
from repro.transport.network import SimulatedInternet

__all__ = ["NetworkLeafHandle", "selector_wire_name"]


def selector_wire_name(selector: SourceSelector) -> str:
    """The registry name a selector crosses the wire as.

    Exact-class lookup: a subclass may score differently, and silently
    substituting its parent server-side would break bit-exactness.
    """
    for name, cls in SELECTOR_REGISTRY.items():
        if type(selector) is cls:
            return name
    raise ValueError(
        f"selector {selector.name!r} has no wire name; register it in "
        "SELECTOR_REGISTRY to consult network leaves with it"
    )


def _stats_payload(stats: CorpusStats) -> dict:
    return {
        "n_sources": stats.n_sources,
        "clamped_mass_total": stats.clamped_mass_total,
        "collection_frequencies": dict(stats.collection_frequencies),
    }


def stats_from_payload(payload: dict) -> CorpusStats:
    return CorpusStats(
        n_sources=payload["n_sources"],
        clamped_mass_total=payload["clamped_mass_total"],
        collection_frequencies=payload["collection_frequencies"],
    )


def probe_payload(probe: LeafProbe) -> dict:
    return {
        "leaf": probe.leaf_id,
        "n_sources": probe.n_sources,
        "clamped_mass_total": probe.clamped_mass_total,
        "generation": probe.generation,
        "term_lengths": list(probe.term_lengths),
        "term_collection_frequencies": list(probe.term_collection_frequencies),
        "term_postings": list(probe.term_postings),
        "fill_ids": list(probe.fill_ids),
    }


def _probe_from_payload(payload: dict) -> LeafProbe:
    return LeafProbe(
        leaf_id=payload["leaf"],
        n_sources=payload["n_sources"],
        clamped_mass_total=payload["clamped_mass_total"],
        generation=payload["generation"],
        term_lengths=tuple(payload["term_lengths"]),
        term_collection_frequencies=tuple(payload["term_collection_frequencies"]),
        term_postings=tuple(payload["term_postings"]),
        fill_ids=tuple(payload["fill_ids"]),
    )


class NetworkLeafHandle:
    """Consult a published leaf broker over the simulated internet."""

    def __init__(
        self, internet: SimulatedInternet, base_url: str, leaf_id: str
    ) -> None:
        self.internet = internet
        self.base_url = base_url
        self.leaf_id = leaf_id

    def _post(self, endpoint: str, payload: dict) -> dict:
        from repro.transport.client import trace_headers

        body = json.dumps(payload).encode("utf-8")
        return json.loads(
            self.internet.post(
                f"{self.base_url}/{endpoint}", body, headers=trace_headers()
            )
        )

    def probe(self, terms: Sequence[str], k: int) -> LeafProbe:
        return _probe_from_payload(
            self._post("probe", {"terms": list(terms), "k": k})
        )

    def select_candidates(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        k: int,
        stats: CorpusStats,
    ) -> list[tuple[str, float]]:
        response = self._post(
            "select",
            {
                "selector": selector_wire_name(selector),
                "terms": list(terms),
                "k": k,
                "stats": _stats_payload(stats),
            },
        )
        return [(source_id, score) for source_id, score in response["candidates"]]

    def rank_all(
        self,
        selector: SourceSelector,
        terms: Sequence[str],
        stats: CorpusStats,
    ) -> list[tuple[str, float]]:
        response = self._post(
            "rank",
            {
                "selector": selector_wire_name(selector),
                "terms": list(terms),
                "stats": _stats_payload(stats),
            },
        )
        return [(source_id, score) for source_id, score in response["ranking"]]

    def apply_delta(self, source_id: str, summary: SContentSummary | None) -> None:
        self._post(
            "delta",
            {
                "source": source_id,
                "summary": (
                    summary.to_soif().dump() if summary is not None else None
                ),
            },
        )

    def fail_over(self) -> None:
        self._post("failover", {})

    def shard_stats(self) -> dict:
        from repro.transport.client import trace_headers

        return json.loads(
            self.internet.fetch(f"{self.base_url}/stats", headers=trace_headers())
        )


def parse_summary_text(text: str | None) -> SContentSummary | None:
    """The delta endpoint's summary field: SOIF text or ``None``."""
    if text is None:
        return None
    return SContentSummary.from_soif(parse_soif(text.encode("utf-8")))
