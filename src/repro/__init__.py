"""STARTS: Stanford Protocol Proposal for Internet Retrieval and Search.

A complete, from-scratch Python reproduction of the SIGMOD 1997
experience paper by Gravano, Chang, García-Molina and Paepcke.  The
package layers:

* :mod:`repro.text` / :mod:`repro.engine` — the text-analysis and
  search-engine substrates a source is built on;
* :mod:`repro.starts` — the protocol itself: query language, SOIF
  encoding, results, metadata;
* :mod:`repro.source` / :mod:`repro.resource` — the server side;
* :mod:`repro.vendors` — six heterogeneous simulated engine vendors;
* :mod:`repro.transport` — SOIF over a simulated internet (latency,
  cost and deterministic fault injection);
* :mod:`repro.federation` — the query-round runtime: serial/parallel
  executors, per-source policies (deadlines, retries, hedging) and
  partial-result outcomes;
* :mod:`repro.observability` — spans and per-source counters threaded
  through every search, a process-wide metrics registry with
  Prometheus/Chrome-trace/NDJSON exporters, and source health scoring
  that feeds back into federation policy;
* :mod:`repro.cache` — the multi-tier caching subsystem: query-result
  cache (canonical keys, stale-while-revalidate), summary TTLs from
  MBasic-1 dates, negative caching of unreachable sources;
* :mod:`repro.metasearch` — the client: source selection, query
  translation, rank merging;
* :mod:`repro.corpus` — reproducible synthetic collections and query
  workloads with a relevance oracle.

Quickstart::

    from repro import quick_federation, Metasearcher, SQuery, parse_expression

    internet, resource_url = quick_federation(seed=7)
    searcher = Metasearcher(internet, [resource_url])
    searcher.refresh()
    result = searcher.search(
        SQuery(ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ))
    )
    for doc in result.top(5):
        print(doc.score, doc.linkage)
"""

from repro.broker import BrokeredMetasearcher
from repro.cache import CachePolicy
from repro.conformance import ConformanceReport, check_source
from repro.corpus import CollectionSpec, build_workload, generate_collection
from repro.engine import make_snippet
from repro.federation import (
    OutcomeStatus,
    ParallelExecutor,
    QueryPolicy,
    SerialExecutor,
    SourceOutcome,
)
from repro.metasearch import Metasearcher, MetasearchResult
from repro.observability import (
    HealthPolicy,
    MetricsRegistry,
    SourceHealth,
    Tracer,
    get_registry,
    render_prometheus,
    set_registry,
)
from repro.resource import Resource
from repro.source import SourceCapabilities, StartsSource
from repro.starts import (
    LString,
    SQuery,
    SQRDocument,
    SQResults,
    STerm,
    parse_expression,
)
from repro.transport import (
    FaultProfile,
    HostProfile,
    SimulatedInternet,
    TransportTimeout,
    publish_resource,
)
from repro.vendors import build_vendor_source, vendor_names

__version__ = "1.0.0"

__all__ = [
    "BrokeredMetasearcher",
    "CachePolicy",
    "ConformanceReport",
    "check_source",
    "make_snippet",
    "CollectionSpec",
    "build_workload",
    "generate_collection",
    "OutcomeStatus",
    "ParallelExecutor",
    "QueryPolicy",
    "SerialExecutor",
    "SourceOutcome",
    "Metasearcher",
    "MetasearchResult",
    "HealthPolicy",
    "MetricsRegistry",
    "SourceHealth",
    "Tracer",
    "get_registry",
    "render_prometheus",
    "set_registry",
    "Resource",
    "SourceCapabilities",
    "StartsSource",
    "LString",
    "SQuery",
    "SQRDocument",
    "SQResults",
    "STerm",
    "parse_expression",
    "FaultProfile",
    "HostProfile",
    "SimulatedInternet",
    "TransportTimeout",
    "publish_resource",
    "build_vendor_source",
    "vendor_names",
    "quick_federation",
    "__version__",
]

#: Topic mixture used by :func:`quick_federation`'s four sources.
_QUICK_TOPICS = [
    ("Source-DB", "AcmeSearch", {"databases": 0.8, "retrieval": 0.2}),
    ("Source-IR", "OkapiWorks", {"retrieval": 0.8, "databases": 0.2}),
    ("Source-Net", "InferNet", {"networking": 0.9, "databases": 0.1}),
    ("Source-Med", "ZeusFind", {"medicine": 1.0}),
]


def quick_federation(seed: int = 0, docs_per_source: int = 60):
    """Build a ready-to-query four-vendor federation on one resource.

    Returns ``(internet, resource_url)`` — everything a
    :class:`~repro.metasearch.Metasearcher` needs to get started.  The
    federation mixes four vendors (different ranking algorithms, score
    ranges and tokenizers) over four topically distinct collections.
    """
    internet = SimulatedInternet(seed=seed)
    resource = Resource("QuickFederation")
    for index, (source_id, vendor, topics) in enumerate(_QUICK_TOPICS):
        documents = generate_collection(
            CollectionSpec(
                name=source_id,
                topics=topics,
                size=docs_per_source,
                seed=seed + index,
            )
        )
        resource.add_source(build_vendor_source(vendor, source_id, documents))
    resource_url = "http://quick.example.org"
    publish_resource(internet, resource, resource_url)
    return internet, f"{resource_url}/resource"
