"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — build the quick federation and run one metasearch.
* ``query EXPR`` — run a STARTS ranking expression over the quick
  federation (e.g. ``python -m repro query '(body-of-text "databases")'``).
* ``search EXPR [--stream]`` — run a metasearch; with ``--stream``,
  print merged results incrementally (with per-emission latency) as
  sources answer, via the asyncio executor.
* ``experiment {E1,E2,E3,E4,E5,E6}`` — run one experiment and print its
  table (smaller federation than benchmarks/, for quick looks).
* ``broker [--sources N] [--leaves N] [--terms "..."]`` — shard a
  synthetic summary population across a root/leaf broker hierarchy and
  print the routing table, per-leaf shard statistics, and (with
  ``--terms``) one brokered selection.
* ``parse EXPR`` — parse an expression and print its canonical form and
  PQF encoding.
* ``metrics`` — run a few searches and print the process metrics in
  Prometheus text format.
* ``querylog`` — run a zipf-skewed search replay and print the wide
  query-log events (one flat record per search; ``--ndjson`` exports).
* ``slo`` — run a zipf-skewed replay under the default SLO policy and
  print per-objective compliance, error budgets, and burn alerts.
* ``checkpoint {save,load,inspect} DIR`` — build a segmented demo
  index and checkpoint it, warm-start an engine from the directory,
  or print the manifest (segments, generation, tombstones) without
  paging in any segment data.
* ``trace [EXPR]`` — run one traced search; print the timeline, or
  export it with ``--chrome trace.json`` / ``--ndjson events.ndjson``.
"""

from __future__ import annotations

import argparse
import sys

from repro import Metasearcher, SQuery, parse_expression, quick_federation


def _build_searcher(seed: int) -> Metasearcher:
    internet, resource_url = quick_federation(seed=seed)
    searcher = Metasearcher(internet, [resource_url])
    searcher.refresh()
    return searcher


def cmd_demo(args: argparse.Namespace) -> int:
    searcher = _build_searcher(args.seed)
    query = SQuery(
        ranking_expression=parse_expression(
            'list((body-of-text "distributed") (body-of-text "databases"))'
        ),
        max_number_documents=5,
    )
    result = searcher.search(query, k_sources=2)
    print("selected sources:", ", ".join(result.selected_sources))
    for document in result.documents:
        print(f"{document.score:10.4f}  [{document.source_id}]  {document.linkage}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    expression = parse_expression(args.expression)
    if expression is None:
        print("empty expression", file=sys.stderr)
        return 2
    searcher = _build_searcher(args.seed)
    if args.filter:
        query = SQuery(filter_expression=expression, max_number_documents=args.limit)
    else:
        query = SQuery(ranking_expression=expression, max_number_documents=args.limit)
    result = searcher.search(query, k_sources=args.sources)
    print("selected sources:", ", ".join(result.selected_sources))
    for document in result.documents:
        print(f"{document.score:10.4f}  [{document.source_id}]  {document.linkage}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    expression = parse_expression(args.expression)
    if expression is None:
        print("empty expression", file=sys.stderr)
        return 2
    searcher = _build_searcher(args.seed)
    executor = None
    if args.stream:
        from repro.federation import AsyncExecutor

        if args.realtime:
            searcher.client.internet.realtime = True
        executor = AsyncExecutor(max_concurrency=max(args.sources, 1))
    query = SQuery(ranking_expression=expression, max_number_documents=args.limit)
    if not args.stream:
        result = searcher.search(query, k_sources=args.sources)
        print("selected sources:", ", ".join(result.selected_sources))
        for document in result.documents:
            print(f"{document.score:10.4f}  [{document.source_id}]  {document.linkage}")
        return 0
    final = None
    for emission in searcher.search_stream(
        query, k_sources=args.sources, executor=executor
    ):
        if emission.is_final:
            final = emission
            continue
        source = emission.outcome.source_id if emission.outcome else "-"
        status = emission.outcome.status.value if emission.outcome else "-"
        print(
            f"[{emission.elapsed_ms:8.1f} ms] #{emission.sequence} "
            f"{source}: {status}  merged={len(emission.documents)} "
            f"pending={emission.pending}"
        )
    if final is None:
        return 1
    flag = "  (terminated early)" if final.terminated_early else ""
    print(f"final after {final.elapsed_ms:.1f} ms{flag}:")
    for document in final.documents:
        print(f"{document.score:10.4f}  [{document.source_id}]  {document.linkage}")
    return 0


def cmd_parse(args: argparse.Namespace) -> int:
    expression = parse_expression(args.expression)
    if expression is None:
        print("empty expression", file=sys.stderr)
        return 2
    print("canonical:", expression.serialize())
    try:
        from repro.zdsr import starts_to_pqf

        print("pqf:      ", starts_to_pqf(expression))
    except KeyError as error:
        print(f"pqf:       (no ZDSR mapping for {error})")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    expression = parse_expression(args.expression)
    if expression is None:
        print("empty expression", file=sys.stderr)
        return 2
    searcher = _build_searcher(args.seed)
    query = SQuery(ranking_expression=expression)
    print(searcher.explain_plan(query, k_sources=args.sources))
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    from repro.metasearch import (
        BGloss,
        BySize,
        Cori,
        RandomSelector,
        SelectAll,
        VGlossMax,
        VGlossSum,
    )

    selectors = {
        "cori": Cori,
        "bgloss": BGloss,
        "vgloss-sum": VGlossSum,
        "vgloss-max": VGlossMax,
        "by-size": BySize,
        "select-all": SelectAll,
        "random": RandomSelector,
    }
    terms = args.terms.split()
    if not terms:
        print("empty query", file=sys.stderr)
        return 2
    searcher = _build_searcher(args.seed)
    index = searcher.discovery.summary_index()
    selector = selectors[args.selector]()
    chosen = set(selector.select(terms, index, args.k))
    print(f"selector: {args.selector}   terms: {' '.join(terms)}")
    print(f"sources:  {len(index)} harvested, top {args.k} requested")
    print(f"{'rank':>4}  {'goodness':>12}  source")
    for rank, (source_id, goodness) in enumerate(selector.rank(terms, index), 1):
        marker = "*" if source_id in chosen else " "
        print(f"{rank:>4}{marker} {goodness:>12.4f}  {source_id}")
    return 0


def cmd_broker(args: argparse.Namespace) -> int:
    from repro.broker import build_hierarchy
    from repro.corpus import SummaryPopulationSpec, generate_source_summaries
    from repro.metasearch import SELECTOR_REGISTRY

    spec = SummaryPopulationSpec(n_sources=args.sources, seed=args.seed)
    summaries = generate_source_summaries(spec)
    root = build_hierarchy(args.leaves)
    for source_id, summary in summaries.items():
        root.apply_delta(source_id, summary)

    table = root.routing_table(sorted(summaries))
    print(f"hierarchy: root over {args.leaves} leaves, "
          f"{len(summaries)} sources on the ring")
    print()
    print(f"{'leaf':<10} {'sources':>8} {'terms':>8} {'gen':>6} "
          f"{'lag':>4}  first sources owned")
    for leaf in root.handles():
        stats = leaf.shard_stats()
        owned = table[leaf.leaf_id]
        preview = ", ".join(owned[:3]) + (", ..." if len(owned) > 3 else "")
        print(
            f"{stats['leaf']:<10} {stats['sources']:>8} {stats['terms']:>8} "
            f"{stats['generation']:>6} {stats['replication_lag']:>4}  {preview}"
        )

    terms = args.terms.split() if args.terms else []
    if terms:
        selector = SELECTOR_REGISTRY[args.selector]()
        selected = root.select(selector, terms, args.k)
        print()
        print(f"selection: {args.selector} over {' '.join(terms)}, "
              f"top {args.k}")
        print(f"  descended leaves (parallel {root.last_parallel_ms:.2f} ms, "
              f"serial {root.last_serial_ms:.2f} ms):")
        for leaf_id, elapsed in sorted(root.last_leaf_elapsed_ms.items()):
            print(f"    {leaf_id:<10} {elapsed:8.2f} ms")
        for rank, source_id in enumerate(selected, 1):
            print(f"  {rank:>4}  {source_id}  (leaf {root.ring.locate(source_id)})")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        FederationSpec,
        build_federation,
        run_end_to_end_experiment,
        run_merging_experiment,
        run_selection_experiment,
        run_summary_size_experiment,
        run_translation_experiment,
        least_common_denominator,
    )

    federation = build_federation(
        FederationSpec(n_sources=6, docs_per_source=40, n_queries=20, seed=args.seed)
    )
    experiment = args.id.upper()
    if experiment == "E1":
        for row in run_selection_experiment(federation):
            print(row.row())
    elif experiment == "E2":
        for row in run_merging_experiment(federation, n_queries=15):
            print(row.row())
    elif experiment == "E3":
        cells = run_translation_experiment(federation)
        lossless = sum(1 for cell in cells if cell.lossless)
        predicted = sum(1 for cell in cells if cell.prediction_matches_actual)
        print(f"lossless cells:       {lossless}/{len(cells)}")
        print(f"predictions correct:  {predicted}/{len(cells)}")
        print(f"least common denom.:  {', '.join(least_common_denominator(cells))}")
    elif experiment == "E4":
        for row in run_summary_size_experiment():
            print(row.row())
    elif experiment == "E5":
        for row in run_end_to_end_experiment(federation, n_queries=10):
            print(row.row())
    elif experiment == "E6":
        for row in run_merging_experiment(
            federation, n_queries=15, withhold_term_stats=True
        ):
            print(row.row())
    else:
        print(f"unknown experiment: {args.id}", file=sys.stderr)
        return 2
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    from repro.conformance import check_source
    from repro.corpus import source1_documents
    from repro.vendors import build_vendor_source, vendor_names

    worst = 0
    for vendor in vendor_names():
        source = build_vendor_source(vendor, f"{vendor}-probe", source1_documents())
        report = check_source(source)
        verdict = "CONFORMANT" if report.passed else "NON-CONFORMANT"
        print(f"{vendor:<12} {verdict}")
        for finding in report.failures():
            print(f"  {finding.row()}")
            worst = 1
    return worst


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.observability import (
        MetricsRegistry,
        get_registry,
        render_prometheus,
        set_registry,
    )

    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        searcher = _build_searcher(args.seed)
        for text in ("databases", "medicine", "distributed systems"):
            expression = parse_expression(f'(body-of-text "{text}")')
            searcher.search(
                SQuery(ranking_expression=expression, max_number_documents=5),
                k_sources=2,
            )
        print(render_prometheus(get_registry()), end="")
    finally:
        set_registry(previous)
    return 0


#: The replayed query pool for the querylog/slo commands: a small head
#: of topics whose zipf-skewed repetition exercises the result cache.
_REPLAY_TOPICS = (
    "databases",
    "medicine",
    "distributed systems",
    "networking",
    "compilers",
)


def _zipf_search_replay(searcher: Metasearcher, n_requests: int, seed: int):
    """Run a zipf-skewed replay; yields after each search completes."""
    from repro.corpus import zipf_replay

    for topic in zipf_replay(list(_REPLAY_TOPICS), n_requests, seed=seed):
        expression = parse_expression(f'(body-of-text "{topic}")')
        searcher.search(
            SQuery(ranking_expression=expression, max_number_documents=5),
            k_sources=2,
        )
        yield topic


def cmd_querylog(args: argparse.Namespace) -> int:
    from repro.observability import (
        QueryLog,
        get_query_log,
        set_query_log,
    )

    previous = get_query_log()
    log = set_query_log(QueryLog(slow_ms=args.slow_ms))
    try:
        searcher = _build_searcher(args.seed)
        for _ in _zipf_search_replay(searcher, args.requests, args.seed):
            pass
        records = log.records()
        print(
            f"{len(records)} searches logged "
            f"({len(log.records('hit')) + len(log.records('stale'))} cache-served, "
            f"{log.total_slow} slow at >= {args.slow_ms:.0f} ms)"
        )
        print(f"{'outcome':<8} {'ms':>8} {'src':>4} {'docs':>5}  terms")
        for record in records:
            print(
                f"{record.outcome:<8} {record.total_ms:>8.2f} "
                f"{len(record.selected_sources):>4} {record.n_results:>5}  "
                f"{record.terms}"
            )
        if args.ndjson:
            count = log.write_ndjson(args.ndjson)
            print(f"{count} records written to {args.ndjson}")
    finally:
        set_query_log(previous)
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    from repro.observability import (
        MetricsRegistry,
        SloMonitor,
        get_registry,
        render_prometheus,
        set_registry,
    )

    previous = get_registry()
    set_registry(MetricsRegistry())
    try:
        searcher = _build_searcher(args.seed)
        monitor = SloMonitor()
        monitor.snapshot()
        for index, _ in enumerate(
            _zipf_search_replay(searcher, args.requests, args.seed), 1
        ):
            if index % 10 == 0:
                monitor.snapshot()
        monitor.snapshot()
        monitor.export_gauges()
        print(f"SLO readout after a {args.requests}-request zipf replay:")
        print(monitor.describe())
        if args.metrics:
            print()
            print(render_prometheus(get_registry()), end="")
    finally:
        set_registry(previous)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability import Tracer, render_chrome_trace, render_ndjson

    expression = parse_expression(
        args.expression
        or 'list((body-of-text "distributed") (body-of-text "databases"))'
    )
    if expression is None:
        print("empty expression", file=sys.stderr)
        return 2
    internet, resource_url = quick_federation(seed=args.seed)
    searcher = Metasearcher(internet, [resource_url])
    # One tracer across discovery and the search, so the exported
    # timeline shows the whole round: discover → select → translate →
    # query (with per-source children) → merge.
    tracer = Tracer()
    searcher.refresh(tracer)
    result = searcher.search(
        SQuery(ranking_expression=expression, max_number_documents=5),
        k_sources=args.sources,
        tracer=tracer,
    )
    trace = result.trace
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            handle.write(render_chrome_trace(trace, indent=2))
        print(f"chrome trace written to {args.chrome}")
    if args.ndjson:
        with open(args.ndjson, "w", encoding="utf-8") as handle:
            handle.write(render_ndjson(trace))
        print(f"ndjson events written to {args.ndjson}")
    if not args.chrome and not args.ndjson:
        print(result.explain_trace())
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    import pathlib
    import time

    from repro.corpus import CollectionSpec, generate_collection
    from repro.engine import fields as F
    from repro.engine.query import TermQuery
    from repro.engine.search import SearchEngine
    from repro.storage import read_manifest

    directory = pathlib.Path(args.dir)

    if args.action == "save":
        documents = generate_collection(
            CollectionSpec(
                name="checkpoint-demo",
                topics={"databases": 1.0, "networking": 0.4},
                size=args.size,
                seed=args.seed,
            )
        )
        engine = SearchEngine(storage="segments", storage_dir=directory)
        engine.add_all(documents)
        manifest_path = engine.checkpoint(merge=args.merge)
        store = engine.segment_store
        print(f"checkpointed {engine.document_count} documents to {directory}")
        print(f"  manifest:   {manifest_path}")
        print(f"  generation: {store.generation}")
        print(f"  segments:   {store.segment_count} "
              f"({store.manifest.total_bytes():,} bytes)")
        engine.close()
        return 0

    if args.action == "load":
        if read_manifest(directory) is None:
            print(f"cannot open {directory}: no manifest", file=sys.stderr)
            return 2
        started = time.perf_counter()
        try:
            engine = SearchEngine(storage="segments", storage_dir=directory)
        except Exception as error:  # noqa: BLE001 - CLI surface
            print(f"cannot open {directory}: {error}", file=sys.stderr)
            return 2
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        store = engine.segment_store
        print(f"warm start from {directory} in {elapsed_ms:.1f} ms")
        print(f"  documents:  {engine.document_count}")
        print(f"  segments:   {store.segment_count} "
              f"(generation {store.generation})")
        hits = engine.search(TermQuery(F.BODY_OF_TEXT, "databases"))[:5]
        print(f'  "databases" hits: {len(hits)} shown of a top-5 probe')
        for hit in hits:
            print(f"    {hit.score:10.4f}  {engine.store[hit.doc_id].linkage}")
        engine.close()
        return 0

    # inspect: print the manifest without paging in any segment data.
    manifest = read_manifest(directory)
    if manifest is None:
        print(f"no manifest in {directory}", file=sys.stderr)
        return 2
    print(f"manifest at {directory}")
    print(f"  generation:  {manifest.generation}")
    print(f"  analyzer:    {manifest.analyzer}")
    print(f"  ranking:     {manifest.ranking}")
    print(f"  tombstones:  {len(manifest.tombstones)}")
    print(f"  segments:    {len(manifest.segments)} "
          f"({manifest.total_bytes():,} bytes, "
          f"ceiling {manifest.document_ceiling})")
    print(f"  {'name':<14} {'base':>8} {'docs':>8} {'bytes':>12}")
    for meta in manifest.segments:
        print(f"  {meta.name:<14} {meta.doc_base:>8} {meta.doc_count:>8} "
              f"{meta.size_bytes:>12,}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro import CollectionSpec, generate_collection
    from repro.resource import Resource
    from repro.transport import StartsHttpServer
    from repro.vendors import build_vendor_source

    resource = Resource("DemoFederation")
    plans = [
        ("Demo-DB", "AcmeSearch", {"databases": 1.0}),
        ("Demo-Med", "OkapiWorks", {"medicine": 1.0}),
    ]
    for index, (source_id, vendor, topics) in enumerate(plans):
        documents = generate_collection(
            CollectionSpec(name=source_id, topics=topics, size=40, seed=args.seed + index)
        )
        resource.add_source(build_vendor_source(vendor, source_id, documents))

    server = StartsHttpServer(resource, port=args.port)
    server.start()
    print(f"STARTS federation serving at {server.base_url}")
    print(f"  resource:  {server.resource_url()}")
    for source_id, _, _ in plans:
        print(f"  {source_id}: {server.source_query_url(source_id)}")
    if args.once:
        server.stop()
        return 0
    print("Ctrl-C to stop.")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        server.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="STARTS metasearch reproduction — demo CLI",
    )
    parser.add_argument("--seed", type=int, default=7, help="federation seed")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run a canned metasearch").set_defaults(
        handler=cmd_demo
    )

    query = commands.add_parser("query", help="run a STARTS expression")
    query.add_argument("expression")
    query.add_argument("--filter", action="store_true", help="treat as filter")
    query.add_argument("--limit", type=int, default=10)
    query.add_argument("--sources", type=int, default=2)
    query.set_defaults(handler=cmd_query)

    search = commands.add_parser(
        "search", help="run a metasearch, optionally streaming merged results"
    )
    search.add_argument("expression")
    search.add_argument(
        "--stream",
        action="store_true",
        help="print merged results incrementally as sources answer",
    )
    search.add_argument(
        "--realtime",
        action="store_true",
        help="with --stream: sleep out simulated latencies on the wall clock",
    )
    search.add_argument("--limit", type=int, default=10)
    search.add_argument("--sources", type=int, default=3)
    search.set_defaults(handler=cmd_search)

    parse = commands.add_parser("parse", help="parse and re-serialize")
    parse.add_argument("expression")
    parse.set_defaults(handler=cmd_parse)

    plan = commands.add_parser("plan", help="dry-run a query (no network)")
    plan.add_argument("expression")
    plan.add_argument("--sources", type=int, default=2)
    plan.set_defaults(handler=cmd_plan)

    select = commands.add_parser(
        "select", help="harvest summaries and rank sources for query terms"
    )
    select.add_argument("terms", help='query terms, e.g. "distributed databases"')
    select.add_argument(
        "--selector",
        choices=["cori", "bgloss", "vgloss-sum", "vgloss-max", "by-size",
                 "select-all", "random"],
        default="cori",
    )
    select.add_argument("-k", type=int, default=5, help="sources to select")
    select.set_defaults(handler=cmd_select)

    broker = commands.add_parser(
        "broker", help="build a root/leaf broker hierarchy and print its shards"
    )
    broker.add_argument("--sources", type=int, default=200, help="synthetic sources")
    broker.add_argument("--leaves", type=int, default=4, help="leaf brokers")
    broker.add_argument(
        "--terms", default=None, help='demo a brokered selection, e.g. "databases"'
    )
    broker.add_argument(
        "--selector",
        choices=["cori", "bgloss", "vgloss-sum", "vgloss-max", "by-size",
                 "select-all"],
        default="cori",
    )
    broker.add_argument("-k", type=int, default=5, help="sources to select")
    broker.set_defaults(handler=cmd_broker)

    experiment = commands.add_parser("experiment", help="run one experiment")
    experiment.add_argument("id", help="E1..E6")
    experiment.set_defaults(handler=cmd_experiment)

    conformance = commands.add_parser(
        "conformance", help="conformance-check every built-in vendor"
    )
    conformance.set_defaults(handler=cmd_conformance)

    metrics = commands.add_parser(
        "metrics", help="run a few searches and print Prometheus metrics"
    )
    metrics.set_defaults(handler=cmd_metrics)

    querylog = commands.add_parser(
        "querylog", help="replay searches and print the wide query log"
    )
    querylog.add_argument("--requests", type=int, default=25)
    querylog.add_argument(
        "--slow-ms", type=float, default=50.0, help="slow-query threshold"
    )
    querylog.add_argument("--ndjson", metavar="PATH", help="write NDJSON log")
    querylog.set_defaults(handler=cmd_querylog)

    slo = commands.add_parser(
        "slo", help="replay searches and print SLO error budgets"
    )
    slo.add_argument("--requests", type=int, default=40)
    slo.add_argument(
        "--metrics", action="store_true", help="also print the gauge exposition"
    )
    slo.set_defaults(handler=cmd_slo)

    trace = commands.add_parser("trace", help="run one traced search")
    trace.add_argument("expression", nargs="?", default=None)
    trace.add_argument("--sources", type=int, default=2)
    trace.add_argument("--chrome", metavar="PATH", help="write Chrome trace JSON")
    trace.add_argument("--ndjson", metavar="PATH", help="write NDJSON event log")
    trace.set_defaults(handler=cmd_trace)

    checkpoint = commands.add_parser(
        "checkpoint", help="save, warm-load, or inspect a segment store"
    )
    checkpoint.add_argument("action", choices=["save", "load", "inspect"])
    checkpoint.add_argument("dir", help="segment store directory")
    checkpoint.add_argument(
        "--size", type=int, default=200, help="documents to generate for save"
    )
    checkpoint.add_argument(
        "--merge", action="store_true", help="compact segments while saving"
    )
    checkpoint.set_defaults(handler=cmd_checkpoint)

    serve = commands.add_parser(
        "serve", help="serve a demo federation over real HTTP"
    )
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--once", action="store_true", help="start, print URLs, and exit (for tests)"
    )
    serve.set_defaults(handler=cmd_serve)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
