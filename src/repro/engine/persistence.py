"""Saving and loading indexed collections (portable JSON format).

A production source does not re-crawl and re-index its collection on
every restart.  This module serializes an engine's document store and
inverted index to a single JSON file and restores it into a fresh
engine.  The format is versioned and self-describing; the analyzer and
ranking configuration are *not* serialized (they are code, chosen when
the engine is constructed), but their identifying parameters are
recorded and checked on load so an index built by a stemming analyzer
is never silently served by a non-stemming one, and an index saved by
a BM25 engine is never silently re-scored by a cosine one.

Saves are atomic (same-directory temp file + ``os.replace``): a crash
mid-save leaves the previous file intact, never a torn one.  The
engine's contents travel through the public :class:`IndexSnapshot`
interchange type — this module never touches index internals.

For large collections prefer the segment store
(:mod:`repro.storage`): this JSON format is the portable,
human-inspectable interchange; segments are the production layout.
"""

from __future__ import annotations

import json
import pathlib

from repro.engine.documents import Document
from repro.engine.index import IndexSnapshot, Posting, SummaryEntry
from repro.engine.search import SearchEngine
from repro.storage.manifest import atomic_write_text

__all__ = ["save_engine", "load_engine", "PersistenceError"]

_FORMAT_VERSION = 1


class PersistenceError(Exception):
    """Raised on version or configuration mismatches at load time."""


def save_engine(engine: SearchEngine, path: str | pathlib.Path) -> None:
    """Serialize ``engine``'s documents and index to ``path``.

    The write is atomic: the payload lands in a temp file beside
    ``path`` and is renamed over it only once fully written and
    fsynced, so an interrupted save never corrupts an existing file.
    """
    store = engine.store
    snapshot = engine.index.snapshot()

    documents = [
        {
            "linkage": document.linkage,
            "fields": dict(document.fields),
            "language": document.language,
            "token_count": store.token_count(doc_id),
        }
        for doc_id, document in zip(store.ids(), store)
    ]

    postings = {
        field: {
            term: [[posting.doc_id, list(posting.positions)] for posting in plist]
            for term, plist in terms.items()
        }
        for field, terms in snapshot.postings.items()
    }

    summary = [
        {
            "field": field,
            "language": language,
            "words": {
                word: [stats.postings, stats.document_frequency]
                for word, stats in words.items()
            },
        }
        for field, language, words in snapshot.summary
    ]

    payload = {
        "version": _FORMAT_VERSION,
        "analyzer": engine.analyzer.signature(),
        "ranking": engine.ranking.algorithm_id if engine.ranking else None,
        "documents": documents,
        "postings": postings,
        "summary": summary,
    }
    atomic_write_text(pathlib.Path(path), json.dumps(payload))


def load_engine(engine: SearchEngine, path: str | pathlib.Path) -> SearchEngine:
    """Restore a saved collection into a *fresh, empty* ``engine``.

    The engine must be configured with the same analyzer parameters
    and the same ranking algorithm the index was saved with — scores
    and exported metadata would silently differ otherwise.

    Raises:
        PersistenceError: on version mismatch, non-empty engine, or
            analyzer/ranking configuration mismatch.
    """
    payload = json.loads(pathlib.Path(path).read_text())

    if payload.get("version") != _FORMAT_VERSION:
        raise PersistenceError(f"unsupported format version: {payload.get('version')}")
    if engine.document_count != 0:
        raise PersistenceError("load_engine needs an empty engine")
    saved_signature = payload["analyzer"]
    if saved_signature != engine.analyzer.signature():
        raise PersistenceError(
            f"analyzer mismatch: index built with {saved_signature}, "
            f"engine configured as {engine.analyzer.signature()}"
        )
    saved_ranking = payload.get("ranking")
    engine_ranking = engine.ranking.algorithm_id if engine.ranking else None
    if saved_ranking != engine_ranking:
        raise PersistenceError(
            f"ranking mismatch: index saved by a {saved_ranking!r} engine, "
            f"this engine is configured as {engine_ranking!r}"
        )

    for record in payload["documents"]:
        doc_id = engine.store.add(
            Document(record["linkage"], record["fields"], record["language"]),
            token_count=record["token_count"],
        )
        # Keep ids dense and aligned with the saved postings.
        assert doc_id == len(engine.store) - 1

    snapshot = IndexSnapshot(
        postings={
            field: {
                term: [
                    Posting(doc_id, tuple(positions)) for doc_id, positions in plist
                ]
                for term, plist in terms.items()
            }
            for field, terms in payload["postings"].items()
        },
        summary=[
            (
                section["field"],
                section["language"],
                {
                    word: SummaryEntry(postings, df)
                    for word, (postings, df) in section["words"].items()
                },
            )
            for section in payload["summary"]
        ],
        document_count=len(engine.store),
    )
    engine.index.restore(snapshot)
    return engine
