"""Saving and loading indexed collections.

A production source does not re-crawl and re-index its collection on
every restart.  This module serializes an engine's document store and
inverted index to a single JSON file and restores it into a fresh
engine.  The format is versioned and self-describing; the analyzer and
ranking configuration are *not* serialized (they are code, chosen when
the engine is constructed), but their identifying parameters are
recorded and checked on load so an index built by a stemming analyzer
is never silently served by a non-stemming one.
"""

from __future__ import annotations

import json
import pathlib

from repro.engine.documents import Document
from repro.engine.index import Posting, SummaryEntry
from repro.engine.search import SearchEngine

__all__ = ["save_engine", "load_engine", "PersistenceError"]

_FORMAT_VERSION = 1


class PersistenceError(Exception):
    """Raised on version or configuration mismatches at load time."""


def _analyzer_signature(engine: SearchEngine) -> dict:
    analyzer = engine.analyzer
    return {
        "tokenizer": analyzer.tokenizer.tokenizer_id,
        "stem": analyzer.stem,
        "case_sensitive": analyzer.case_sensitive,
        "index_stop_words": analyzer.index_stop_words,
    }


def save_engine(engine: SearchEngine, path: str | pathlib.Path) -> None:
    """Serialize ``engine``'s documents and index to ``path``."""
    store = engine.store
    index = engine.index

    documents = [
        {
            "linkage": document.linkage,
            "fields": dict(document.fields),
            "language": document.language,
            "token_count": store.token_count(doc_id),
        }
        for doc_id, document in zip(store.ids(), store)
    ]

    postings = {
        field: {
            term: [[posting.doc_id, list(posting.positions)] for posting in plist]
            for term, plist in index._postings[field].items()
        }
        for field in index._postings
    }

    summary = [
        {
            "field": field,
            "language": language,
            "words": {
                word: [stats.postings, stats.document_frequency]
                for word, stats in words.items()
            },
        }
        for field, language, words in index.summary_sections()
    ]

    payload = {
        "version": _FORMAT_VERSION,
        "analyzer": _analyzer_signature(engine),
        "ranking": engine.ranking.algorithm_id if engine.ranking else None,
        "documents": documents,
        "postings": postings,
        "summary": summary,
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_engine(engine: SearchEngine, path: str | pathlib.Path) -> SearchEngine:
    """Restore a saved collection into a *fresh, empty* ``engine``.

    The engine must be configured with the same analyzer parameters the
    index was built with.

    Raises:
        PersistenceError: on version mismatch, non-empty engine, or
            analyzer configuration mismatch.
    """
    payload = json.loads(pathlib.Path(path).read_text())

    if payload.get("version") != _FORMAT_VERSION:
        raise PersistenceError(f"unsupported format version: {payload.get('version')}")
    if engine.document_count != 0:
        raise PersistenceError("load_engine needs an empty engine")
    saved_signature = payload["analyzer"]
    if saved_signature != _analyzer_signature(engine):
        raise PersistenceError(
            f"analyzer mismatch: index built with {saved_signature}, "
            f"engine configured as {_analyzer_signature(engine)}"
        )

    for record in payload["documents"]:
        doc_id = engine.store.add(
            Document(record["linkage"], record["fields"], record["language"]),
            token_count=record["token_count"],
        )
        # Keep ids dense and aligned with the saved postings.
        assert doc_id == len(engine.store) - 1

    index = engine.index
    for field, terms in payload["postings"].items():
        field_postings = index._postings[field]
        for term, plist in terms.items():
            field_postings[term] = [
                Posting(doc_id, tuple(positions)) for doc_id, positions in plist
            ]
        index._sorted_vocab_dirty.add(field)
        index._soundex_dirty.add(field)

    for section in payload["summary"]:
        bucket = index._summary[(section["field"], section["language"])]
        for word, (postings, df) in section["words"].items():
            bucket[word] = SummaryEntry(postings, df)

    index._doc_count = len(engine.store)
    return engine
