"""The engine's internal query representation.

This is deliberately *not* the STARTS AST: a real deployment pairs a
wire-level query language with each engine's native query IR, and the
source layer translates between them (that translation — including
dropping what the engine cannot do — is a first-class protocol concern,
Section 4.2's "actual query").  Keeping the engine IR independent also
lets the vendor simulations expose native syntaxes that bypass STARTS
entirely, which the ``Free-form-text`` field requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "EngineQuery",
    "TermQuery",
    "BooleanQuery",
    "ProxQuery",
    "ListQuery",
    "AND",
    "OR",
    "AND_NOT",
]

AND = "and"
OR = "or"
AND_NOT = "and-not"


class EngineQuery:
    """Base class for engine query nodes."""

    def terms(self) -> list["TermQuery"]:
        """All leaf terms, left to right (used for statistics reporting)."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class TermQuery(EngineQuery):
    """A single term restricted to a field.

    Attributes:
        field: a field name from :mod:`repro.engine.fields` (or a
            vendor-specific one); ``"any"`` fans out over text fields.
        text: the query word or value (dates in ISO form).
        language: RFC-1766 tag of the term's language.
        modifiers: frozenset of modifier names exactly as in Basic-1:
            ``stem``, ``phonetic``, ``thesaurus``, ``right-truncation``,
            ``left-truncation``, ``case-sensitive`` and the comparison
            modifiers ``<``, ``<=``, ``=``, ``>=``, ``>``, ``!=``.
        weight: relative importance in ranking expressions (0..1].
    """

    field: str
    text: str
    language: str = "en"
    modifiers: frozenset[str] = frozenset()
    weight: float = 1.0

    def terms(self) -> list["TermQuery"]:
        return [self]

    def with_weight(self, weight: float) -> "TermQuery":
        return TermQuery(self.field, self.text, self.language, self.modifiers, weight)

    def comparison(self) -> str | None:
        """The comparison modifier if present (``=`` is the default)."""
        for modifier in ("<=", ">=", "!=", "<", ">", "="):
            if modifier in self.modifiers:
                return modifier
        return None


@dataclass(frozen=True, slots=True)
class BooleanQuery(EngineQuery):
    """``and`` / ``or`` / ``and-not`` over two or more children.

    ``and-not`` is strictly binary (left minus right) per the Basic-1
    operator set; ``and``/``or`` accept any arity >= 2.
    """

    operator: str
    children: tuple[EngineQuery, ...]

    def __post_init__(self) -> None:
        if self.operator not in (AND, OR, AND_NOT):
            raise ValueError(f"unknown boolean operator: {self.operator!r}")
        if self.operator == AND_NOT and len(self.children) != 2:
            raise ValueError("and-not takes exactly two operands")
        if len(self.children) < 2:
            raise ValueError(f"{self.operator} needs at least two operands")

    def terms(self) -> list[TermQuery]:
        found: list[TermQuery] = []
        for child in self.children:
            found.extend(child.terms())
        return found


@dataclass(frozen=True, slots=True)
class ProxQuery(EngineQuery):
    """``prox[distance, ordered]`` between two terms (Example 3).

    Matches documents where ``left`` and ``right`` occur within
    ``distance`` intervening words; if ``ordered`` is True, ``left``
    must precede ``right``.
    """

    left: TermQuery
    right: TermQuery
    distance: int = 0
    ordered: bool = True

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ValueError("proximity distance must be non-negative")

    def terms(self) -> list[TermQuery]:
        return [self.left, self.right]


@dataclass(frozen=True, slots=True)
class ListQuery(EngineQuery):
    """The vector-space ``list(...)`` grouping of ranking terms."""

    children: tuple[EngineQuery, ...] = field(default_factory=tuple)

    def terms(self) -> list[TermQuery]:
        found: list[TermQuery] = []
        for child in self.children:
            found.extend(child.terms())
        return found
