"""Rank-safe dynamic pruning: a MaxScore-partitioned top-k driver.

STARTS pushes ``MaxNumberDocuments`` and ``MinDocumentScore`` down to
sources precisely so they can avoid scoring their whole collections;
this module is the engine's side of that bargain.  The exhaustive
evaluators materialize an accumulator entry for every matching document
and heap-select afterwards; :class:`PrunedContext` instead bounds every
term's best possible contribution and stops paying for documents that
provably cannot reach the kth score:

* each unique term gets a **score cap** — its summed query coefficient
  times :meth:`~repro.engine.ranking.RankingAlgorithm.
  weight_upper_bound` at the term's (max tf, min doc length) extremes,
  from the in-memory index's incremental metadata or the segment
  store's block-max column;
* terms are processed in descending-cap order; a term stays
  **essential** (full posting walk) only while documents made of
  nothing but it and cheaper terms could still reach the threshold —
  after that the pass only *probes* surviving candidates, skipping the
  rest of the list outright;
* on segment-backed indexes a probe first consults the per-block
  (max tf, min doc length) column: when even the block's cap cannot
  lift a candidate over the threshold, the candidate dies without the
  block ever being decoded;
* the threshold starts at ``MinDocumentScore`` and tightens to the
  kth-best accumulated lower bound as candidates fill in.

**Rank safety.**  Returned hits are bit-identical — documents, scores,
order — to the exhaustive oracles.  Three disciplines make that true:

1. *Exact scores are never approximated.*  Pruning only decides which
   documents to keep; every surviving document's score is computed by
   the same ``term_weight``/``combine`` calls, over the same children
   in the same order, as the exhaustive path — the identical float
   expression gives the identical float.
2. *Skips are strict.*  A document is dropped only when an inflated
   upper bound of its score falls strictly below a deflated lower
   bound of the kth score (both through the algorithm's monotone
   raw↔score maps, shaded by a relative margin that dwarfs any
   accumulated rounding noise).  Boundary ties are always scored
   exactly, so the :func:`~repro.engine.evaluation.hit_order_key` tie
   contract at the kth position is preserved even when the monotone
   combine map collapses distinct raw sums to equal floats.
3. *Unsafe shapes never enter.*  :func:`supports_pruning` admits only
   score-sorted, filterless, flat term queries under an algorithm whose
   ``prunable`` contract holds; everything else (prox nodes, fuzzy
   Boolean trees, Boolean-filtered queries, the top-doc rescaler)
   transparently falls back to the exhaustive path.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import nlargest
from typing import TYPE_CHECKING

from repro.engine.evaluation import TermHitStats, _term_key, hit_order_key
from repro.engine.index import Posting
from repro.engine.query import EngineQuery, ListQuery, TermQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle with search.py
    from repro.engine.search import SearchEngine

__all__ = ["PrunedContext", "supports_pruning"]

#: Relative safety margins separating bounds from exact scores.  Bound
#: arithmetic regroups float sums (per-term coefficients instead of the
#: per-child combine order), which can drift from the exact sum by a
#: few ulps (~1e-16 relative); inflating upper bounds and deflating
#: thresholds by 1e-9 makes every strict comparison safe while giving
#: up a vanishing sliver of pruning power.
_EPS_UP = 1.0 + 1e-9
_EPS_DOWN = 1.0 - 1e-9


def supports_pruning(
    ranking, query: EngineQuery, top_k: int | None, min_score: float
) -> bool:
    """Whether the pruned driver can evaluate this query rank-safely.

    Requires a prunable algorithm, something to prune *against* (a
    top-k bound or a positive score floor), non-negative query weights
    (the non-negativity of contributions underlies every bound), and a
    flat shape: a bare term or a ``list(...)`` of terms.
    """
    if ranking is None or not ranking.prunable:
        return False
    if top_k is None and min_score <= 0.0:
        return False
    if isinstance(query, TermQuery):
        return query.weight >= 0.0
    if isinstance(query, ListQuery):
        return bool(query.children) and all(
            isinstance(child, TermQuery) and child.weight >= 0.0
            for child in query.children
        )
    return False


class _ListAccessor:
    """Probe/walk access over a materialized posting list."""

    #: Whether :meth:`block_bound` can ever answer; lets the driver
    #: skip the call entirely on block-less accessors.
    has_blocks = False

    __slots__ = ("postings", "df", "max_tf", "min_len", "doc_weight", "_doc_ids")

    def __init__(self, postings: list[Posting], max_tf: int) -> None:
        self.postings = postings
        self.df = len(postings)
        self.max_tf = max_tf
        self.min_len: int | None = None
        self.doc_weight: dict[int, float] | None = None
        self._doc_ids: list[int] | None = None

    def tf_map(self) -> dict[int, int]:
        return {p.doc_id: p.term_frequency for p in self.postings}

    def probe(self, doc_id: int) -> int:
        doc_ids = self._doc_ids
        if doc_ids is None:
            doc_ids = self._doc_ids = [p.doc_id for p in self.postings]
        slot = bisect_left(doc_ids, doc_id)
        if slot < len(doc_ids) and doc_ids[slot] == doc_id:
            return self.postings[slot].term_frequency
        return 0

    def block_bound(self, doc_id: int) -> tuple[int, int] | None:
        return None


class _MaterializedAccessor:
    """Aggregated access for multi-expansion terms (stems, fan-out).

    Expansion-aggregated tf has no per-list metadata, so these terms
    are materialized upfront exactly like the exhaustive path — their
    cap is the max of their *exact* weights and their postings are
    never skipped.  Modifier-heavy terms are rare; correctness wins.
    """

    has_blocks = False

    __slots__ = ("doc_tf", "df", "doc_weight", "max_weight")

    def __init__(self, doc_tf: dict[int, int], doc_weight: dict[int, float]) -> None:
        self.doc_tf = doc_tf
        self.df = len(doc_tf)
        self.doc_weight = doc_weight
        self.max_weight = max(doc_weight.values(), default=0.0)

    def tf_map(self) -> dict[int, int]:
        return self.doc_tf

    def probe(self, doc_id: int) -> int:
        return self.doc_tf.get(doc_id, 0)

    def block_bound(self, doc_id: int) -> tuple[int, int] | None:
        return None


class _PrunedTerm:
    """One unique ranking term's state across the driver's passes."""

    __slots__ = ("accessor", "coef", "df", "ub", "weights", "tfs")

    def __init__(self, accessor) -> None:
        self.accessor = accessor
        #: Σ over occurrences of the raw-sum coefficient each occurrence
        #: contributes (q for a bare root term, q² inside ``list`` —
        #: the child's node score is already weight-multiplied before
        #: ``combine`` weights it again).
        self.coef = 0.0
        self.df = accessor.df
        self.ub = 0.0
        self.weights: dict[int, float] = {}
        self.tfs: dict[int, int] = {}


class PrunedContext:
    """MaxScore evaluation of one score-sorted query.

    Built once per ``search`` call for shapes :func:`supports_pruning`
    admits; :meth:`hits` returns the final truncated hit list and
    :meth:`hit_term_stats` answers TermStats for exactly those hits.
    """

    def __init__(
        self,
        engine: "SearchEngine",
        query: EngineQuery,
        top_k: int | None,
        min_score: float,
    ) -> None:
        assert engine.ranking is not None
        self._engine = engine
        self._query = query
        self._ranking = engine.ranking
        self._top_k = top_k
        self._min_score = min_score
        self._n_docs = engine.document_count
        self._avg_doc_len = engine.store.average_token_count()
        self.postings_walked = 0
        self.postings_skipped = 0
        self.blocks_skipped = 0
        #: The final combined-score threshold the driver reached.
        self.threshold = 0.0
        self._pruned_docs = 0
        self._closed_passes = 0
        self.truncated = False
        if isinstance(query, TermQuery):
            self._children: list[tuple[float, TermQuery]] = [(query.weight, query)]
            self._root_is_term = True
        else:
            assert isinstance(query, ListQuery)
            self._children = [(child.weight, child) for child in query.children]
            self._root_is_term = False
        self._child_qs = [q_weight for q_weight, _ in self._children]
        self._terms: dict[tuple, _PrunedTerm] = {}
        for q_weight, term in self._children:
            key = _term_key(term)
            record = self._terms.get(key)
            if record is None:
                record = self._terms[key] = _PrunedTerm(self._make_accessor(term))
            record.coef += q_weight if self._root_is_term else q_weight * q_weight
        self._hits: list[tuple[int, float]] | None = None

    # -- term access -------------------------------------------------------

    def _make_accessor(self, term: TermQuery):
        engine = self._engine
        expansions = engine.matcher.expand(term)
        pairs = [
            (field_name, index_term)
            for field_name, index_terms in expansions.items()
            for index_term in index_terms
        ]
        if len(pairs) == 1:
            field_name, index_term = pairs[0]
            maker = getattr(engine.index, "pruned_postings", None)
            if maker is not None:
                return maker(field_name, index_term)
            return _ListAccessor(
                engine.index.postings(field_name, index_term),
                engine.index.max_term_frequency(field_name, index_term),
            )
        # Multi-expansion: aggregate tf exactly as the exhaustive
        # context does, then precompute the same weights.
        doc_tf: dict[int, int] = {}
        for field_name, index_term in pairs:
            postings = engine.index.postings(field_name, index_term)
            self.postings_walked += len(postings)
            for posting in postings:
                doc_id = posting.doc_id
                doc_tf[doc_id] = doc_tf.get(doc_id, 0) + posting.term_frequency
        df = len(doc_tf)
        token_count = engine.store.token_count
        term_weight = self._ranking.term_weight
        n_docs, avg = self._n_docs, self._avg_doc_len
        doc_weight = {
            doc_id: term_weight(tf, df, n_docs, token_count(doc_id), avg)
            for doc_id, tf in doc_tf.items()
        }
        return _MaterializedAccessor(doc_tf, doc_weight)

    # -- the driver --------------------------------------------------------

    def _raw_cut(self, threshold: float) -> float:
        """The raw-sum cut equivalent to a combined-score threshold."""
        if threshold <= 0.0:
            return 0.0
        if self._root_is_term:
            # A bare term's score is q·w — no combine map to invert.
            return threshold
        return self._ranking.raw_score_threshold(threshold, self._child_qs)

    def _score_from_raw(self, raw: float) -> float:
        if self._root_is_term:
            return raw
        return self._ranking.score_from_raw(raw, self._child_qs)

    def _evaluate(self) -> list[tuple[int, float]]:
        ranking = self._ranking
        n_docs = self._n_docs
        avg = self._avg_doc_len
        token_count = self._engine.store.token_count
        term_weight = ranking.term_weight
        weight_upper_bound = ranking.weight_upper_bound
        top_k = self._top_k
        min_score = self._min_score
        global_min_len = self._engine.store.min_token_count()

        terms = list(self._terms.values())
        for record in terms:
            accessor = record.accessor
            max_weight = getattr(accessor, "max_weight", None)
            if max_weight is None:
                min_len = accessor.min_len
                if min_len is None:
                    min_len = global_min_len
                max_weight = weight_upper_bound(
                    accessor.max_tf, record.df, n_docs, min_len, avg
                )
            record.ub = record.coef * max_weight * _EPS_UP
        terms.sort(key=lambda record: -record.ub)
        rest = [0.0] * (len(terms) + 1)
        for position in range(len(terms) - 1, -1, -1):
            rest[position] = rest[position + 1] + terms[position].ub

        theta = min_score if min_score > 0.0 else 0.0
        cut = self._raw_cut(theta)
        acc: dict[int, float] = {}
        for position, record in enumerate(terms):
            remaining = rest[position + 1]
            accessor = record.accessor
            coef = record.coef
            df = record.df
            if rest[position] >= cut:
                # Essential pass: every document of this list could, on
                # its own plus the cheaper tail, still reach the
                # threshold — walk it fully and admit everyone.  (No
                # mutation after this pass, so aliasing a materialized
                # accessor's own maps is safe.)
                tfs = accessor.tf_map()
                weights = accessor.doc_weight
                if weights is None:
                    self.postings_walked += len(tfs)
                    weights = {
                        doc_id: term_weight(tf, df, n_docs, token_count(doc_id), avg)
                        for doc_id, tf in tfs.items()
                    }
                record.tfs = tfs
                record.weights = weights
                if acc:
                    get = acc.get
                    for doc_id, weight in weights.items():
                        acc[doc_id] = get(doc_id, 0.0) + coef * weight
                else:
                    for doc_id, weight in weights.items():
                        acc[doc_id] = coef * weight
            else:
                # Non-essential pass: no new document can reach the
                # threshold, so only probe surviving candidates — and
                # drop each the moment its ceiling falls below the cut.
                self._closed_passes += 1
                tfs = record.tfs
                weights = record.weights
                probe = accessor.probe
                block_bound = accessor.block_bound if accessor.has_blocks else None
                precomputed = accessor.doc_weight
                limit = cut * _EPS_DOWN - (record.ub + remaining)
                limit_rest = cut * _EPS_DOWN - remaining
                probes = 0
                for doc_id, partial in list(acc.items()):
                    if partial < limit:
                        del acc[doc_id]
                        self._pruned_docs += 1
                        continue
                    bound = block_bound(doc_id) if block_bound is not None else None
                    if bound is not None:
                        block_ub = coef * weight_upper_bound(
                            bound[0], df, n_docs, bound[1], avg
                        )
                        if partial + block_ub < limit_rest:
                            del acc[doc_id]
                            self._pruned_docs += 1
                            self.blocks_skipped += 1
                            continue
                    tf = probe(doc_id)
                    probes += 1
                    if tf:
                        weight = (
                            precomputed[doc_id]
                            if precomputed is not None
                            else term_weight(tf, df, n_docs, token_count(doc_id), avg)
                        )
                        tfs[doc_id] = tf
                        weights[doc_id] = weight
                        partial += coef * weight
                        acc[doc_id] = partial
                    if partial < limit_rest:
                        del acc[doc_id]
                        self._pruned_docs += 1
                self.postings_walked += probes
                if df > probes:
                    self.postings_skipped += df - probes
                if not acc:
                    break
            if (
                top_k is not None
                and top_k > 0
                and position + 1 < len(terms)
                and len(acc) >= top_k
            ):
                kth = nlargest(top_k, acc.values())[-1] * _EPS_DOWN
                candidate = self._score_from_raw(kth)
                if candidate > theta:
                    theta = candidate
                    cut = self._raw_cut(theta)
        self.threshold = theta

        # Exact scoring of the survivors: the same float expressions,
        # over the same children in the same order, as the exhaustive
        # paths — identical inputs, identical floats.
        results: list[tuple[int, float]] = []
        apply_floor = min_score > 0.0
        if self._root_is_term:
            q_weight = self._children[0][0]
            weights = terms[0].weights
            for doc_id in acc:
                score = q_weight * weights.get(doc_id, 0.0)
                if score > 0.0 and (not apply_floor or score >= min_score):
                    results.append((doc_id, score))
        else:
            combine = ranking.combine
            columns = [
                (q_weight, self._terms[_term_key(term)].weights)
                for q_weight, term in self._children
            ]
            for doc_id in acc:
                score = combine(
                    [
                        (q_weight, q_weight * weights.get(doc_id, 0.0))
                        for q_weight, weights in columns
                    ]
                )
                if score > 0.0 and (not apply_floor or score >= min_score):
                    results.append((doc_id, score))
        results.sort(key=hit_order_key)
        if top_k is not None:
            # The truncation signal is approximate on purpose: pruned
            # documents were never scored, so whether they *would* have
            # qualified is unknowable.  Any pruning or closed pass means
            # the query was bounded by top-k pressure, which is what the
            # counter tracks.
            self.truncated = (
                len(results) > top_k
                or self._pruned_docs > 0
                or self._closed_passes > 0
            )
            results = results[:top_k]
        return results

    # -- results -----------------------------------------------------------

    def hits(self) -> list[tuple[int, float]]:
        """The final (doc_id, score) list, ordered and truncated."""
        if self._hits is None:
            self._hits = self._evaluate()
        return self._hits

    def hit_term_stats(self, doc_id: int) -> list[TermHitStats]:
        """STARTS ``TermStats`` for one returned hit."""
        stats: list[TermHitStats] = []
        for term in self._query.terms():
            record = self._terms[_term_key(term)]
            tf = record.tfs.get(doc_id, 0)
            weight = record.weights.get(doc_id, 0.0) if tf else 0.0
            stats.append(
                TermHitStats(term.field, term.text, tf, weight, record.df)
            )
        return stats
