"""The fielded, flat document model and its store.

STARTS documents are "flat" — no nesting — and textual (Section 3 of
the paper).  A document is a bag of named fields; the Basic-1 fields
(title, author, body-of-text, ...) are conventions over those names.
The store assigns dense integer ids, tracks sizes and token counts
(``DocSize`` / ``DocCount`` in query results), and supports lookup by
linkage URL, which is how resources detect duplicate documents across
their member sources.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.engine import fields as F

__all__ = ["Document", "DocumentStore"]


@dataclass(frozen=True, slots=True)
class Document:
    """An immutable flat document.

    Attributes:
        linkage: the document's URL — its identity across sources.
        fields: field name → value.  Text fields hold prose; the
            date field holds ``YYYY-MM-DD``; ``languages`` holds a
            space-separated list of RFC-1766 tags; ``linkage-type``
            holds a MIME type; ``cross-reference-linkage`` holds a
            space-separated URL list.
        language: primary language tag of the document's text.
    """

    linkage: str
    fields: Mapping[str, str] = field(default_factory=dict)
    language: str = "en"

    def get(self, name: str, default: str = "") -> str:
        return self.fields.get(name, default)

    @property
    def title(self) -> str:
        return self.get(F.TITLE)

    @property
    def author(self) -> str:
        return self.get(F.AUTHOR)

    @property
    def body(self) -> str:
        return self.get(F.BODY_OF_TEXT)

    def text_fields(self) -> Iterator[tuple[str, str]]:
        """(field, value) pairs for the fields indexed as text."""
        for name in F.TEXT_FIELDS:
            value = self.fields.get(name)
            if value:
                yield name, value

    def full_text(self) -> str:
        """All text-field values concatenated (used for ``any``/sizes)."""
        return " ".join(value for _, value in self.text_fields())

    def size_kbytes(self) -> int:
        """Document size in whole KBytes, at least 1 (``DocSize``)."""
        nbytes = len(self.full_text().encode("utf-8"))
        return max(1, round(nbytes / 1024)) if nbytes else 1


class DocumentStore:
    """Assigns dense ids to documents and answers per-document stats.

    The store is append-only, mirroring the paper's stateless-source
    model where collections change only between metadata exports.
    """

    def __init__(self) -> None:
        self._documents: list[Document] = []
        self._by_linkage: dict[str, int] = {}
        self._token_counts: list[int] = []
        # Running sum of _token_counts, so average_token_count() — on
        # the per-term-weight hot path — is O(1).  Token counts are
        # integers, so the running sum is exact.
        self._token_total = 0
        # Memoized min_token_count(); invalidated on every count write
        # rather than maintained incrementally, because the engine adds
        # documents with a provisional count of 0 and patches it after
        # analysis — an incremental minimum would lock onto that 0.
        self._min_token_memo: int | None = None

    def add(self, document: Document, token_count: int = 0) -> int:
        """Store ``document`` and return its id.

        ``token_count`` is the number of index tokens the analysis
        pipeline produced; the engine passes it in at index time so the
        store can answer ``DocCount`` without re-tokenizing.
        """
        doc_id = len(self._documents)
        self._documents.append(document)
        self._token_counts.append(token_count)
        self._token_total += token_count
        self._min_token_memo = None
        # First linkage wins; duplicates within one source are unusual
        # but the resource layer relies on linkage lookups being stable.
        self._by_linkage.setdefault(document.linkage, doc_id)
        return doc_id

    def set_token_count(self, doc_id: int, token_count: int) -> None:
        self._token_total += token_count - self._token_counts[doc_id]
        self._token_counts[doc_id] = token_count
        self._min_token_memo = None

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, doc_id: int) -> Document:
        return self._documents[doc_id]

    def ids(self) -> range:
        return range(len(self._documents))

    def token_count(self, doc_id: int) -> int:
        """Number of index tokens in the document (``DocCount``)."""
        return self._token_counts[doc_id]

    def by_linkage(self, linkage: str) -> int | None:
        """The id of the document with this URL, if stored."""
        return self._by_linkage.get(linkage)

    def linkages(self) -> Iterable[str]:
        return self._by_linkage.keys()

    def average_token_count(self) -> float:
        """Mean document length, used by length-normalizing scorers."""
        if not self._token_counts:
            return 0.0
        return self._token_total / len(self._token_counts)

    def min_token_count(self) -> int:
        """Smallest document length (0 for an empty store).

        Length-normalizing weights grow as documents shrink, so the
        collection-wide minimum is the doc-length input that makes
        ``weight_upper_bound`` a true upper bound over every document.
        """
        if self._min_token_memo is None:
            self._min_token_memo = min(self._token_counts, default=0)
        return self._min_token_memo
