"""The search engine: indexing, Boolean filtering, vector-space ranking.

This is the engine a STARTS source wraps.  It supports the full Basic-1
operator set for filter expressions (``and``, ``or``, ``and-not``,
``prox``), fuzzy-logic interpretation of Boolean operators inside
ranking expressions (Example 4 of the paper: ``and`` as min, ``or`` as
max), per-term query weights (Example 5), and — crucially for rank
merging — returns with every hit the statistics STARTS requires:
term frequency, the engine's own term weight, document frequency,
document size and token count.
"""

from __future__ import annotations

import pathlib
import shutil
import time
from collections import defaultdict

from repro.engine import fields as F
from repro.engine.documents import Document, DocumentStore
from repro.engine.evaluation import (
    DOCUMENT_AT_A_TIME,
    EVALUATION_MODES,
    PRUNED,
    TERM_AT_A_TIME,
    EngineHit,
    QueryTermContext,
    TermHitStats,
    top_k_hits,
)
from repro.engine.index import InvertedIndex
from repro.engine.matching import TermMatcher
from repro.engine.pruning import PrunedContext, supports_pruning
from repro.engine.query import (
    AND,
    AND_NOT,
    OR,
    BooleanQuery,
    EngineQuery,
    ListQuery,
    ProxQuery,
    TermQuery,
)
from repro.engine.ranking import CosineTfIdf, RankingAlgorithm
from repro.observability.metrics import get_registry
from repro.storage import (
    SegmentedDocumentStore,
    SegmentedIndex,
    SegmentStore,
    StorageError,
    TieredMergePolicy,
)
from repro.text.analysis import Analyzer
from repro.text.thesaurus import Thesaurus

__all__ = ["TermHitStats", "EngineHit", "SearchEngine", "STORAGE_MODES"]

#: Supported storage backends: the in-memory oracle and the
#: segment-backed store (which must answer bit-identically).
STORAGE_MODES = ("memory", "segments")


class SearchEngine:
    """A complete single-collection engine.

    Args:
        analyzer: the tokenize/stop/stem pipeline (defines the engine's
            observable query model).
        ranking: the scoring algorithm, or None for a Boolean-only
            engine like Glimpse (``QueryPartsSupported: F``).
        thesaurus: synonym source for the ``thesaurus`` modifier.
        evaluation: ranking evaluation strategy — ``"term_at_a_time"``
            (the default: one pass per posting list, statistics reused
            across scoring and TermStats), ``"document_at_a_time"``
            (the original per-candidate recursion, kept as a bit-exact
            reference oracle), or ``"pruned"`` (rank-safe MaxScore /
            block-max top-k evaluation: bit-identical hits, but
            postings that provably cannot reach the kth score are
            never visited; query shapes the pruned driver cannot bound
            fall back to term-at-a-time transparently).
        storage: ``"memory"`` (the default, and the bit-exactness
            oracle) keeps everything in dicts; ``"segments"`` backs
            the engine with an on-disk :class:`SegmentStore` —
            committed immutable segments plus an in-memory mutable
            tail that :meth:`flush` turns into new segments.
        storage_dir: the segment store directory (required — and only
            meaningful — for ``storage="segments"``).  Opening an
            existing store warms the engine from its segments without
            re-indexing anything.
        merge_policy: tiered merge policy for the segment store.
    """

    def __init__(
        self,
        analyzer: Analyzer | None = None,
        ranking: RankingAlgorithm | None = CosineTfIdf(),
        thesaurus: Thesaurus | None = None,
        evaluation: str = TERM_AT_A_TIME,
        storage: str = "memory",
        storage_dir: str | pathlib.Path | None = None,
        merge_policy: TieredMergePolicy | None = None,
    ) -> None:
        if evaluation not in EVALUATION_MODES:
            raise ValueError(
                f"unknown evaluation mode: {evaluation!r} (expected one of "
                f"{', '.join(EVALUATION_MODES)})"
            )
        if storage not in STORAGE_MODES:
            raise ValueError(
                f"unknown storage mode: {storage!r} (expected one of "
                f"{', '.join(STORAGE_MODES)})"
            )
        if (storage == "segments") != (storage_dir is not None):
            raise ValueError(
                "storage_dir is required for storage='segments' "
                "and meaningless otherwise"
            )
        self.analyzer = analyzer or Analyzer()
        self.ranking = ranking
        self.evaluation = evaluation
        self.storage = storage
        self.storage_dir = (
            pathlib.Path(storage_dir) if storage_dir is not None else None
        )
        self.segment_store: SegmentStore | None = None
        if storage == "segments":
            assert self.storage_dir is not None
            self.segment_store = SegmentStore(
                self.storage_dir,
                analyzer=self.analyzer.signature(),
                ranking=ranking.algorithm_id if ranking is not None else None,
                merge_policy=merge_policy,
            )
            self.store: DocumentStore = SegmentedDocumentStore(self.segment_store)
            self.index: InvertedIndex = SegmentedIndex(self.segment_store)
        else:
            self.store = DocumentStore()
            self.index = InvertedIndex()
        self.matcher = TermMatcher(self.index, self.analyzer, thesaurus)

    # -- indexing ---------------------------------------------------------

    def add(self, document: Document) -> int:
        """Index one document; returns its dense id."""
        doc_id = self.store.add(document)
        total_tokens = 0
        for field_name, value in document.text_fields():
            analyzed = self.analyzer.analyze(
                value,
                document.language,
                drop_stop_words=not self.analyzer.index_stop_words,
            )
            total_tokens += len(analyzed)
            self.index.add_field_tokens(
                doc_id,
                field_name,
                [(token.term, token.surface, token.position) for token in analyzed],
                language=document.language,
            )
        self.store.set_token_count(doc_id, total_tokens)
        return doc_id

    def add_all(self, documents: list[Document]) -> list[int]:
        return [self.add(document) for document in documents]

    def remove(self, linkage: str) -> bool:
        """Remove the document with this URL; returns False if absent.

        Removal compacts: the surviving documents are re-indexed into a
        fresh store/index, so every statistic (df, summaries, token
        counts) is exact afterwards.  Document ids are reassigned —
        callers must not hold ids across a removal (linkages are the
        stable identity, as everywhere in STARTS).
        """
        if self.store.by_linkage(linkage) is None:
            return False
        survivors = [
            document for document in self.store if document.linkage != linkage
        ]
        self._rebuild(survivors)
        return True

    def replace(self, document: Document) -> int:
        """Replace (or add) the document with ``document.linkage``."""
        self.remove(document.linkage)
        return self.add(document)

    def tombstone(self, linkage: str) -> bool:
        """Delete by tombstone instead of rebuilding (segments only).

        The document stops matching queries immediately and its bytes
        are reclaimed by the next merge covering its segment.  Unlike
        :meth:`remove`, doc ids stay stable and summary statistics
        keep the deleted document's contribution until a rebuild —
        the standard log-structured-store approximation.  The tail is
        flushed first so the target is always in a segment.
        """
        if self.segment_store is None:
            raise StorageError("tombstone() requires storage='segments'")
        doc_id = self.store.by_linkage(linkage)
        if doc_id is None:
            return False
        self.flush()
        self.segment_store.add_tombstones([doc_id])
        self.store.note_tombstones([doc_id])
        return True

    def _rebuild(self, documents: list[Document]) -> None:
        if self.segment_store is not None:
            # Exact semantics on segments too: wipe the store and
            # re-index the survivors (ids reassigned, like in memory).
            assert self.storage_dir is not None
            self.segment_store.close()
            shutil.rmtree(self.storage_dir, ignore_errors=True)
            self.segment_store = SegmentStore(
                self.storage_dir,
                analyzer=self.analyzer.signature(),
                ranking=self.ranking.algorithm_id if self.ranking else None,
                merge_policy=self.segment_store.merge_policy,
            )
            self.store = SegmentedDocumentStore(self.segment_store)
            self.index = SegmentedIndex(self.segment_store)
        else:
            self.store = DocumentStore()
            self.index = InvertedIndex()
        self.matcher = TermMatcher(self.index, self.analyzer, self.matcher._thesaurus)
        self.add_all(documents)

    # -- segment lifecycle -------------------------------------------------

    def flush(self) -> bool:
        """Commit the mutable tail as one immutable segment.

        Returns whether anything was flushed.  A no-op (and False) on
        ``storage="memory"`` engines and when the tail is empty.
        """
        if self.segment_store is None:
            return False
        store = self.store
        index = self.index
        assert isinstance(store, SegmentedDocumentStore)
        assert isinstance(index, SegmentedIndex)
        rows = store.tail_rows()
        if not rows:
            return False
        snapshot = index.tail_snapshot()
        self.segment_store.commit_segment(rows, snapshot.postings, snapshot.summary)
        index.absorb_flush()
        store.absorb_flush()
        return True

    def checkpoint(self, merge: bool = False) -> pathlib.Path:
        """Flush (and optionally compact); returns the manifest path.

        After a checkpoint every indexed document is on disk under a
        committed manifest — a new engine opened on ``storage_dir``
        serves the same answers without re-indexing.
        """
        if self.segment_store is None:
            raise StorageError("checkpoint() requires storage='segments'")
        self.flush()
        if merge:
            self.segment_store.merge_all()
        return self.segment_store.manifest_path()

    def maybe_merge(self, executor: object | None = None) -> bool:
        """Run (or schedule, given an executor) due segment merges."""
        if self.segment_store is None:
            return False
        return self.segment_store.maybe_merge(executor)

    def close(self) -> None:
        """Release segment mmaps (no-op for in-memory engines)."""
        if self.segment_store is not None:
            self.segment_store.close()

    @property
    def document_count(self) -> int:
        return len(self.store)

    # -- filter (Boolean) evaluation ---------------------------------------

    def evaluate_filter(self, query: EngineQuery) -> set[int]:
        """The set of document ids satisfying a Boolean filter."""
        if isinstance(query, TermQuery):
            return self._term_docs(query)
        if isinstance(query, BooleanQuery):
            child_sets = [self.evaluate_filter(child) for child in query.children]
            if query.operator == AND:
                result = child_sets[0]
                for child_set in child_sets[1:]:
                    result = result & child_set
                return result
            if query.operator == OR:
                result = set()
                for child_set in child_sets:
                    result |= child_set
                return result
            if query.operator == AND_NOT:
                return child_sets[0] - child_sets[1]
        if isinstance(query, ProxQuery):
            return self._prox_docs(query)
        if isinstance(query, ListQuery):
            # A list in filter position behaves as OR (every query must
            # keep a positive component).
            result: set[int] = set()
            for child in query.children:
                result |= self.evaluate_filter(child)
            return result
        raise TypeError(f"cannot evaluate filter node: {type(query).__name__}")

    def _term_docs(self, term: TermQuery) -> set[int]:
        comparison = term.comparison()
        if comparison and term.field in F.DATE_FIELDS:
            return self._date_comparison_docs(term, comparison)
        if term.field in F.METADATA_FIELDS:
            return self._metadata_field_docs(term)
        docs: set[int] = set()
        for field_name, index_terms in self.matcher.expand(term).items():
            for index_term in index_terms:
                docs.update(
                    posting.doc_id
                    for posting in self.index.postings(field_name, index_term)
                )
        return docs

    def _metadata_field_docs(self, term: TermQuery) -> set[int]:
        """Exact whitespace-token match over metadata-valued fields.

        ``(languages "es")`` matches documents whose ``languages`` value
        lists ``es``; ``(linkage "http://...")`` matches the document
        with that URL.  Matching is case-insensitive.
        """
        wanted = term.text.lower()
        matched: set[int] = set()
        for doc_id in self.store.ids():
            document = self.store[doc_id]
            if term.field == F.LINKAGE:
                value = document.linkage
            else:
                value = document.get(term.field)
            if not value and term.field == F.LANGUAGES:
                value = document.language
            if not value:
                continue
            tokens = {token.lower() for token in value.split()}
            if wanted in tokens:
                matched.add(doc_id)
        return matched

    def _date_comparison_docs(self, term: TermQuery, comparison: str) -> set[int]:
        """Evaluate <, <=, =, >=, >, != against the ISO date field."""
        wanted = term.text
        matched: set[int] = set()
        for doc_id in self.store.ids():
            value = self.store[doc_id].get(term.field)
            if not value:
                continue
            # ISO dates compare correctly as strings.
            keep = {
                "<": value < wanted,
                "<=": value <= wanted,
                "=": value == wanted,
                ">=": value >= wanted,
                ">": value > wanted,
                "!=": value != wanted,
            }[comparison]
            if keep:
                matched.add(doc_id)
        return matched

    def _prox_docs(self, query: ProxQuery) -> set[int]:
        """Documents where the two terms satisfy the proximity constraint.

        ``prox[d, ordered]`` matches when the terms appear in the same
        field with at most ``d`` words in between; if ordered, left
        must precede right (Example 3).
        """
        left_matches = self.matcher.expand(query.left)
        right_matches = self.matcher.expand(query.right)
        matched: set[int] = set()
        for field_name in set(left_matches) & set(right_matches):
            left_positions = self._positions_by_doc(field_name, left_matches[field_name])
            right_positions = self._positions_by_doc(field_name, right_matches[field_name])
            for doc_id in set(left_positions) & set(right_positions):
                if self._prox_satisfied(
                    left_positions[doc_id],
                    right_positions[doc_id],
                    query.distance,
                    query.ordered,
                ):
                    matched.add(doc_id)
        return matched

    def _positions_by_doc(
        self, field_name: str, index_terms: set[str]
    ) -> dict[int, list[int]]:
        positions: dict[int, list[int]] = defaultdict(list)
        for index_term in index_terms:
            for posting in self.index.postings(field_name, index_term):
                positions[posting.doc_id].extend(posting.positions)
        return {doc_id: sorted(plist) for doc_id, plist in positions.items()}

    @staticmethod
    def _prox_satisfied(
        left: list[int], right: list[int], distance: int, ordered: bool
    ) -> bool:
        # Two-pointer merge over the sorted position lists: whenever any
        # pair satisfies the constraint, so does a pair of cross-list
        # neighbours, and the merge visits every such neighbour pair.
        i = j = 0
        n_left, n_right = len(left), len(right)
        while i < n_left and j < n_right:
            p_left, p_right = left[i], right[j]
            if p_left < p_right:
                if p_right - p_left - 1 <= distance:
                    return True
                i += 1
            elif p_right < p_left:
                if not ordered and p_left - p_right - 1 <= distance:
                    return True
                j += 1
            else:
                # Equal positions never pair with each other; the
                # candidates are this value against the next strictly
                # greater position on each side, then both equal runs
                # are consumed.
                nxt = j
                while nxt < n_right and right[nxt] == p_left:
                    nxt += 1
                if nxt < n_right and right[nxt] - p_left - 1 <= distance:
                    return True
                if not ordered:
                    nxt = i
                    while nxt < n_left and left[nxt] == p_right:
                        nxt += 1
                    if nxt < n_left and left[nxt] - p_right - 1 <= distance:
                        return True
                while i < n_left and left[i] == p_left:
                    i += 1
                while j < n_right and right[j] == p_right:
                    j += 1
        return False

    # -- ranking evaluation --------------------------------------------------

    def evaluate_ranking(
        self, query: EngineQuery, candidates: set[int] | None = None
    ) -> dict[int, float]:
        """Score documents against a ranking expression.

        Args:
            query: the ranking expression (``list`` or fuzzy Boolean).
            candidates: restrict scoring to these doc ids (the filter
                result); None means every document matching any term.

        Returns:
            doc id → score, after the algorithm's ``finalize`` pass.

        Raises:
            RuntimeError: if this is a Boolean-only engine.
        """
        if self.ranking is None:
            raise RuntimeError("this engine does not support ranking expressions")
        if self.evaluation == DOCUMENT_AT_A_TIME:
            return self._evaluate_ranking_document_at_a_time(query, candidates)
        return QueryTermContext(self, query, candidates).scores()

    def _evaluate_ranking_document_at_a_time(
        self, query: EngineQuery, candidates: set[int] | None = None
    ) -> dict[int, float]:
        """The original per-candidate recursion (the reference oracle)."""
        assert self.ranking is not None
        scores: dict[int, float] = {}
        universe = candidates if candidates is not None else self._candidate_docs(query)
        for doc_id in universe:
            score = self._score_node(query, doc_id)
            if score > 0.0 or candidates is not None:
                scores[doc_id] = score
        return self.ranking.finalize(scores)

    def _candidate_docs(self, query: EngineQuery) -> set[int]:
        docs: set[int] = set()
        for term in query.terms():
            docs |= self._term_docs(term)
        return docs

    def _score_node(self, query: EngineQuery, doc_id: int) -> float:
        if isinstance(query, TermQuery):
            return self._term_score(query, doc_id)
        if isinstance(query, ListQuery):
            contributions = [
                (child.weight if isinstance(child, TermQuery) else 1.0,
                 self._score_node(child, doc_id))
                for child in query.children
            ]
            assert self.ranking is not None
            return self.ranking.combine(contributions)
        if isinstance(query, BooleanQuery):
            child_scores = [self._score_node(child, doc_id) for child in query.children]
            if query.operator == AND:
                return min(child_scores)
            if query.operator == OR:
                return max(child_scores)
            if query.operator == AND_NOT:
                return max(0.0, child_scores[0] - child_scores[1])
        if isinstance(query, ProxQuery):
            if doc_id in self._prox_docs(query):
                return min(
                    self._term_score(query.left, doc_id),
                    self._term_score(query.right, doc_id),
                )
            return 0.0
        raise TypeError(f"cannot score node: {type(query).__name__}")

    def _term_score(self, term: TermQuery, doc_id: int) -> float:
        assert self.ranking is not None
        tf, df = self._term_doc_stats(term, doc_id)
        if tf == 0:
            return 0.0
        weight = self.ranking.term_weight(
            tf,
            df,
            self.document_count,
            self.store.token_count(doc_id),
            self.store.average_token_count(),
        )
        return term.weight * weight

    def _term_doc_stats(self, term: TermQuery, doc_id: int) -> tuple[int, int]:
        """(tf in this doc, df in the source) for a query term.

        The term's modifier expansion is honoured: tf/df aggregate over
        every index term the query term denotes, and df counts distinct
        documents.
        """
        tf = 0
        df_docs: set[int] = set()
        for field_name, index_terms in self.matcher.expand(term).items():
            for index_term in index_terms:
                for posting in self.index.postings(field_name, index_term):
                    df_docs.add(posting.doc_id)
                    if posting.doc_id == doc_id:
                        tf += posting.term_frequency
        return tf, len(df_docs)

    # -- the combined search entry point -------------------------------------

    def search(
        self,
        filter_query: EngineQuery | None = None,
        ranking_query: EngineQuery | None = None,
        *,
        top_k: int | None = None,
        min_score: float = 0.0,
    ) -> list[EngineHit]:
        """Run a STARTS-style query: Boolean filter + vector-space rank.

        Per Section 4.1.1: with no filter, all documents qualify and are
        ranked; with no ranking expression, the result is the filter's
        document set (scores 0.0).  Hits are sorted by descending score,
        then ascending doc id for determinism, and each carries the
        TermStats for the ranking expression's terms.

        Args:
            filter_query: the Boolean filter expression, or None.
            ranking_query: the ranking expression, or None.
            top_k: keep only the first ``top_k`` hits of the final
                order (heap-selected, so the tail is never materialized
                and never gets TermStats).  Callers must only pass this
                when they want score-descending truncation — i.e. when
                the answer specification sorts by score.
            min_score: drop ranked hits scoring below this (the answer
                specification's ``MinDocumentScore``); applied before
                ``top_k``, which commutes with it.
        """
        started = time.perf_counter()
        hits, walked, truncated, skipped, blocks_skipped, threshold = (
            self._search_timed(
                filter_query, ranking_query, top_k=top_k, min_score=min_score
            )
        )
        registry = get_registry()
        registry.histogram(
            "engine_query_eval_ms",
            "Wall-clock time of one engine search (filter + rank + top-k).",
        ).observe((time.perf_counter() - started) * 1000.0)
        if walked:
            registry.counter(
                "engine_postings_walked_total",
                "Postings visited materializing ranking statistics.",
            ).inc(walked)
        if skipped:
            registry.counter(
                "engine_postings_skipped_total",
                "Postings the pruned evaluator never visited.",
            ).inc(skipped)
        if blocks_skipped:
            registry.counter(
                "engine_blocks_skipped_total",
                "Candidate probes resolved by the block-max column alone.",
            ).inc(blocks_skipped)
        if threshold is not None:
            registry.gauge(
                "engine_prune_threshold",
                "Final score threshold the last pruned search converged to.",
            ).set(threshold)
        if truncated:
            # On the pruned path this is a conservative signal (a pruned
            # document might not have qualified), but any pruning means
            # the top-k bound did shape the evaluation.
            registry.counter(
                "engine_topk_truncations_total",
                "Searches whose hit list was cut by the top-k bound.",
            ).inc()
        return hits

    def _search_timed(
        self,
        filter_query: EngineQuery | None,
        ranking_query: EngineQuery | None,
        *,
        top_k: int | None,
        min_score: float,
    ) -> tuple[list[EngineHit], int, bool, int, int, float | None]:
        """``search`` proper.

        Returns ``(hits, postings walked, truncated, postings skipped,
        blocks skipped, prune threshold)`` — the last three are only
        non-trivial when the pruned driver ran (threshold is None
        otherwise).
        """
        if filter_query is None and ranking_query is None:
            return [], 0, False, 0, 0, None

        candidates: set[int] | None = None
        if filter_query is not None:
            candidates = self.evaluate_filter(filter_query)
            if not candidates:
                return [], 0, False, 0, 0, None

        if ranking_query is None or self.ranking is None:
            if candidates is None:
                # A Boolean-only engine given only a ranking expression
                # has nothing it can evaluate.
                return [], 0, False, 0, 0, None
            hits = [EngineHit(doc_id, 0.0) for doc_id in sorted(candidates)]
            if ranking_query is not None and min_score > 0.0:
                hits = [hit for hit in hits if hit.score >= min_score]
            truncated = top_k is not None and len(hits) > top_k
            return (hits if top_k is None else hits[:top_k]), 0, truncated, 0, 0, None

        if (
            self.evaluation == PRUNED
            and candidates is None
            and supports_pruning(self.ranking, ranking_query, top_k, min_score)
        ):
            pruned = PrunedContext(
                self, ranking_query, top_k=top_k, min_score=min_score
            )
            hits = [
                EngineHit(doc_id, score, pruned.hit_term_stats(doc_id))
                for doc_id, score in pruned.hits()
            ]
            return (
                hits,
                pruned.postings_walked,
                pruned.truncated,
                pruned.postings_skipped,
                pruned.blocks_skipped,
                pruned.threshold,
            )

        context: QueryTermContext | None = None
        if self.evaluation == DOCUMENT_AT_A_TIME:
            scores = self._evaluate_ranking_document_at_a_time(
                ranking_query, candidates
            )
        else:
            # ``evaluation="pruned"`` lands here too for shapes the
            # pruned driver cannot evaluate rank-safely (filters,
            # non-flat queries, unprunable algorithms, no bound).
            context = QueryTermContext(self, ranking_query, candidates)
            scores = context.scores(min_score=min_score)

        if min_score > 0.0 and (context is None or not context.applied_min_score):
            scores = {
                doc_id: score
                for doc_id, score in scores.items()
                if score >= min_score
            }
        selected = top_k_hits(scores, top_k)
        walked = context.postings_walked if context is not None else 0
        truncated = top_k is not None and len(scores) > top_k
        if context is not None:
            hits = [
                EngineHit(doc_id, score, context.hit_term_stats(doc_id))
                for doc_id, score in selected
            ]
        else:
            hits = [
                EngineHit(doc_id, score, self._hit_term_stats(ranking_query, doc_id))
                for doc_id, score in selected
            ]
        return hits, walked, truncated, 0, 0, None

    def _hit_term_stats(self, ranking_query: EngineQuery, doc_id: int) -> list[TermHitStats]:
        stats: list[TermHitStats] = []
        for term in ranking_query.terms():
            tf, df = self._term_doc_stats(term, doc_id)
            weight = 0.0
            if tf and self.ranking is not None:
                weight = self.ranking.term_weight(
                    tf,
                    df,
                    self.document_count,
                    self.store.token_count(doc_id),
                    self.store.average_token_count(),
                )
            stats.append(TermHitStats(term.field, term.text, tf, weight, df))
        return stats

    # -- statistics for metadata export ---------------------------------------

    def document_frequency(self, term: TermQuery) -> int:
        """Source-wide df of a query term (for content summaries)."""
        docs: set[int] = set()
        for field_name, index_terms in self.matcher.expand(term).items():
            for index_term in index_terms:
                docs.update(
                    posting.doc_id
                    for posting in self.index.postings(field_name, index_term)
                )
        return len(docs)
