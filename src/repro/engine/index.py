"""Positional, fielded inverted index.

One index serves both halves of the STARTS query language: Boolean
filter expressions need document sets and positions (for ``prox``),
vector-space ranking expressions need term statistics (tf, df, document
lengths).  The index additionally maintains *summary statistics* —
surface-form term counts grouped by (field, language) — which is exactly
the raw material of the Section 4.3.2 content summaries, kept separate
so summaries can be unstemmed and case-preserving even when the engine
indexes stems.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass, field as dataclass_field

from repro.text.soundex import soundex

__all__ = ["Posting", "InvertedIndex", "IndexSnapshot", "SummaryEntry"]


@dataclass(frozen=True, slots=True)
class Posting:
    """Occurrences of one term in one document's field.

    ``positions`` are word offsets within the field, in increasing
    order; ``len(positions)`` is the within-field term frequency.
    """

    doc_id: int
    positions: tuple[int, ...]

    @property
    def term_frequency(self) -> int:
        return len(self.positions)


@dataclass(slots=True)
class IndexSnapshot:
    """A self-contained copy of an index's contents.

    The public interchange format between an index and anything that
    persists one — the JSON persistence layer and the segment writer
    both consume it, so neither reaches into the index's private
    postings maps.  ``Posting`` objects are immutable and shared;
    containers and summary entries are copied, so mutating the source
    index never invalidates a snapshot already taken.
    """

    postings: dict[str, dict[str, list["Posting"]]] = dataclass_field(
        default_factory=dict
    )
    summary: list[tuple[str, str, dict[str, "SummaryEntry"]]] = dataclass_field(
        default_factory=list
    )
    document_count: int = 0

    def is_empty(self) -> bool:
        return not self.postings and not self.summary and not self.document_count


@dataclass(slots=True)
class SummaryEntry:
    """Aggregate statistics for one surface word in one (field, language).

    Attributes:
        postings: total occurrences in the source (the paper's "total
            number of postings").
        document_frequency: number of documents containing the word.
    """

    postings: int = 0
    document_frequency: int = 0


class InvertedIndex:
    """Term → postings, per field, plus derived lookup structures.

    Documents must be added in increasing id order (the store hands out
    dense ids, so building sequentially satisfies this).
    """

    def __init__(self) -> None:
        # field -> term -> list[Posting], postings in doc-id order.
        self._postings: dict[str, dict[str, list[Posting]]] = defaultdict(dict)
        # field -> term -> max per-document term frequency; maintained
        # incrementally (exact under the append-only contract — removal
        # rebuilds the index) and the source of per-term score upper
        # bounds for the pruned evaluator.
        self._max_tf: dict[str, dict[str, int]] = defaultdict(dict)
        # (field, language) -> surface word -> SummaryEntry.
        self._summary: dict[tuple[str, str], dict[str, SummaryEntry]] = defaultdict(dict)
        # (field, language, word) -> doc id of last df increment.
        self._summary_last_doc: dict[tuple[str, str, str], int] = {}
        # field -> sorted vocabulary (rebuilt lazily for truncation).
        self._sorted_vocab: dict[str, list[str]] = {}
        self._sorted_vocab_dirty: set[str] = set()
        # field -> sorted reversed-term vocabulary (lazily built so
        # left-truncation is a bisect, mirroring terms_with_prefix).
        self._reversed_vocab: dict[str, list[str]] = {}
        self._reversed_vocab_dirty: set[str] = set()
        # field -> soundex code -> set of terms (built lazily).
        self._soundex: dict[str, dict[str, set[str]]] = {}
        self._soundex_dirty: set[str] = set()
        self._doc_count = 0
        # Bumped on every mutation; lets callers (the term matcher)
        # cache derived lookups and invalidate them precisely.
        self._generation = 0

    # -- construction ---------------------------------------------------

    def add_field_tokens(
        self,
        doc_id: int,
        field: str,
        tokens: list[tuple[str, str, int]],
        language: str = "en",
    ) -> None:
        """Index tokens of one document field.

        Args:
            doc_id: dense document id.
            field: field name.
            tokens: (index_term, surface_form, position) triples in
                position order.
            language: language tag string for summary grouping.
        """
        by_term: dict[str, list[int]] = defaultdict(list)
        for term, surface, position in tokens:
            by_term[term].append(position)
            self._record_summary(doc_id, field, language, surface)
        field_postings = self._postings[field]
        field_max_tf = self._max_tf[field]
        for term, positions in by_term.items():
            field_postings.setdefault(term, []).append(
                Posting(doc_id, tuple(sorted(positions)))
            )
            if len(positions) > field_max_tf.get(term, 0):
                field_max_tf[term] = len(positions)
        self._sorted_vocab_dirty.add(field)
        self._reversed_vocab_dirty.add(field)
        self._soundex_dirty.add(field)
        self._doc_count = max(self._doc_count, doc_id + 1)
        self._generation += 1

    def _record_summary(self, doc_id: int, field: str, language: str, surface: str) -> None:
        entry = self._summary[(field, language)].setdefault(surface, SummaryEntry())
        entry.postings += 1
        key = (field, language, surface)
        if self._summary_last_doc.get(key) != doc_id:
            entry.document_frequency += 1
            self._summary_last_doc[key] = doc_id

    # -- basic lookups ---------------------------------------------------

    @property
    def document_count(self) -> int:
        return self._doc_count

    @property
    def generation(self) -> int:
        """Monotone mutation counter (cache-invalidation token)."""
        return self._generation

    def fields(self) -> list[str]:
        return sorted(self._postings)

    def postings(self, field: str, term: str) -> list[Posting]:
        """Postings for ``term`` in ``field`` (empty list if absent)."""
        return self._postings.get(field, {}).get(term, [])

    def document_frequency(self, field: str, term: str) -> int:
        return len(self.postings(field, term))

    def collection_frequency(self, field: str, term: str) -> int:
        return sum(p.term_frequency for p in self.postings(field, term))

    def max_term_frequency(self, field: str, term: str) -> int:
        """Largest per-document tf of ``term`` (0 if absent).

        An upper bound on the tf of every posting, which makes it the
        tf input to :meth:`~repro.engine.ranking.RankingAlgorithm.
        weight_upper_bound` for the pruned evaluator's per-term score
        caps.
        """
        return self._max_tf.get(field, {}).get(term, 0)

    def vocabulary(self, field: str) -> list[str]:
        """Sorted index vocabulary of a field."""
        if field in self._sorted_vocab_dirty or field not in self._sorted_vocab:
            self._sorted_vocab[field] = sorted(self._postings.get(field, {}))
            self._sorted_vocab_dirty.discard(field)
        return self._sorted_vocab[field]

    # -- fuzzy/expanded matching -----------------------------------------

    def terms_with_prefix(self, field: str, prefix: str) -> list[str]:
        """Vocabulary terms starting with ``prefix`` (right-truncation)."""
        vocab = self.vocabulary(field)
        start = bisect.bisect_left(vocab, prefix)
        matches: list[str] = []
        for term in vocab[start:]:
            if not term.startswith(prefix):
                break
            matches.append(term)
        return matches

    def terms_with_suffix(self, field: str, suffix: str) -> list[str]:
        """Vocabulary terms ending with ``suffix`` (left-truncation).

        A suffix of a term is a prefix of its reversal, so the lookup
        is a bisect over a lazily maintained sorted list of reversed
        terms — sublinear in the vocabulary, like ``terms_with_prefix``.
        """
        if field in self._reversed_vocab_dirty or field not in self._reversed_vocab:
            self._reversed_vocab[field] = sorted(
                term[::-1] for term in self._postings.get(field, {})
            )
            self._reversed_vocab_dirty.discard(field)
        reversed_vocab = self._reversed_vocab[field]
        target = suffix[::-1]
        start = bisect.bisect_left(reversed_vocab, target)
        matches: list[str] = []
        for reversed_term in reversed_vocab[start:]:
            if not reversed_term.startswith(target):
                break
            matches.append(reversed_term[::-1])
        matches.sort()
        return matches

    def terms_with_soundex(self, field: str, word: str) -> list[str]:
        """Vocabulary terms phonetically equal to ``word``."""
        if field in self._soundex_dirty or field not in self._soundex:
            codes: dict[str, set[str]] = defaultdict(set)
            for term in self._postings.get(field, {}):
                codes[soundex(term)].add(term)
            self._soundex[field] = dict(codes)
            self._soundex_dirty.discard(field)
        return sorted(self._soundex[field].get(soundex(word), ()))

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self) -> IndexSnapshot:
        """A self-contained copy of the index's postings and summaries.

        This is the supported way to read an index wholesale — the
        persistence layer and the segment writer both build on it
        instead of touching private fields.
        """
        return IndexSnapshot(
            postings={
                field: {term: list(plist) for term, plist in terms.items()}
                for field, terms in self._postings.items()
            },
            summary=[
                (
                    field,
                    language,
                    {
                        word: SummaryEntry(entry.postings, entry.document_frequency)
                        for word, entry in words.items()
                    },
                )
                for (field, language), words in sorted(self._summary.items())
            ],
            document_count=self._doc_count,
        )

    def restore(self, snapshot: IndexSnapshot) -> None:
        """Install a snapshot into this (empty) index.

        The inverse of :meth:`snapshot`: the only supported way to
        *write* an index wholesale.  Derived structures (sorted
        vocabularies, soundex maps) are marked dirty for lazy rebuild
        and the generation counter is bumped so downstream memos
        (term-matcher expansions) refresh.

        Raises:
            ValueError: if the index already holds anything.
        """
        if self._postings or self._summary or self._doc_count:
            raise ValueError("restore() needs an empty index")
        for field, terms in snapshot.postings.items():
            field_postings = self._postings[field]
            field_max_tf = self._max_tf[field]
            for term, plist in terms.items():
                field_postings[term] = list(plist)
                field_max_tf[term] = max(
                    (posting.term_frequency for posting in plist), default=0
                )
            self._sorted_vocab_dirty.add(field)
            self._reversed_vocab_dirty.add(field)
            self._soundex_dirty.add(field)
        for field, language, words in snapshot.summary:
            bucket = self._summary[(field, language)]
            for word, entry in words.items():
                bucket[word] = SummaryEntry(entry.postings, entry.document_frequency)
        self._doc_count = snapshot.document_count
        self._generation += 1

    # -- summary export ----------------------------------------------------

    def summary_sections(self) -> list[tuple[str, str, dict[str, SummaryEntry]]]:
        """(field, language, word → stats) sections for content summaries.

        Sections are sorted by (field, language) for deterministic
        export; words inside a section are left to the caller to order.
        """
        return [
            (field, language, dict(words))
            for (field, language), words in sorted(self._summary.items())
        ]

    def summary_vocabulary_size(self) -> int:
        """Distinct (field, language, word) triples tracked for summaries."""
        return sum(len(words) for words in self._summary.values())
