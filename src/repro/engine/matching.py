"""Modifier-aware term matching.

A Basic-1 term like ``(title stem "databases")`` does not name an index
term directly: the ``stem`` modifier means *any word sharing the stem*,
``phonetic`` means Soundex equivalence, ``right-truncation`` means a
prefix wildcard, and so on.  :class:`TermMatcher` expands a query term
into the set of concrete index terms it denotes, per field, using the
engine's analyzer and index.
"""

from __future__ import annotations

from collections import defaultdict

from repro.engine import fields as F
from repro.engine.index import InvertedIndex
from repro.engine.query import TermQuery
from repro.text.analysis import Analyzer
from repro.text.langtags import parse_language_tag
from repro.text.thesaurus import Thesaurus, DEFAULT_THESAURUS

__all__ = ["TermMatcher"]

#: Modifiers handled by expansion (vs. date comparison modifiers).
_EXPANSION_MODIFIERS = frozenset(
    ("stem", "phonetic", "thesaurus", "right-truncation", "left-truncation")
)


class TermMatcher:
    """Expands query terms into concrete (field → index terms) maps."""

    def __init__(
        self,
        index: InvertedIndex,
        analyzer: Analyzer,
        thesaurus: Thesaurus | None = None,
    ) -> None:
        self._index = index
        self._analyzer = analyzer
        self._thesaurus = thesaurus or DEFAULT_THESAURUS
        # (field, language) -> (vocab size at build time, stem -> terms).
        self._stem_maps: dict[tuple[str, str], tuple[int, dict[str, set[str]]]] = {}
        # Expansion memo, invalidated whenever the index mutates: the
        # same query term is expanded many times (per node visit, per
        # request) but its expansion only changes with the vocabulary.
        self._expansion_generation = index.generation
        self._expansions: dict[tuple, dict[str, set[str]]] = {}

    def fields_for(self, term: TermQuery) -> tuple[str, ...]:
        """The concrete index fields a term's field designator covers."""
        if term.field == F.ANY:
            return F.TEXT_FIELDS
        return (term.field,)

    def expand(self, term: TermQuery) -> dict[str, set[str]]:
        """Map each covered field to the index terms ``term`` matches.

        Fields with no matching index terms are omitted, so an empty
        result means the term matches nothing in this source.  Results
        are memoized until the index mutates; the memo is bounded so a
        long-lived engine under diverse traffic cannot grow it without
        limit.
        """
        generation = self._index.generation
        if generation != self._expansion_generation:
            self._expansion_generation = generation
            self._expansions.clear()
        key = (term.field, term.text, term.language, term.modifiers)
        cached = self._expansions.get(key)
        if cached is None:
            matches: dict[str, set[str]] = defaultdict(set)
            for field in self.fields_for(term):
                terms = self._expand_in_field(term, field)
                if terms:
                    matches[field] = terms
            if len(self._expansions) >= 4096:
                self._expansions.clear()
            cached = self._expansions[key] = dict(matches)
        # The result is shared with the memo: callers must not mutate it.
        return cached

    def _expand_in_field(self, term: TermQuery, field: str) -> set[str]:
        expansions = _EXPANSION_MODIFIERS & term.modifiers
        wants_stem = "stem" in expansions

        # Base form: normalized the way the index stores terms.  When
        # the query asks for stemming we normalize *with* stemming so a
        # stem-indexing engine hits directly.
        base = self._analyzer.normalize(term.text, term.language, stem=wants_stem)
        found: set[str] = set()

        if not expansions:
            if self._index.postings(field, base):
                found.add(base)
            return found

        if wants_stem:
            found |= self._stems_matching(field, term.language, base)
        if "phonetic" in expansions:
            found |= set(self._index.terms_with_soundex(field, term.text))
        if "thesaurus" in expansions:
            for synonym in self._thesaurus.expand(term.text):
                normalized = self._analyzer.normalize(synonym, term.language)
                if self._index.postings(field, normalized):
                    found.add(normalized)
        if "right-truncation" in expansions:
            prefix = self._analyzer.normalize(term.text, term.language)
            found |= set(self._index.terms_with_prefix(field, prefix))
        if "left-truncation" in expansions:
            suffix = self._analyzer.normalize(term.text, term.language)
            found |= set(self._index.terms_with_suffix(field, suffix))
        return found

    def _stems_matching(self, field: str, language: str, stem: str) -> set[str]:
        """All index terms in ``field`` whose stem equals ``stem``."""
        tag = parse_language_tag(language)
        stemmer = self._analyzer.stemmer_for(tag)
        key = (field, tag.language)
        vocab = self._index.vocabulary(field)
        cached = self._stem_maps.get(key)
        if cached is None or cached[0] != len(vocab):
            stem_map: dict[str, set[str]] = defaultdict(set)
            for word in vocab:
                stem_map[stemmer(word)].add(word)
            self._stem_maps[key] = (len(vocab), dict(stem_map))
        matched = set(self._stem_maps[key][1].get(stem, set()))
        # The stemmed query form itself may be an index term (engines
        # that index stems), even if no surface form re-stems onto it.
        if self._index.postings(field, stem):
            matched.add(stem)
        return matched
