"""Canonical field names shared by the engine and the STARTS layer.

These are the Basic-1 fields from the paper's field table, in their
wire spelling (lowercase, hyphenated).  The engine treats a field as an
opaque string, so vendor-specific extra fields (e.g. an ``abstract``
field that only some sources support — the paper's Section 3.1 example)
need no code changes.
"""

from __future__ import annotations

__all__ = [
    "TITLE",
    "AUTHOR",
    "BODY_OF_TEXT",
    "DOCUMENT_TEXT",
    "DATE_LAST_MODIFIED",
    "ANY",
    "LINKAGE",
    "LINKAGE_TYPE",
    "CROSS_REFERENCE_LINKAGE",
    "LANGUAGES",
    "FREE_FORM_TEXT",
    "ABSTRACT",
    "TEXT_FIELDS",
    "DATE_FIELDS",
]

TITLE = "title"
AUTHOR = "author"
BODY_OF_TEXT = "body-of-text"
DOCUMENT_TEXT = "document-text"
DATE_LAST_MODIFIED = "date/time-last-modified"
ANY = "any"
LINKAGE = "linkage"
LINKAGE_TYPE = "linkage-type"
CROSS_REFERENCE_LINKAGE = "cross-reference-linkage"
LANGUAGES = "languages"
FREE_FORM_TEXT = "free-form-text"

#: Not in Basic-1; the optional field §3.1 uses to illustrate per-source
#: field heterogeneity.  Some simulated vendors support it, some do not.
ABSTRACT = "abstract"

#: Fields whose values are indexed as text.  ``any`` fans out to these.
TEXT_FIELDS = (TITLE, AUTHOR, BODY_OF_TEXT, ABSTRACT)

#: Fields compared as ISO dates with the <, <=, =, >=, >, != modifiers.
DATE_FIELDS = (DATE_LAST_MODIFIED,)

#: Metadata-valued fields: not tokenized into the inverted index, but
#: searchable by exact whitespace-token match over the field value
#: (e.g. ``(languages "es")``, ``(linkage-type "text/html")``).
METADATA_FIELDS = (LINKAGE, LINKAGE_TYPE, CROSS_REFERENCE_LINKAGE, LANGUAGES)
